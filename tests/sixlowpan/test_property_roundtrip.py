"""Seeded-random round-trip properties for the 6LoWPAN codecs.

The hand-written tests in ``test_iphc.py`` / ``test_frag.py`` pin known
vectors; these tests sweep the input space instead: a few hundred
randomly generated packets per run, drawn from a ``random.Random`` with a
fixed seed so failures replay exactly.  Every supported combination of
IPHC address mode, TF mode, HLIM mode, and NHC-UDP port mode must
survive ``decompress(compress(p)) == p``, and every fragment split must
reassemble byte-identically regardless of arrival order.

(No hypothesis dependency on purpose -- plain seeded randomness keeps the
suite runnable on the bare container and the failures reproducible.)
"""

import random
import struct

import pytest

from repro.sim.kernel import Simulator
from repro.sixlowpan.frag import (
    FragmentError,
    Reassembler,
    fragment,
    is_fragment,
    parse_fragment,
)
from repro.sixlowpan.iphc import IPHC_DISPATCH, compress, decompress
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet, PROTO_UDP

N_PACKETS = 200


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------


def _unicast(rng: random.Random):
    """A unicast address plus the link-layer IID that elides it (or None)."""
    form = rng.randrange(4)
    if form == 0:  # link-local, derived IID -- fully elidable
        node = rng.randrange(0, 1 << 16)
        return Ipv6Address.link_local(node), Ipv6Address.iid_from_node_id(node)
    if form == 1:  # link-local, 16-bit compressible IID (000000fffe00xxxx)
        iid = bytes.fromhex("000000fffe00") + rng.randbytes(2)
        return Ipv6Address(Ipv6Address.LINK_LOCAL_PREFIX + iid), None
    if form == 2:  # link-local, arbitrary 64-bit IID inline
        return Ipv6Address(Ipv6Address.LINK_LOCAL_PREFIX + rng.randbytes(8)), None
    # routable (mesh or foreign global) -- always full inline
    if rng.random() < 0.5:
        return Ipv6Address.mesh_local(rng.randrange(0, 1 << 16)), None
    return Ipv6Address(bytes([0x20]) + rng.randbytes(15)), None


def _multicast(rng: random.Random) -> Ipv6Address:
    form = rng.randrange(4)
    if form == 0:  # ff02::00XX
        return Ipv6Address(
            bytes.fromhex("ff02") + b"\x00" * 13 + bytes([rng.randrange(1, 256)])
        )
    if form == 1:  # ffXX::00XX:XXXX (4 inline bytes)
        return Ipv6Address(
            b"\xff" + rng.randbytes(1) + b"\x00" * 11 + rng.randbytes(3)
        )
    if form == 2:  # ffXX::00XX:XXXX:XXXX (6 inline bytes)
        return Ipv6Address(
            b"\xff" + rng.randbytes(1) + b"\x00" * 9 + rng.randbytes(5)
        )
    # no compact form: force a nonzero byte inside the would-be-zero run
    body = bytearray(rng.randbytes(15))
    body[4] |= 0x01
    return Ipv6Address(b"\xff" + bytes(body))


def _traffic_class_and_flow(rng: random.Random):
    mode = rng.randrange(4)
    if mode == 0:  # TF=11: both elided
        return 0, 0
    if mode == 1:  # TF=10: class inline, no flow label
        return rng.randrange(1, 256), 0
    if mode == 2:  # TF=01: ECN only (DSCP zero) + flow label
        return rng.randrange(4) << 6, rng.randrange(1, 1 << 20)
    # TF=00: full class (nonzero DSCP) + flow label
    return (rng.randrange(1, 64)) | (rng.randrange(4) << 6), rng.randrange(
        1, 1 << 20
    )


def _hop_limit(rng: random.Random) -> int:
    return rng.choice([1, 64, 255, rng.randrange(2, 254)])


def _udp_port(rng: random.Random) -> int:
    mode = rng.randrange(3)
    if mode == 0:  # 4-bit compressible (0xF0Bx)
        return 0xF0B0 | rng.randrange(16)
    if mode == 1:  # 8-bit compressible (0xF0xx)
        return 0xF000 | rng.randrange(256)
    return rng.randrange(0, 1 << 16)


def _udp_payload(rng: random.Random) -> bytes:
    """A well-formed UDP datagram (length field consistent with the data)."""
    data = rng.randbytes(rng.randrange(0, 64))
    return (
        struct.pack(
            ">HHHH",
            _udp_port(rng),
            _udp_port(rng),
            8 + len(data),
            rng.randrange(0, 1 << 16),
        )
        + data
    )


def _packet(rng: random.Random):
    """One random packet plus the link-layer IIDs to hand the codec."""
    src, src_iid = _unicast(rng)
    if rng.random() < 0.3:
        dst, dst_iid = _multicast(rng), None
    else:
        dst, dst_iid = _unicast(rng)
    traffic_class, flow_label = _traffic_class_and_flow(rng)
    if rng.random() < 0.7:
        next_header, payload = PROTO_UDP, _udp_payload(rng)
    elif rng.random() < 0.5:
        # UDP but too short for NHC: takes the inline next-header path
        next_header, payload = PROTO_UDP, rng.randbytes(rng.randrange(0, 8))
    else:
        next_header = rng.choice([0, 6, 58, 254])
        payload = rng.randbytes(rng.randrange(0, 80))
    packet = Ipv6Packet(
        src=src,
        dst=dst,
        payload=payload,
        next_header=next_header,
        hop_limit=_hop_limit(rng),
        traffic_class=traffic_class,
        flow_label=flow_label,
    )
    return packet, src_iid, dst_iid


# ---------------------------------------------------------------------------
# IPHC round-trips
# ---------------------------------------------------------------------------


def test_iphc_random_round_trips():
    rng = random.Random(0x6C6F)
    for i in range(N_PACKETS):
        packet, src_iid, dst_iid = _packet(rng)
        wire = compress(packet, src_ll_iid=src_iid, dst_ll_iid=dst_iid)
        assert wire[0] >> 5 == IPHC_DISPATCH >> 5, f"packet {i}: bad dispatch"
        back = decompress(wire, src_ll_iid=src_iid, dst_ll_iid=dst_iid)
        assert back == packet, f"packet {i} did not round-trip"


def test_iphc_round_trips_without_iid_hints():
    """With no link-layer IIDs, nothing is elided -- still lossless."""
    rng = random.Random(0xBEEF)
    for i in range(N_PACKETS // 2):
        packet, _, _ = _packet(rng)
        back = decompress(compress(packet))
        assert back == packet, f"packet {i} did not round-trip"


def test_iphc_never_inflates_beyond_dispatch_overhead():
    """Worst case is everything inline: 2 IPHC bytes + the 40-byte header
    fields + payload.  The compressed form must never exceed the raw
    encoding plus one dispatch byte."""
    rng = random.Random(0xCAFE)
    for _ in range(N_PACKETS // 2):
        packet, src_iid, dst_iid = _packet(rng)
        wire = compress(packet, src_ll_iid=src_iid, dst_ll_iid=dst_iid)
        assert len(wire) <= len(packet.encode()) + 1


def test_iphc_full_elision_head_is_tiny():
    """Link-local derived-IID traffic with defaults: the 48 bytes of
    IPv6+UDP headers compress to single digits (the RFC 6282 showcase)."""
    rng = random.Random(7)
    src = Ipv6Address.link_local(1)
    dst = Ipv6Address.link_local(2)
    data = rng.randbytes(32)
    udp = struct.pack(">HHHH", 0xF0B1, 0xF0B2, 8 + len(data), 0x1234) + data
    packet = Ipv6Packet(src=src, dst=dst, payload=udp)
    wire = compress(
        packet,
        src_ll_iid=Ipv6Address.iid_from_node_id(1),
        dst_ll_iid=Ipv6Address.iid_from_node_id(2),
    )
    # 2 IPHC + 1 NHC + 1 ports + 2 checksum = 6 bytes of header
    assert len(wire) == 6 + len(data)
    back = decompress(
        wire,
        src_ll_iid=Ipv6Address.iid_from_node_id(1),
        dst_ll_iid=Ipv6Address.iid_from_node_id(2),
    )
    assert back == packet


# ---------------------------------------------------------------------------
# fragmentation round-trips
# ---------------------------------------------------------------------------


def _reassemble(fragments, rng: random.Random, sender: int = 3):
    """Feed shuffled fragments through a Reassembler, return the result."""
    sim = Simulator()
    out = []
    reasm = Reassembler(sim, lambda datagram, who: out.append((datagram, who)))
    order = list(fragments)
    rng.shuffle(order)
    for frag in order:
        reasm.accept(frag, sender)
    return out, reasm


def test_fragment_random_round_trips():
    rng = random.Random(0xF4A6)
    for i in range(N_PACKETS):
        datagram = rng.randbytes(rng.randrange(60, 1200))
        tag = rng.randrange(0, 1 << 16)
        budget = rng.randrange(14, 200)
        fragments = fragment(datagram, tag, budget)
        assert all(len(f) <= budget for f in fragments), f"case {i}"
        assert all(is_fragment(f) for f in fragments), f"case {i}"
        out, reasm = _reassemble(fragments, rng)
        assert out == [(datagram, 3)], f"case {i} did not reassemble"
        assert reasm.pending() == 0
        assert reasm.datagrams_reassembled == 1


def test_fragment_headers_are_consistent():
    rng = random.Random(0x0FF5)
    for _ in range(N_PACKETS // 2):
        datagram = rng.randbytes(rng.randrange(60, 1200))
        tag = rng.randrange(0, 1 << 16)
        budget = rng.randrange(14, 200)
        fragments = fragment(datagram, tag, budget)
        pieces = {}
        for j, frag in enumerate(fragments):
            size, got_tag, offset, payload = parse_fragment(frag)
            assert size == len(datagram)
            assert got_tag == tag
            assert offset % 8 == 0
            if j == 0:
                assert offset == 0  # FRAG1 carries no offset field
            pieces[offset] = payload
        rebuilt = bytearray(len(datagram))
        for offset, payload in pieces.items():
            rebuilt[offset : offset + len(payload)] = payload
        assert bytes(rebuilt) == datagram


def test_fragment_rejects_oversized_and_starved_inputs():
    rng = random.Random(1)
    with pytest.raises(FragmentError, match="11-bit"):
        fragment(rng.randbytes(2048), tag=1, max_fragment_payload=100)
    with pytest.raises(FragmentError, match="budget"):
        fragment(rng.randbytes(100), tag=1, max_fragment_payload=13)
    # 2047 bytes is the exact ceiling and must still round-trip
    datagram = rng.randbytes(2047)
    fragments = fragment(datagram, tag=9, max_fragment_payload=120)
    out, _ = _reassemble(fragments, rng)
    assert out == [(datagram, 3)]


def test_interleaved_datagrams_reassemble_independently():
    """Two senders and two tags in flight at once: per-(sender, tag)
    buffers must not bleed into each other."""
    rng = random.Random(0xD1CE)
    sim = Simulator()
    out = []
    reasm = Reassembler(sim, lambda datagram, who: out.append((datagram, who)))
    d1, d2 = rng.randbytes(400), rng.randbytes(500)
    stream = [(f, 1) for f in fragment(d1, tag=5, max_fragment_payload=60)]
    stream += [(f, 2) for f in fragment(d2, tag=5, max_fragment_payload=60)]
    rng.shuffle(stream)
    for frag, sender in stream:
        reasm.accept(frag, sender)
    assert sorted(out, key=lambda pair: pair[1]) == [(d1, 1), (d2, 2)]
