"""Tests for the RFC 6282 IPHC codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sixlowpan.iphc import IphcError, compress, decompress
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet, UdpDatagram, PROTO_UDP


def udp_packet(src, dst, payload=b"data", sport=5683, dport=5683, **kwargs):
    dgram = UdpDatagram(sport, dport, payload)
    return Ipv6Packet(src=src, dst=dst, payload=dgram.encode(src, dst), **kwargs)


IID1 = Ipv6Address.iid_from_node_id(1)
IID2 = Ipv6Address.iid_from_node_id(2)


class TestRoundtrips:
    def test_link_local_fully_elided(self):
        """Link-local + LL-derived IIDs compress the addresses to nothing."""
        pkt = udp_packet(Ipv6Address.link_local(1), Ipv6Address.link_local(2))
        wire = compress(pkt, IID1, IID2)
        # 2 IPHC + 1 NHC + 4 ports + 2 checksum + payload: addresses gone
        assert len(wire) == 9 + len(pkt.payload) - 8
        assert decompress(wire, IID1, IID2) == pkt

    def test_mesh_addresses_ride_inline(self):
        pkt = udp_packet(Ipv6Address.mesh_local(1), Ipv6Address.mesh_local(2))
        wire = compress(pkt, IID1, IID2)
        assert decompress(wire, IID1, IID2) == pkt
        assert len(wire) > 32  # both 16-byte addresses are inline

    def test_paper_packet_size_arithmetic(self):
        """§4.3: 39-byte CoAP payload => 100-byte IP packet; compressed
        on-link size stays close (multi-hop addresses compress poorly)."""
        coap_ish = b"\x50\x01\x12\x34" + b"\xff" + b"p" * 47  # 52 bytes
        pkt = udp_packet(
            Ipv6Address.mesh_local(1), Ipv6Address.mesh_local(2), payload=coap_ish
        )
        assert pkt.total_len == 100
        wire = compress(pkt, IID1, IID2)
        # savings: 40-byte IPv6 header -> 2 + 32 inline addrs; UDP 8 -> 7
        assert len(wire) == 93

    def test_non_udp_next_header_inline(self):
        pkt = Ipv6Packet(
            src=Ipv6Address.link_local(1),
            dst=Ipv6Address.link_local(2),
            payload=b"icmpv6-ish",
            next_header=58,
        )
        wire = compress(pkt, IID1, IID2)
        assert decompress(wire, IID1, IID2) == pkt

    def test_multicast_ff02_1_compresses_to_one_byte(self):
        pkt = Ipv6Packet(
            src=Ipv6Address.link_local(1),
            dst=Ipv6Address.from_string("ff02::1"),
            payload=b"ra",
            next_header=58,
            hop_limit=255,
        )
        wire = compress(pkt, IID1, None)
        assert decompress(wire, IID1, None) == pkt
        # 2 iphc + 1 nh + 1 mcast byte + payload
        assert len(wire) == 4 + len(pkt.payload)

    def test_multicast_wider_scopes(self):
        for text in ("ff05::1:3", "ff0e::1234:5678:9abc", "ff02::2:ff00:1"):
            pkt = Ipv6Packet(
                src=Ipv6Address.link_local(1),
                dst=Ipv6Address.from_string(text),
                payload=b"x",
                next_header=58,
            )
            wire = compress(pkt, IID1, None)
            assert decompress(wire, IID1, None) == pkt, text

    def test_hop_limit_special_values_cost_nothing(self):
        base = None
        sizes = {}
        for hlim in (1, 64, 255, 65):
            pkt = udp_packet(
                Ipv6Address.link_local(1),
                Ipv6Address.link_local(2),
                hop_limit=hlim,
            )
            sizes[hlim] = len(compress(pkt, IID1, IID2))
            assert decompress(compress(pkt, IID1, IID2), IID1, IID2) == pkt
        assert sizes[1] == sizes[64] == sizes[255] == sizes[65] - 1

    def test_traffic_class_and_flow_label_forms(self):
        cases = [
            (0, 0),        # TF=11, fully elided
            (5, 0),        # TF=10, one byte
            (0b11000000, 0x12345),  # TF=01, ECN only + flow label
            (0x2A, 0x00FFF),        # TF=00, everything inline
        ]
        for tc, fl in cases:
            pkt = udp_packet(
                Ipv6Address.link_local(1),
                Ipv6Address.link_local(2),
                traffic_class=tc,
                flow_label=fl,
            )
            wire = compress(pkt, IID1, IID2)
            assert decompress(wire, IID1, IID2) == pkt, (tc, fl)


class TestNhcUdpPorts:
    def mk(self, sport, dport):
        return udp_packet(
            Ipv6Address.link_local(1),
            Ipv6Address.link_local(2),
            sport=sport,
            dport=dport,
        )

    def test_both_ports_in_f0b_nibble_range(self):
        pkt = self.mk(0xF0B3, 0xF0BD)
        wire = compress(pkt, IID1, IID2)
        assert decompress(wire, IID1, IID2) == pkt
        # ports collapse into a single byte
        small = len(wire)
        assert small == len(compress(self.mk(5683, 5683), IID1, IID2)) - 3

    def test_dst_port_in_f0_range(self):
        pkt = self.mk(5683, 0xF042)
        assert decompress(compress(pkt, IID1, IID2), IID1, IID2) == pkt

    def test_src_port_in_f0_range(self):
        pkt = self.mk(0xF042, 5683)
        assert decompress(compress(pkt, IID1, IID2), IID1, IID2) == pkt

    def test_checksum_carried_verbatim(self):
        pkt = self.mk(5683, 5684)
        wire = compress(pkt, IID1, IID2)
        out = decompress(wire, IID1, IID2)
        assert out.payload == pkt.payload  # checksum bytes identical


class TestErrors:
    def test_empty_datagram(self):
        with pytest.raises(IphcError):
            decompress(b"")

    def test_wrong_dispatch(self):
        with pytest.raises(IphcError):
            decompress(b"\x00\x00\x00")

    def test_truncated(self):
        pkt = udp_packet(Ipv6Address.mesh_local(1), Ipv6Address.mesh_local(2))
        wire = compress(pkt, IID1, IID2)
        with pytest.raises(IphcError):
            decompress(wire[:10], IID1, IID2)

    def test_elided_address_without_iid(self):
        pkt = udp_packet(Ipv6Address.link_local(1), Ipv6Address.link_local(2))
        wire = compress(pkt, IID1, IID2)
        with pytest.raises(IphcError):
            decompress(wire, None, None)

    def test_uncompressed_dispatch_fallback(self):
        pkt = udp_packet(Ipv6Address.mesh_local(1), Ipv6Address.mesh_local(2))
        wire = bytes([0x41]) + pkt.encode()
        assert decompress(wire) == pkt


@st.composite
def arbitrary_packets(draw):
    def addr(kind):
        if kind == "ll-derived":
            return Ipv6Address.link_local(draw(st.integers(1, 2)))
        if kind == "ll-random":
            return Ipv6Address(
                Ipv6Address.LINK_LOCAL_PREFIX + draw(st.binary(min_size=8, max_size=8))
            )
        if kind == "mesh":
            return Ipv6Address.mesh_local(draw(st.integers(0, 2**31)))
        return Ipv6Address(b"\xff" + draw(st.binary(min_size=15, max_size=15)))

    kinds = st.sampled_from(["ll-derived", "ll-random", "mesh"])
    src = addr(draw(kinds))
    dst = addr(draw(st.sampled_from(["ll-derived", "ll-random", "mesh", "mcast"])))
    use_udp = draw(st.booleans())
    if use_udp:
        dgram = UdpDatagram(
            draw(st.integers(0, 65535)),
            draw(st.integers(0, 65535)),
            draw(st.binary(max_size=200)),
        )
        payload = dgram.encode(src, dst)
        nh = PROTO_UDP
    else:
        payload = draw(st.binary(max_size=200))
        nh = draw(st.integers(0, 255).filter(lambda v: v != PROTO_UDP))
    return Ipv6Packet(
        src=src,
        dst=dst,
        payload=payload,
        next_header=nh,
        hop_limit=draw(st.integers(0, 255)),
        traffic_class=draw(st.integers(0, 255)),
        flow_label=draw(st.integers(0, 0xFFFFF)),
    )


@given(pkt=arbitrary_packets())
@settings(max_examples=300, deadline=None)
def test_compress_decompress_identity(pkt):
    """Property: IPHC round-trips any packet our stack can emit."""
    wire = compress(pkt, IID1, IID2)
    assert decompress(wire, IID1, IID2) == pkt


@given(pkt=arbitrary_packets())
@settings(max_examples=100, deadline=None)
def test_compression_never_inflates_much(pkt):
    """IPHC output is at most 1 byte larger than the raw datagram."""
    wire = compress(pkt, IID1, IID2)
    assert len(wire) <= pkt.total_len + 1
