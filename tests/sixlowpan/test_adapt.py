"""Tests for the RFC 7668 adaptation glue."""

import pytest

from repro.sixlowpan import BleAdaptation
from repro.sixlowpan.iphc import IphcError
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet, UdpDatagram


def make_packet():
    src, dst = Ipv6Address.link_local(1), Ipv6Address.link_local(2)
    dgram = UdpDatagram(5683, 5683, b"q" * 39)
    return Ipv6Packet(src=src, dst=dst, payload=dgram.encode(src, dst))


def test_roundtrip_with_iphc():
    adapt = BleAdaptation()
    pkt = make_packet()
    wire = adapt.to_link(pkt, BleAdaptation.iid_for_node(1), BleAdaptation.iid_for_node(2))
    back = adapt.from_link(wire, BleAdaptation.iid_for_node(1), BleAdaptation.iid_for_node(2))
    assert back == pkt


def test_roundtrip_without_iphc():
    adapt = BleAdaptation(use_iphc=False)
    pkt = make_packet()
    wire = adapt.to_link(pkt)
    assert wire[0] == 0x41
    assert adapt.from_link(wire) == pkt


def test_compression_ratio_tracking():
    adapt = BleAdaptation()
    pkt = make_packet()
    adapt.to_link(pkt, BleAdaptation.iid_for_node(1), BleAdaptation.iid_for_node(2))
    assert adapt.compression_ratio < 1.0  # link-local traffic compresses well
    assert adapt.packets_down == 1


def test_uncompressed_mode_ratio_above_one():
    adapt = BleAdaptation(use_iphc=False)
    adapt.to_link(make_packet())
    assert adapt.compression_ratio > 1.0  # dispatch byte adds overhead


def test_ratio_defaults_to_one():
    assert BleAdaptation().compression_ratio == 1.0


def test_malformed_input_raises():
    adapt = BleAdaptation()
    with pytest.raises(IphcError):
        adapt.from_link(b"\x00garbage")
