"""Tests for IPv6/UDP primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.sixlowpan.ipv6 import (
    Ipv6Address,
    Ipv6Packet,
    UdpDatagram,
    udp_checksum,
)


class TestAddress:
    def test_length_enforced(self):
        with pytest.raises(ValueError):
            Ipv6Address(b"\x00" * 15)

    def test_link_local_properties(self):
        addr = Ipv6Address.link_local(5)
        assert addr.is_link_local
        assert not addr.is_multicast
        assert addr.node_id() == 5

    def test_mesh_local_distinct_prefix(self):
        ll = Ipv6Address.link_local(5)
        ml = Ipv6Address.mesh_local(5)
        assert ll != ml
        assert ll.iid == ml.iid
        assert not ml.is_link_local

    def test_iid_derivation_is_stable(self):
        assert Ipv6Address.iid_from_node_id(7) == Ipv6Address.link_local(7).iid

    def test_node_id_of_foreign_iid_is_none(self):
        addr = Ipv6Address.from_string("fe80::1234:5678:9abc:def0")
        assert addr.node_id() is None

    def test_multicast_detection(self):
        assert Ipv6Address.from_string("ff02::1").is_multicast

    def test_from_string_roundtrip(self):
        addr = Ipv6Address.from_string("fd00:12bb::1")
        assert addr == Ipv6Address(addr.packed)

    def test_hashable(self):
        a = Ipv6Address.link_local(1)
        b = Ipv6Address.link_local(1)
        assert len({a, b}) == 1


class TestIpv6Packet:
    def test_encode_decode_roundtrip(self):
        pkt = Ipv6Packet(
            src=Ipv6Address.mesh_local(1),
            dst=Ipv6Address.mesh_local(2),
            payload=b"hello",
            hop_limit=17,
            traffic_class=3,
            flow_label=0x12345,
        )
        assert Ipv6Packet.decode(pkt.encode()) == pkt

    def test_total_len(self):
        pkt = Ipv6Packet(
            src=Ipv6Address.mesh_local(1),
            dst=Ipv6Address.mesh_local(2),
            payload=b"x" * 60,
        )
        assert pkt.total_len == 100  # the paper's packet size (§4.3)
        assert len(pkt.encode()) == 100

    def test_decode_rejects_version_4(self):
        data = bytearray(Ipv6Packet(
            src=Ipv6Address.mesh_local(1), dst=Ipv6Address.mesh_local(2)
        ).encode())
        data[0] = 0x45
        with pytest.raises(ValueError):
            Ipv6Packet.decode(bytes(data))

    def test_decode_rejects_truncation(self):
        pkt = Ipv6Packet(
            src=Ipv6Address.mesh_local(1),
            dst=Ipv6Address.mesh_local(2),
            payload=b"payload",
        )
        with pytest.raises(ValueError):
            Ipv6Packet.decode(pkt.encode()[:-3])

    def test_bad_hop_limit_rejected(self):
        pkt = Ipv6Packet(
            src=Ipv6Address.mesh_local(1),
            dst=Ipv6Address.mesh_local(2),
            hop_limit=300,
        )
        with pytest.raises(ValueError):
            pkt.encode()

    @given(
        payload=st.binary(max_size=500),
        hop_limit=st.integers(min_value=0, max_value=255),
        tc=st.integers(min_value=0, max_value=255),
        fl=st.integers(min_value=0, max_value=0xFFFFF),
    )
    def test_roundtrip_property(self, payload, hop_limit, tc, fl):
        pkt = Ipv6Packet(
            src=Ipv6Address.link_local(3),
            dst=Ipv6Address.mesh_local(4),
            payload=payload,
            hop_limit=hop_limit,
            traffic_class=tc,
            flow_label=fl,
        )
        assert Ipv6Packet.decode(pkt.encode()) == pkt


class TestUdp:
    SRC = Ipv6Address.mesh_local(1)
    DST = Ipv6Address.mesh_local(2)

    def test_encode_decode_roundtrip(self):
        dgram = UdpDatagram(5683, 5683, b"coap-payload")
        wire = dgram.encode(self.SRC, self.DST)
        back = UdpDatagram.decode(wire, self.SRC, self.DST)
        assert back == dgram

    def test_checksum_verification_fails_on_corruption(self):
        wire = bytearray(UdpDatagram(1000, 2000, b"data").encode(self.SRC, self.DST))
        wire[-1] ^= 0xFF
        with pytest.raises(ValueError):
            UdpDatagram.decode(bytes(wire), self.SRC, self.DST)

    def test_checksum_depends_on_addresses(self):
        wire = UdpDatagram(1000, 2000, b"data").encode(self.SRC, self.DST)
        with pytest.raises(ValueError):
            UdpDatagram.decode(wire, self.SRC, Ipv6Address.mesh_local(9))

    def test_zero_checksum_becomes_all_ones(self):
        # construct inputs until the checksum computation yields 0xFFFF path
        assert udp_checksum(self.SRC, self.DST, b"\x00" * 8) != 0

    def test_port_range_enforced(self):
        with pytest.raises(ValueError):
            UdpDatagram(70000, 1, b"").encode(self.SRC, self.DST)

    def test_total_len(self):
        assert UdpDatagram(1, 2, b"x" * 52).total_len == 60

    @given(payload=st.binary(max_size=300),
           sport=st.integers(min_value=0, max_value=65535),
           dport=st.integers(min_value=0, max_value=65535))
    def test_roundtrip_property(self, payload, sport, dport):
        dgram = UdpDatagram(sport, dport, payload)
        wire = dgram.encode(self.SRC, self.DST)
        assert UdpDatagram.decode(wire, self.SRC, self.DST) == dgram
