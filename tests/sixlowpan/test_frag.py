"""Tests for RFC 4944 fragmentation and reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.sim.units import MSEC, SEC
from repro.sixlowpan import frag


class TestFragmenting:
    def test_headers_and_offsets(self):
        data = bytes(range(256)) * 2  # 512 bytes
        pieces = frag.fragment(data, tag=7, max_fragment_payload=116)
        assert len(pieces) > 1
        size, tag, offset, payload = frag.parse_fragment(pieces[0])
        assert (size, tag, offset) == (512, 7, 0)
        total = 0
        for piece in pieces:
            size, tag, offset, payload = frag.parse_fragment(piece)
            assert size == 512 and tag == 7
            assert offset == total
            assert offset % 8 == 0
            total += len(payload)
        assert total == 512

    def test_fragments_respect_budget(self):
        data = bytes(900)
        for piece in frag.fragment(data, tag=1, max_fragment_payload=116):
            assert len(piece) <= 116

    def test_oversize_rejected(self):
        with pytest.raises(frag.FragmentError):
            frag.fragment(bytes(2100), tag=1, max_fragment_payload=116)

    def test_tiny_budget_rejected(self):
        with pytest.raises(frag.FragmentError):
            frag.fragment(bytes(100), tag=1, max_fragment_payload=10)

    def test_is_fragment_detection(self):
        pieces = frag.fragment(bytes(300), tag=3, max_fragment_payload=116)
        for piece in pieces:
            assert frag.is_fragment(piece)
        assert not frag.is_fragment(b"\x41\x60\x00")  # uncompressed IPv6
        assert not frag.is_fragment(b"")

    def test_parse_errors(self):
        with pytest.raises(frag.FragmentError):
            frag.parse_fragment(b"\xc0")
        with pytest.raises(frag.FragmentError):
            frag.parse_fragment(b"\x41\x00\x00\x00")


def reassemble_pieces(pieces, sender=5, sim=None, reorder=False):
    sim = sim or Simulator()
    done = []
    reassembler = frag.Reassembler(sim, lambda d, s: done.append((d, s)))
    ordered = list(reversed(pieces)) if reorder else pieces
    for piece in ordered:
        reassembler.accept(piece, sender)
    return sim, reassembler, done


class TestReassembly:
    def test_roundtrip_in_order(self):
        data = bytes(range(250)) * 3
        pieces = frag.fragment(data, tag=9, max_fragment_payload=116)
        _, reassembler, done = reassemble_pieces(pieces)
        assert done == [(data, 5)]
        assert reassembler.pending() == 0

    def test_roundtrip_out_of_order(self):
        data = bytes(600)
        pieces = frag.fragment(data, tag=9, max_fragment_payload=116)
        _, _, done = reassemble_pieces(pieces, reorder=True)
        assert done and done[0][0] == data

    def test_interleaved_senders(self):
        sim = Simulator()
        done = []
        reassembler = frag.Reassembler(sim, lambda d, s: done.append((d, s)))
        a = frag.fragment(b"A" * 300, tag=1, max_fragment_payload=116)
        b = frag.fragment(b"B" * 300, tag=1, max_fragment_payload=116)
        for pa, pb in zip(a, b):
            reassembler.accept(pa, sender=10)
            reassembler.accept(pb, sender=11)
        assert sorted(done) == [(b"A" * 300, 10), (b"B" * 300, 11)]

    def test_missing_fragment_times_out(self):
        sim = Simulator()
        done = []
        reassembler = frag.Reassembler(sim, lambda d, s: done.append(d))
        pieces = frag.fragment(bytes(500), tag=2, max_fragment_payload=116)
        for piece in pieces[:-1]:  # drop the last fragment
            reassembler.accept(piece, sender=1)
        sim.run(until=10 * SEC)
        assert done == []
        assert reassembler.timeouts == 1
        assert reassembler.pending() == 0

    def test_garbage_counted(self):
        sim = Simulator()
        reassembler = frag.Reassembler(sim, lambda d, s: None)
        reassembler.accept(b"\xc0", sender=1)
        assert reassembler.parse_errors == 1

    @given(size=st.integers(min_value=120, max_value=1280),
           budget=st.integers(min_value=40, max_value=116))
    @settings(max_examples=100)
    def test_roundtrip_property(self, size, budget):
        data = bytes(i & 0xFF for i in range(size))
        pieces = frag.fragment(data, tag=size & 0xFFFF, max_fragment_payload=budget)
        _, _, done = reassemble_pieces(pieces)
        assert done and done[0][0] == data


class TestNetifIntegration:
    def make_net(self, **kwargs):
        from repro.ieee802154 import CsmaNetwork

        net = CsmaNetwork(2, seed=95, **kwargs)
        net.apply_edges([(0, 1)])
        return net

    def make_big_packet(self, payload_len=400):
        from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet, UdpDatagram

        src = Ipv6Address.mesh_local(1)
        dst = Ipv6Address.mesh_local(0)
        dgram = UdpDatagram(5683, 5683, bytes(payload_len))
        return Ipv6Packet(src=src, dst=dst, payload=dgram.encode(src, dst))

    def test_large_datagram_fragments_and_arrives(self):
        net = self.make_net()
        got = []
        net.nodes[0].udp.bind(5683, lambda p, src, sport: got.append(len(p)))
        assert net.nodes[1].netif.send(self.make_big_packet(400), next_hop_ll=0)
        net.run(5 * SEC)
        assert got == [400]
        assert net.nodes[1].netif.tx_fragmented_datagrams == 1
        assert net.nodes[0].netif.reassembler.datagrams_reassembled == 1

    def test_pktbuf_freed_after_fragmented_send(self):
        net = self.make_net()
        net.nodes[1].netif.send(self.make_big_packet(400), next_hop_ll=0)
        net.run(5 * SEC)
        assert net.nodes[1].pktbuf.used == 0

    def test_beyond_mtu_still_refused(self):
        net = self.make_net()
        huge = self.make_big_packet(1260)  # 1308-byte IPv6 datagram
        assert not net.nodes[1].netif.send(huge, next_hop_ll=0)
        assert net.nodes[1].netif.drops_too_big == 1
