"""Tests for table and ASCII-plot rendering."""

import math

from repro.exp.asciiplot import render_cdf, render_heat_rows, render_series
from repro.exp.events import EventLog
from repro.exp.report import format_table


class TestTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["x", 1.23456], ["longer", 2]])
        lines = out.splitlines()
        assert lines[0].index("value") == lines[2].index("1.235")

    def test_title(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.999499]])
        assert "0.9995" in out


class TestPlots:
    def test_cdf_renders_all_series(self):
        out = render_cdf(
            {
                "tree": ([0.1, 0.2, 0.3], [0.33, 0.66, 1.0]),
                "line": ([0.5, 1.0], [0.5, 1.0]),
            },
            x_label="RTT [s]",
        )
        assert "a = tree" in out
        assert "b = line" in out
        assert "RTT [s]" in out

    def test_cdf_empty(self):
        assert render_cdf({}) == "(no data)"

    def test_series_bounds(self):
        out = render_series({"pdr": ([0, 10, 20], [1.0, 0.5, 0.75])})
        assert "1.00|" in out
        assert "0.00|" in out

    def test_heat_rows_with_nan(self):
        out = render_heat_rows({"node 1": [0.0, 0.5, 1.0, math.nan]})
        assert "?" in out
        assert "node 1" in out
        assert "scale" in out


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit(10, "conn-loss", node=1, peer=2)
        log.emit(20, "reconnect", node=1)
        log.emit(30, "conn-loss", node=3, peer=4)
        assert log.count("conn-loss") == 2
        losses = list(log.of_kind("conn-loss"))
        assert losses[0].get("node") == 1
        assert losses[1].time_ns == 30
        assert len(log) == 3

    def test_get_default(self):
        log = EventLog()
        log.emit(1, "x", a=1)
        assert next(iter(log)).get("missing", 42) == 42
