"""Tests for table and ASCII-plot rendering."""

import math

from repro.exp.asciiplot import render_cdf, render_heat_rows, render_series
from repro.exp.events import EventLog
from repro.exp.report import format_table


class TestTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["x", 1.23456], ["longer", 2]])
        lines = out.splitlines()
        # the name column is text -> left-aligned; the value column is
        # numeric -> right-aligned, so both cells end at the same offset
        assert lines[0].index("name") == lines[2].index("x")
        assert lines[2].rstrip().endswith("1.2346")
        assert lines[3].rstrip().endswith("     2")
        assert len(lines[2]) == len(lines[3])

    def test_numeric_column_right_aligns_header(self):
        out = format_table(["metric", "ms"], [["rtt", 1000.0], ["jit", 5.0]])
        lines = out.splitlines()
        assert lines[0].rstrip().endswith("       ms")
        assert lines[2].rstrip().endswith("1000.0000")
        assert lines[3].rstrip().endswith("   5.0000")

    def test_mixed_column_stays_left_aligned(self):
        out = format_table(["v"], [["5"], ["n/a"]])
        assert "n/a" in out
        lines = out.splitlines()
        assert lines[2].startswith("5")

    def test_placeholders_do_not_break_numeric_detection(self):
        out = format_table(["v"], [["5"], ["-"], ["nan"], [""]])
        lines = out.splitlines()
        # "-"/"nan"/"" are neutral; the column is judged numeric and
        # everything right-aligns
        assert lines[2].rstrip().endswith("  5")
        assert lines[3].rstrip().endswith("  -")

    def test_all_placeholder_column_is_not_numeric(self):
        out = format_table(["v"], [["-"], ["-"]])
        assert out.splitlines()[2].startswith("-")

    def test_percent_and_scientific_cells_count_as_numeric(self):
        out = format_table(["p"], [["12.5%"], ["1e-3"], ["+4"]])
        lines = out.splitlines()
        assert lines[2].rstrip().endswith("12.5%")
        assert lines[3].rstrip().endswith(" 1e-3")

    def test_title(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.999499]])
        assert "0.9995" in out

    def test_bool_cells_are_not_numeric(self):
        out = format_table(["flag"], [[True], [False]])
        lines = out.splitlines()
        assert lines[2].startswith("True")


class TestPlots:
    def test_cdf_renders_all_series(self):
        out = render_cdf(
            {
                "tree": ([0.1, 0.2, 0.3], [0.33, 0.66, 1.0]),
                "line": ([0.5, 1.0], [0.5, 1.0]),
            },
            x_label="RTT [s]",
        )
        assert "a = tree" in out
        assert "b = line" in out
        assert "RTT [s]" in out

    def test_cdf_empty(self):
        assert render_cdf({}) == "(no data)"

    def test_series_bounds(self):
        out = render_series({"pdr": ([0, 10, 20], [1.0, 0.5, 0.75])})
        assert "1.00|" in out
        assert "0.00|" in out

    def test_series_empty(self):
        assert render_series({}) == "(no data)"

    def test_series_legend_and_axis(self):
        out = render_series(
            {"pdr": ([0, 30], [1.0, 0.9])}, x_label="t [min]"
        )
        assert "a = pdr" in out
        assert "t [min]" in out
        assert "30" in out.splitlines()[-2]  # x-axis max

    def test_series_clamps_out_of_range_values(self):
        # values outside [y_lo, y_hi] must land on the border rows,
        # not crash or index off the grid
        out = render_series({"v": ([0, 1], [-2.0, 5.0])})
        assert "a" in out

    def test_cdf_marker_on_top_row_at_full_probability(self):
        out = render_cdf({"x": ([1.0], [1.0])})
        assert out.splitlines()[0].count("a") == 1

    def test_heat_rows_shade_ordering(self):
        out = render_heat_rows({"n": [0.0, 1.0]})
        row = out.splitlines()[0]
        cells = row.split("|")[1]
        assert cells[0] == " " and cells[1] == "@"

    def test_heat_rows_with_nan(self):
        out = render_heat_rows({"node 1": [0.0, 0.5, 1.0, math.nan]})
        assert "?" in out
        assert "node 1" in out
        assert "scale" in out


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit(10, "conn-loss", node=1, peer=2)
        log.emit(20, "reconnect", node=1)
        log.emit(30, "conn-loss", node=3, peer=4)
        assert log.count("conn-loss") == 2
        losses = list(log.of_kind("conn-loss"))
        assert losses[0].get("node") == 1
        assert losses[1].time_ns == 30
        assert len(log) == 3

    def test_get_default(self):
        log = EventLog()
        log.emit(1, "x", a=1)
        assert next(iter(log)).get("missing", 42) == 42
