"""EventLog: per-kind index, JSONL export, legacy-pickle compatibility."""

import json
import pickle

from repro.exp.events import EventLog, EventRecord


def _sample_log() -> EventLog:
    log = EventLog()
    log.emit(10, "tx", node=0, nbytes=21)
    log.emit(20, "rx", node=1, nbytes=21)
    log.emit(30, "tx", node=0, nbytes=7)
    log.emit(40, "drop", node=2, cause="queue-full")
    return log


class TestIndex:
    def test_of_kind_returns_matching_records_in_time_order(self):
        log = _sample_log()
        times = [r.time_ns for r in log.of_kind("tx")]
        assert times == [10, 30]

    def test_of_kind_unknown_kind_is_empty(self):
        assert list(_sample_log().of_kind("nope")) == []

    def test_count_matches_of_kind(self):
        log = _sample_log()
        for kind in ("tx", "rx", "drop", "nope"):
            assert log.count(kind) == len(list(log.of_kind(kind)))
        assert log.count("tx") == 2

    def test_kinds_in_first_seen_order(self):
        assert _sample_log().kinds() == ["tx", "rx", "drop"]

    def test_index_agrees_with_full_scan(self):
        """The index is an optimization, never a semantic change: per-kind
        views must exactly equal a filter over the raw record stream."""
        log = _sample_log()
        for kind in log.kinds():
            scanned = [r for r in log if r.kind == kind]
            assert list(log.of_kind(kind)) == scanned

    def test_len_and_iter_cover_all_records(self):
        log = _sample_log()
        assert len(log) == 4
        assert [r.kind for r in log] == ["tx", "rx", "tx", "drop"]

    def test_record_get(self):
        record = EventRecord(5, "tx", (("node", 3), ("nbytes", 9)))
        assert record.get("node") == 3
        assert record.get("missing", "d") == "d"


class TestJsonl:
    def test_lines_carry_time_kind_and_fields(self):
        lines = _sample_log().to_jsonl().splitlines()
        assert len(lines) == 4
        first = json.loads(lines[0])
        assert first == {"t": 10, "kind": "tx", "node": 0, "nbytes": 21}

    def test_bytes_fields_are_hex_encoded(self):
        log = EventLog()
        log.emit(1, "pdu", data=b"\x01\xab", mutable=bytearray(b"\xff"))
        obj = json.loads(log.to_jsonl())
        assert obj["data"] == "01ab"
        assert obj["mutable"] == "ff"

    def test_document_ends_with_newline(self):
        assert _sample_log().to_jsonl().endswith("\n")

    def test_empty_log_serializes_to_empty_string(self):
        assert EventLog().to_jsonl() == ""

    def test_write_jsonl_streams_identical_bytes(self, tmp_path):
        log = _sample_log()
        path = tmp_path / "events.jsonl"
        with path.open("w") as fh:
            written = log.write_jsonl(fh)
        assert written == 4
        assert path.read_text() == log.to_jsonl()

    def test_write_jsonl_empty_log_writes_nothing(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with path.open("w") as fh:
            assert EventLog().write_jsonl(fh) == 0
        assert path.read_text() == ""

    def test_write_jsonl_accepts_any_text_sink(self):
        import io

        chunks = []

        class Sink(io.TextIOBase):
            def write(self, text):
                chunks.append(text)
                return len(text)

        log = _sample_log()
        log.write_jsonl(Sink())
        assert "".join(chunks) == log.to_jsonl()


class TestPickle:
    def test_round_trip_preserves_records_and_index(self):
        log = _sample_log()
        clone = pickle.loads(pickle.dumps(log))
        assert clone == log
        assert clone.count("tx") == 2
        assert [r.time_ns for r in clone.of_kind("tx")] == [10, 30]

    def test_legacy_pickle_without_index_rebuilds_it(self):
        """Cached results from before the per-kind index existed unpickle
        into a state dict with no ``_by_kind``; loading must rebuild it."""
        log = _sample_log()
        state = dict(log.__dict__)
        del state["_by_kind"]
        revived = EventLog.__new__(EventLog)
        revived.__setstate__(state)
        assert revived == log
        assert revived.count("tx") == 2
        assert revived.kinds() == ["tx", "rx", "drop"]

    def test_equality_ignores_index_internals(self):
        a, b = _sample_log(), _sample_log()
        assert a == b
        b.emit(50, "tx", node=0)
        assert a != b
        assert a != object() or True  # NotImplemented path doesn't raise
