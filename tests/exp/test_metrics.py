"""Tests for metric helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.exp.metrics import (
    EmptySampleError,
    binned_pdr,
    cdf,
    mean,
    per_channel_pdr,
    percentile,
    summarize_rtt,
)
from repro.sim.units import SEC


class TestCdf:
    def test_basic(self):
        xs, ps = cdf([3.0, 1.0, 2.0])
        assert xs == [1.0, 2.0, 3.0]
        assert ps == pytest.approx([1 / 3, 2 / 3, 1.0])

    @given(samples=st.lists(st.floats(0, 100), min_size=1, max_size=50))
    def test_properties(self, samples):
        xs, ps = cdf(samples)
        assert xs == sorted(xs)
        assert ps[-1] == pytest.approx(1.0)
        assert all(0 < p <= 1 for p in ps)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 1, 9]
        assert percentile(data, 0.0) == 1
        assert percentile(data, 1.0) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestBinnedPdr:
    def test_all_delivered(self):
        requests = [int(0.5 * SEC), int(1.5 * SEC)]
        times, pdrs = binned_pdr(requests, requests, bin_s=1.0, t_end_s=2.0)
        assert times == [0.5, 1.5]
        assert pdrs == [1.0, 1.0]

    def test_partial_delivery(self):
        requests = [int(0.2 * SEC), int(0.7 * SEC)]
        times, pdrs = binned_pdr(requests, requests[:1], bin_s=1.0, t_end_s=1.0)
        assert pdrs == [0.5]

    def test_empty_bins_skipped(self):
        requests = [int(2.5 * SEC)]
        times, pdrs = binned_pdr(requests, [], bin_s=1.0, t_end_s=4.0)
        assert times == [2.5]
        assert pdrs == [0.0]

    def test_out_of_window_ignored(self):
        requests = [int(9.0 * SEC)]
        times, pdrs = binned_pdr(requests, requests, bin_s=1.0, t_end_s=5.0)
        assert times == []

    def test_validation(self):
        with pytest.raises(ValueError):
            binned_pdr([], [], bin_s=0, t_end_s=1)


class TestPerChannel:
    def test_basic(self):
        counts = [[10, 9], [0, 0], [4, 4]]
        pdrs = per_channel_pdr(counts)
        assert pdrs[0] == 0.9
        assert math.isnan(pdrs[1])
        assert pdrs[2] == 1.0


def test_mean_and_summary():
    assert mean([1.0, 3.0]) == 2.0
    with pytest.raises(ValueError):
        mean([])
    summary = summarize_rtt([0.1] * 99 + [1.0])
    assert summary["p50"] == pytest.approx(0.1)
    assert summary["max"] == 1.0
    assert summary["p99"] < 1.0


class TestEmptySamples:
    """Zero-packet runs degrade to NaN instead of crashing summaries."""

    def test_empty_sample_error_is_a_value_error(self):
        assert issubclass(EmptySampleError, ValueError)
        with pytest.raises(EmptySampleError):
            percentile([], 0.5)
        with pytest.raises(EmptySampleError):
            mean([])

    def test_bad_q_is_not_an_empty_sample_error(self):
        try:
            percentile([1.0], 2.0)
        except EmptySampleError:  # pragma: no cover - would be a bug
            pytest.fail("q validation must not raise EmptySampleError")
        except ValueError:
            pass

    def test_summarize_rtt_degrades_to_nan(self):
        summary = summarize_rtt([])
        assert set(summary) == {"mean", "p50", "p90", "p99", "max"}
        assert all(math.isnan(v) for v in summary.values())

    def test_repeated_result_pooled_percentile_degrades_to_nan(self):
        from repro.exp.config import ExperimentConfig
        from repro.exp.repeat import RepeatedResult

        empty = RepeatedResult(config=ExperimentConfig())
        assert math.isnan(empty.rtt_percentile(0.5))
