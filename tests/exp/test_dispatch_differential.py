"""Serial vs lookahead dispatch through the full stack: byte-identical.

The kernel-level lockstep suite (``tests/sim/test_lookahead.py``) proves
the windowed dispatcher replays serial order on synthetic workloads; this
suite proves it on the *real* stack, end-to-end through the experiment
runner: the pinned golden scenarios (3-hop line, 100-node spatial
statconn, churn/mobility/rotation mesh) plus tree and mesh fleets must
produce byte-identical JSONL traces under ``kernel.dispatch=lookahead``.

Traced runs execute merged (exact global ``(when, seq)`` order), so
identity here is by construction -- what the differential actually hunts
is everything around the merge seam: window drains, lane routing of
in-window schedules, cut handling for global-lane timers (samplers,
churn/mobility drivers), cluster derivation from the spatial medium, and
per-cluster loss-stream attachment, any of which would desynchronize the
trace within a few records if wrong.

Where a committed golden file exists it stands in for the serial arm
(``tests/trace/test_golden.py`` pins serial == golden), so each scenario
costs one lookahead run, not two.
"""

from dataclasses import replace

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_experiment
from repro.trace.sinks import records_to_jsonl
from tests.trace.test_golden import (
    CHURN_25,
    GOLDEN_DIR,
    SCALE_100,
    SCENARIOS,
    THREE_HOP,
)

LOOKAHEAD = {"dispatch": "lookahead", "workers": 2}

#: Tree / mesh fleets (no committed golden: both arms run fresh).
TREE = ExperimentConfig(
    name="diff-tree",
    topology="tree",
    n_nodes=15,  # the paper tree is defined for exactly 15 nodes
    duration_s=2.0,
    warmup_s=1.0,
    drain_s=0.5,
    producer_interval_s=0.5,
    seed=23,
    trace=True,
    trace_layers="ble,ip,coap",
)

MESH = ExperimentConfig(
    name="diff-mesh",
    topology="dynamic",  # self-forming mesh (the bench "mesh" scenario)
    n_nodes=6,
    duration_s=3.0,
    warmup_s=12.0,
    drain_s=1.0,
    producer_interval_s=0.5,
    seed=29,
    trace=True,
    trace_layers="ble,ip,coap",
)


def _jsonl(config: ExperimentConfig, kernel=None) -> str:
    if kernel is not None:
        config = replace(config, kernel=kernel)
    result = run_experiment(config)
    assert result.trace_records, "trace-enabled run produced no records"
    return records_to_jsonl(result.trace_records)


def _serial_jsonl(config: ExperimentConfig) -> str:
    """The serial arm: the committed golden when pinned, else a fresh run."""
    for filename, pinned in SCENARIOS.items():
        if pinned is config and (GOLDEN_DIR / filename).exists():
            return (GOLDEN_DIR / filename).read_text()
    return _jsonl(config)


GOLDEN_CASES = {
    "3hop": THREE_HOP,
    "scale100": SCALE_100,
    "churn": CHURN_25,
}


@pytest.mark.parametrize("label", sorted(GOLDEN_CASES))
def test_golden_scenarios_byte_identical_under_lookahead(label):
    config = GOLDEN_CASES[label]
    assert _jsonl(config, LOOKAHEAD) == _serial_jsonl(config)


@pytest.mark.parametrize("config", (TREE, MESH), ids=("tree", "mesh"))
def test_tree_and_mesh_byte_identical_under_lookahead(config):
    assert _jsonl(config, LOOKAHEAD) == _jsonl(config)


def test_inline_seam_matches_thread_seam():
    """workers=1 (inline lanes) and workers=2 (thread seam) are the same
    schedule by construction; the seam must not leak into the trace."""
    one = _jsonl(THREE_HOP, {"dispatch": "lookahead", "workers": 1})
    two = _jsonl(THREE_HOP, {"dispatch": "lookahead", "workers": 2})
    assert one == two


def test_uninstrumented_run_same_observables():
    """With tracing off the windows run unmerged; end-of-run observables
    must still match serial exactly (single radio component => every
    window is still serial-ordered, and the medium keeps its legacy loss
    stream)."""
    base = replace(THREE_HOP, trace=False, trace_layers="")
    serial = run_experiment(base)
    look = run_experiment(replace(base, kernel=LOOKAHEAD))
    assert look.network.sim.events_executed == serial.network.sim.events_executed
    assert look.coap_pdr() == serial.coap_pdr()
    assert look.rtts_s() == serial.rtts_s()
    assert look.link_pdr_overall() == serial.link_pdr_overall()
    assert look.num_connection_losses() == serial.num_connection_losses()


def test_metrics_snapshot_identical_under_lookahead():
    """METRICS forces merged windows exactly like TRACE does: the whole
    metrics payload (scopes + time series) must be byte-equal."""
    base = replace(THREE_HOP, trace=False, trace_layers="", metrics=True)
    serial = run_experiment(base)
    look = run_experiment(replace(base, kernel=LOOKAHEAD))
    assert look.metrics == serial.metrics


def test_lookahead_requires_ble_link_layer():
    config = replace(THREE_HOP, link_layer="802154", kernel=LOOKAHEAD)
    with pytest.raises(ValueError, match="BLE link layer"):
        run_experiment(config)


def test_lookahead_attaches_cluster_partition_to_medium():
    result = run_experiment(
        replace(TREE, trace=False, trace_layers="", kernel=LOOKAHEAD)
    )
    medium = result.network.medium
    assert medium.clusters is not None
    # geometry-less tree fleet: one world cluster holding every node
    assert medium.clusters.roots() == [min(medium.nodes)]
    # the executor was torn down after the run (no leaked worker pool)
    assert result.network.sim.dispatch == "serial"
