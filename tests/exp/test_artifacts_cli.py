"""Tests for the artifact pipeline and the CLI."""

import json

import pytest

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.artifacts import render_summary, write_artifacts
from repro.exp.cli import main


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        ExperimentConfig(name="artifacts", duration_s=20.0, warmup_s=4.0,
                         drain_s=3.0, sample_period_s=5.0, seed=3)
    )


class TestArtifacts:
    def test_triple_written(self, result, tmp_path):
        out = write_artifacts(result, tmp_path / "run1")
        assert (out / "experiment.yml").exists()
        assert (out / "results.jsonl").exists()
        assert (out / "summary.txt").exists()

    def test_description_roundtrips(self, result, tmp_path):
        out = write_artifacts(result, tmp_path / "run2")
        text = (out / "experiment.yml").read_text()
        assert ExperimentConfig.from_yaml(text) == result.config

    def test_results_log_is_valid_jsonl(self, result, tmp_path):
        out = write_artifacts(result, tmp_path / "run3")
        records = [
            json.loads(line)
            for line in (out / "results.jsonl").read_text().splitlines()
        ]
        kinds = {r["type"] for r in records}
        assert "request" in kinds
        assert "link-sample" in kinds
        requests = [r for r in records if r["type"] == "request"]
        assert len(requests) == result.coap_sent()
        assert sum(r["acked"] for r in requests) == result.coap_acked()

    def test_summary_contains_headline_metrics(self, result):
        text = render_summary(result)
        assert "CoAP PDR" in text
        assert "RTT p50" in text
        assert "RTT CDF" in text


class TestCli:
    def test_describe_prints_valid_yaml(self, capsys):
        assert main(["describe", "--name", "tpl"]) == 0
        out = capsys.readouterr().out
        config = ExperimentConfig.from_yaml(out)
        assert config.name == "tpl"

    def test_run_with_overrides(self, tmp_path, capsys):
        desc = tmp_path / "exp.yml"
        desc.write_text(ExperimentConfig(name="cli-test").to_yaml())
        code = main([
            "run", str(desc),
            "--set", "duration_s=10",
            "--set", "n_nodes=15",
            "-o", str(tmp_path / "out"),
        ])
        assert code == 0
        assert (tmp_path / "out" / "summary.txt").exists()
        assert "CoAP PDR" in capsys.readouterr().out

    def test_bad_override_rejected(self, tmp_path):
        desc = tmp_path / "exp.yml"
        desc.write_text(ExperimentConfig().to_yaml())
        with pytest.raises(SystemExit):
            main(["run", str(desc), "--set", "nonsense=1"])
        with pytest.raises(SystemExit):
            main(["run", str(desc), "--set", "garbage"])

    def test_bool_override_parsing(self, tmp_path, capsys):
        desc = tmp_path / "exp.yml"
        desc.write_text(ExperimentConfig(name="b").to_yaml())
        code = main([
            "run", str(desc),
            "--set", "duration_s=10",
            "--set", "confirmable=true",
        ])
        assert code == 0
