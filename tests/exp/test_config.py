"""Tests for experiment descriptions."""

import json
import random

import pytest

from repro.core.intervals import RandomWindowIntervalPolicy, StaticIntervalPolicy
from repro.exp.config import ExperimentConfig, canonical_value, parse_interval_spec
from repro.sim.units import MSEC


class TestIntervalSpec:
    def test_static(self):
        policy = parse_interval_spec("75")
        assert isinstance(policy, StaticIntervalPolicy)
        assert policy.interval_ns == 75 * MSEC

    def test_window(self):
        policy = parse_interval_spec("[65:85]", random.Random(1))
        assert isinstance(policy, RandomWindowIntervalPolicy)
        assert policy.lo_ns == 65 * MSEC
        assert policy.hi_ns == 85 * MSEC

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_interval_spec("75ms")
        with pytest.raises(ValueError):
            parse_interval_spec("[65-85]")


class TestConfig:
    def test_defaults_are_paper_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.topology == "tree"
        assert cfg.conn_interval == "75"
        assert cfg.producer_interval_s == 1.0
        assert cfg.producer_jitter_s == 0.5
        assert cfg.payload_len == 39
        assert cfg.pktbuf_bytes == 6144

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(topology="ring")
        with pytest.raises(ValueError):
            ExperimentConfig(link_layer="lora")
        with pytest.raises(ValueError):
            ExperimentConfig(scheduler_policy="magic")
        with pytest.raises(ValueError):
            ExperimentConfig(conn_interval="nope")
        with pytest.raises(ValueError):
            ExperimentConfig(duration_s=0)

    def test_spatial_validation(self):
        # spatial topologies stand alone; geometry gates 'dynamic' only
        ExperimentConfig(topology="rgg")  # valid
        ExperimentConfig(topology="dynamic", geometry="rgg")  # valid
        with pytest.raises(ValueError):
            ExperimentConfig(topology="rgg", geometry="rgg")
        with pytest.raises(ValueError):
            ExperimentConfig(topology="tree", geometry="rgg")
        with pytest.raises(ValueError):
            ExperimentConfig(topology="grid", link_layer="802154")
        with pytest.raises(ValueError):
            ExperimentConfig(geometry="donut")
        with pytest.raises(ValueError):
            ExperimentConfig(spatial_index="quadtree")
        with pytest.raises(ValueError):
            ExperimentConfig(radio_range_m=-1.0)
        with pytest.raises(ValueError):
            ExperimentConfig(topology="dynamic", max_children=0)

    def test_random_interval_detection(self):
        assert ExperimentConfig(conn_interval="[65:85]").uses_random_intervals
        assert not ExperimentConfig(conn_interval="75").uses_random_intervals

    def test_total_runtime(self):
        cfg = ExperimentConfig(duration_s=100, warmup_s=5, drain_s=3)
        assert cfg.total_runtime_s == 108

    def test_yaml_roundtrip(self):
        cfg = ExperimentConfig(
            name="fig7", topology="line", conn_interval="[65:85]", seed=42
        )
        text = cfg.to_yaml()
        assert "fig7" in text
        assert ExperimentConfig.from_yaml(text) == cfg

    def test_yaml_missing_key(self):
        with pytest.raises(ValueError):
            ExperimentConfig.from_yaml("foo: bar")


class TestCanonicalSerialization:
    """Cache keys must be bit-stable (see repro.exp.cache)."""

    #: The default config's hash, pinned.  If this changes, either a config
    #: field changed (bump CONFIG_SCHEMA_VERSION and re-pin) or canonical
    #: serialization regressed (fix it): every on-disk cache is invalidated
    #: either way, which must be a deliberate decision.
    GOLDEN_DEFAULT_HASH = (
        "f4f01f1dbc6f47e6d78dd7afea6a8a8982a53e1123e969cec9d6d9ba5a88031c"
    )

    def test_default_config_hash_is_golden_constant(self):
        assert ExperimentConfig().stable_hash() == self.GOLDEN_DEFAULT_HASH

    def test_hash_is_stable_across_instances(self):
        a = ExperimentConfig(name="x", seed=3, duration_s=30.0)
        b = ExperimentConfig(name="x", seed=3, duration_s=30.0)
        assert a.stable_hash() == b.stable_hash()

    def test_canonical_json_sorts_keys(self):
        keys = list(json.loads(ExperimentConfig().canonical_json()))
        assert keys == sorted(keys)

    def test_floats_are_hex_encoded(self):
        # 0.1 has no short decimal form; hex encodes the exact bits
        data = json.loads(
            ExperimentConfig(producer_interval_s=0.1).canonical_json()
        )
        assert data["producer_interval_s"] == (0.1).hex()

    def test_canonical_value_handles_containers(self):
        assert canonical_value((1, 2.5)) == [1, (2.5).hex()]
        assert canonical_value({"b": 1, "a": None}) == {"a": None, "b": 1}
        assert canonical_value(True) is True

    def test_extra_tag_changes_hash(self):
        cfg = ExperimentConfig()
        assert cfg.stable_hash() != cfg.stable_hash(extra="v2")

    def test_seed_changes_hash(self):
        assert (
            ExperimentConfig(seed=1).stable_hash()
            != ExperimentConfig(seed=2).stable_hash()
        )

    def test_drift_ppms_covered(self):
        ppms = tuple(float(i) for i in range(15))
        assert (
            ExperimentConfig(drift_ppms=ppms).stable_hash()
            != ExperimentConfig().stable_hash()
        )
