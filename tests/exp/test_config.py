"""Tests for experiment descriptions."""

import random

import pytest

from repro.core.intervals import RandomWindowIntervalPolicy, StaticIntervalPolicy
from repro.exp.config import ExperimentConfig, parse_interval_spec
from repro.sim.units import MSEC


class TestIntervalSpec:
    def test_static(self):
        policy = parse_interval_spec("75")
        assert isinstance(policy, StaticIntervalPolicy)
        assert policy.interval_ns == 75 * MSEC

    def test_window(self):
        policy = parse_interval_spec("[65:85]", random.Random(1))
        assert isinstance(policy, RandomWindowIntervalPolicy)
        assert policy.lo_ns == 65 * MSEC
        assert policy.hi_ns == 85 * MSEC

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_interval_spec("75ms")
        with pytest.raises(ValueError):
            parse_interval_spec("[65-85]")


class TestConfig:
    def test_defaults_are_paper_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.topology == "tree"
        assert cfg.conn_interval == "75"
        assert cfg.producer_interval_s == 1.0
        assert cfg.producer_jitter_s == 0.5
        assert cfg.payload_len == 39
        assert cfg.pktbuf_bytes == 6144

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(topology="ring")
        with pytest.raises(ValueError):
            ExperimentConfig(link_layer="lora")
        with pytest.raises(ValueError):
            ExperimentConfig(scheduler_policy="magic")
        with pytest.raises(ValueError):
            ExperimentConfig(conn_interval="nope")
        with pytest.raises(ValueError):
            ExperimentConfig(duration_s=0)

    def test_random_interval_detection(self):
        assert ExperimentConfig(conn_interval="[65:85]").uses_random_intervals
        assert not ExperimentConfig(conn_interval="75").uses_random_intervals

    def test_total_runtime(self):
        cfg = ExperimentConfig(duration_s=100, warmup_s=5, drain_s=3)
        assert cfg.total_runtime_s == 108

    def test_yaml_roundtrip(self):
        cfg = ExperimentConfig(
            name="fig7", topology="line", conn_interval="[65:85]", seed=42
        )
        text = cfg.to_yaml()
        assert "fig7" in text
        assert ExperimentConfig.from_yaml(text) == cfg

    def test_yaml_missing_key(self):
        with pytest.raises(ValueError):
            ExperimentConfig.from_yaml("foo: bar")
