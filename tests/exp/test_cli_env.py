"""Regression: non-numeric REPRO_WORKERS must warn and fall back, not crash.

``int(os.environ.get("REPRO_WORKERS", "0"))`` used to raise a bare
``ValueError`` deep inside sweep dispatch when the variable held anything
non-numeric; the CLI now funnels every integer env read through
``_env_int``, which warns on stderr and uses the default.
"""

import pytest

from repro.exp.cli import _env_int


class TestEnvInt:
    def test_unset_returns_default_silently(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert _env_int("REPRO_WORKERS", 3) == 3
        assert capsys.readouterr().err == ""

    def test_blank_returns_default_silently(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WORKERS", "   ")
        assert _env_int("REPRO_WORKERS", 2) == 2
        assert capsys.readouterr().err == ""

    def test_numeric_value_is_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert _env_int("REPRO_WORKERS") == 8

    def test_numeric_value_with_whitespace_is_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", " 4 \n")
        assert _env_int("REPRO_WORKERS") == 4

    @pytest.mark.parametrize("garbage", ["lots", "4.5", "four", "0x10", ""])
    def test_non_numeric_warns_and_falls_back(self, monkeypatch, capsys, garbage):
        monkeypatch.setenv("REPRO_WORKERS", garbage)
        assert _env_int("REPRO_WORKERS", 1) == 1
        err = capsys.readouterr().err
        if garbage.strip():
            assert "REPRO_WORKERS" in err
            assert repr(garbage) in err
        else:
            assert err == ""

    def test_sweep_workers_resolution_uses_fallback(self, monkeypatch, capsys):
        """The sweep path: garbage REPRO_WORKERS resolves to the CPU count
        instead of raising ValueError."""
        import os

        monkeypatch.setenv("REPRO_WORKERS", "many")
        workers = _env_int("REPRO_WORKERS") or (os.cpu_count() or 1)
        assert workers >= 1
        assert "REPRO_WORKERS" in capsys.readouterr().err
