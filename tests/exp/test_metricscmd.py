"""Tests for the ``repro metrics`` subcommand and its CLI wiring."""

import json

import pytest

from repro.exp.cli import main
from repro.exp.config import ExperimentConfig
from repro.exp.metricscmd import (
    example_config,
    render_metrics_summary,
    run_metrics,
)
from repro.obs.export import validate_metrics_document

QUICK = dict(
    topology="line", n_nodes=2,
    duration_s=6.0, warmup_s=2.0, drain_s=1.0, sample_period_s=5.0,
)


class TestExampleConfig:
    def test_is_a_multi_hop_line(self):
        cfg = example_config()
        assert cfg.topology == "line"
        assert cfg.n_nodes == 4  # 3 hops
        assert cfg.total_runtime_s < 30  # CI-speed

    def test_description_names_the_experiment(self):
        assert example_config("x").name == "x"


class TestRunMetrics:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("metrics")
        cfg = ExperimentConfig(name="q", seed=4, **QUICK)
        return run_metrics(cfg, str(out), repetitions=2)

    def test_writes_valid_document(self, report):
        doc = json.loads((report.outdir / "metrics.json").read_text())
        validate_metrics_document(doc)
        assert doc["runs"] == 2
        assert doc["seeds"] == [4000, 4001]

    def test_writes_prometheus_exposition(self, report):
        text = (report.outdir / "metrics.prom").read_text()
        assert "# TYPE repro_coap_requests_total counter" in text

    def test_writes_profile(self, report):
        prof = json.loads((report.outdir / "profile.json").read_text())
        assert prof["schema"] == "repro.obs.profile/1"
        assert prof["events"] > 0
        assert "ble" in prof["subsystems"]

    def test_summary_carries_the_events_per_sec_line(self, report):
        summary = render_metrics_summary(report)
        assert "events/sec: " in summary
        assert "metrics.json" in summary
        assert "CoAP RTT" in summary
        assert "subsystem" in summary  # the profile table

    def test_no_profile_mode(self, tmp_path):
        cfg = ExperimentConfig(name="np", seed=4, **QUICK)
        report = run_metrics(cfg, str(tmp_path), profile=False)
        assert report.profile is None
        assert not (tmp_path / "profile.json").exists()
        assert "events/sec" not in render_metrics_summary(report)

    def test_rejects_zero_repetitions(self, tmp_path):
        with pytest.raises(ValueError):
            run_metrics(example_config(), str(tmp_path), repetitions=0)


class TestCli:
    def test_metrics_subcommand_defaults(self, tmp_path, capsys):
        rc = main([
            "metrics", "-o", str(tmp_path / "out"),
            "--set", "n_nodes=2", "--set", "duration_s=5",
            "--set", "warmup_s=2", "--set", "drain_s=1",
            "--no-profile",
        ])
        assert rc == 0
        assert (tmp_path / "out" / "metrics.json").exists()
        out = capsys.readouterr().out
        assert "metrics: 1 run(s)" in out

    def test_run_with_metrics_flag_writes_document(self, tmp_path):
        yml = tmp_path / "e.yml"
        yml.write_text(
            ExperimentConfig(name="r", seed=4, **QUICK).to_yaml()
        )
        rc = main([
            "run", str(yml), "--metrics", "-o", str(tmp_path / "out"),
        ])
        assert rc == 0
        doc = json.loads((tmp_path / "out" / "metrics.json").read_text())
        validate_metrics_document(doc)
        assert doc["series"] is not None

    def test_sweep_with_metrics_flag_writes_merged_document(self, tmp_path):
        yml = tmp_path / "e.yml"
        yml.write_text(
            ExperimentConfig(name="s", seed=4, **QUICK).to_yaml()
        )
        rc = main([
            "sweep", str(yml), "--grid", "seed=4,5", "--seeds", "1",
            "--workers", "1", "--metrics", "--quiet",
            "-o", str(tmp_path / "out"),
        ])
        assert rc == 0
        doc = json.loads((tmp_path / "out" / "metrics.json").read_text())
        validate_metrics_document(doc)
        assert doc["runs"] == 2
