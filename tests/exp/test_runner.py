"""Tests for the experiment runner (short runs)."""

import pytest

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.metrics import aggregate_binned_pdr


SHORT = dict(duration_s=30.0, warmup_s=4.0, drain_s=3.0, sample_period_s=5.0)


@pytest.fixture(scope="module")
def tree_result():
    return run_experiment(ExperimentConfig(name="t", seed=5, **SHORT))


def test_all_producers_report(tree_result):
    assert len(tree_result.producers) == 14
    for producer in tree_result.producers:
        assert producer.requests_sent > 0


def test_moderate_load_is_lossless_modulo_conn_losses(tree_result):
    """§5.1's regime: the only CoAP losses come from connection losses."""
    if tree_result.num_connection_losses() == 0:
        assert tree_result.coap_pdr() == 1.0
    else:
        assert tree_result.coap_pdr() > 0.99


def test_link_series_cover_all_links(tree_result):
    links = {key for key, _ in tree_result.link_series}
    assert len(links) == 14
    for series in tree_result.link_series.values():
        assert series.times_s == sorted(series.times_s)
        # cumulative counters never decrease
        assert series.tx_attempts == sorted(series.tx_attempts)


def test_link_pdr_in_plausible_band(tree_result):
    """BER 1e-5 on ~110-byte packets: LL PDR in the paper's 98-99+ band."""
    assert 0.97 < tree_result.link_pdr_overall() <= 1.0


def test_binned_aggregate_pdr(tree_result):
    times, pdrs = aggregate_binned_pdr(
        tree_result.producers, bin_s=10.0, t_end_s=37.0
    )
    assert times
    assert all(0 <= p <= 1 for p in pdrs)


def test_rtts_reflect_tree_depth(tree_result):
    rtts = tree_result.rtts_s()
    assert rtts
    # mean hop count 2.14 at 75 ms intervals: mean RTT in the 50-500 ms band
    assert 0.03 < sum(rtts) / len(rtts) < 0.5


def test_line_topology_runs():
    result = run_experiment(
        ExperimentConfig(name="l", topology="line", seed=6, **SHORT)
    )
    assert result.coap_pdr() > 0.9
    line_mean = sum(result.rtts_s()) / len(result.rtts_s())
    assert line_mean > 0.15  # 7.5 mean hops is slower than the tree


def test_802154_runs_same_workload():
    result = run_experiment(
        ExperimentConfig(name="w", link_layer="802154", seed=7, **SHORT)
    )
    assert result.coap_pdr() > 0.5
    assert result.link_series == {}  # no BLE links to sample
    rtts = result.rtts_s()
    assert sum(rtts) / len(rtts) < 0.075  # backoff-sized delays


def test_random_interval_config_applies_policy():
    result = run_experiment(
        ExperimentConfig(name="r", conn_interval="[65:85]", seed=8, **SHORT)
    )
    net = result.network
    for node in net.nodes:
        intervals = node.controller.used_intervals_ns()
        assert len(set(intervals)) == len(intervals), (
            f"node {node.node_id} has colliding intervals {intervals}"
        )
    assert result.coap_pdr() > 0.99


def test_reproducible_with_same_seed():
    a = run_experiment(ExperimentConfig(name="a", seed=11, **SHORT))
    b = run_experiment(ExperimentConfig(name="b", seed=11, **SHORT))
    assert a.coap_sent() == b.coap_sent()
    assert a.coap_acked() == b.coap_acked()
    assert a.rtts_s() == b.rtts_s()


def test_different_seeds_differ():
    a = run_experiment(ExperimentConfig(name="a", seed=1, **SHORT))
    b = run_experiment(ExperimentConfig(name="b", seed=2, **SHORT))
    assert a.rtts_s() != b.rtts_s()


def test_energy_helpers(tree_result):
    """§5.4 integration: per-node currents from the run's event counters."""
    currents = tree_result.fleet_current_ua()
    assert set(currents) == set(range(15))
    for node_id, current in currents.items():
        assert current > 0
    # the root serves three subordinate-role links: it must draw more than
    # a leaf producer
    assert currents[0] > currents[14]
    with_idle = tree_result.node_current_ua(0, include_idle_board=True)
    assert with_idle == pytest.approx(currents[0] + 15.0)


def test_energy_helpers_none_for_802154():
    result = run_experiment(
        ExperimentConfig(name="e154", link_layer="802154", seed=2,
                         duration_s=10.0, warmup_s=2.0, drain_s=2.0)
    )
    assert result.node_current_ua(0) is None
    assert result.fleet_current_ua() is None


def test_upstream_series_lookup(tree_result):
    series = tree_result.upstream_series(1)
    assert series is not None
    assert series.overall_pdr() > 0.9
    assert tree_result.upstream_series(99) is None


class TestDynamicTopology:
    """The §9 future-work mode wired through the experiment framework."""

    def test_dynamic_experiment_end_to_end(self):
        result = run_experiment(
            ExperimentConfig(
                name="dyn", topology="dynamic", seed=21,
                duration_s=60.0, warmup_s=40.0, drain_s=5.0,
            )
        )
        net = result.network
        assert net.fully_joined()
        assert result.coap_pdr() > 0.95
        assert len(result.link_series) > 0  # sampler works on dynamic nets

    def test_dynamic_with_static_interval_spec(self):
        result = run_experiment(
            ExperimentConfig(
                name="dyn75", topology="dynamic", conn_interval="75", seed=22,
                duration_s=30.0, warmup_s=40.0, drain_s=5.0, n_nodes=8,
            )
        )
        net = result.network
        assert net.fully_joined()
        for node in net.nodes:
            for interval in node.controller.used_intervals_ns():
                assert interval == 75_000_000

    def test_dynamic_requires_ble(self):
        with pytest.raises(ValueError):
            ExperimentConfig(topology="dynamic", link_layer="802154")


class TestSamplerCadence:
    """The link sampler fires every ``sample_period_s`` and the final
    partial window is flushed at the horizon instead of being dropped."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            ExperimentConfig(
                name="cad", topology="line", n_nodes=2, seed=5,
                duration_s=20.0, warmup_s=3.0, drain_s=2.0,
                sample_period_s=10.0,
            )
        )

    def test_samples_at_period_multiples_plus_horizon(self, result):
        for series in result.link_series.values():
            # total runtime 25 s: periodic samples at 10 and 20, plus the
            # closing flush at 25 covering the final partial window
            assert series.times_s == [10.0, 20.0, 25.0]

    def test_final_window_carries_traffic(self, result):
        up = result.upstream_series(1)
        # producers run from t=3 to t=23: the 20..25 s window must have
        # seen attempts, which the pre-flush sampler used to drop
        assert up.tx_attempts[-1] > up.tx_attempts[-2]

    def test_no_flush_duplicate_when_horizon_is_a_multiple(self):
        result = run_experiment(
            ExperimentConfig(
                name="cad2", topology="line", n_nodes=2, seed=5,
                duration_s=16.0, warmup_s=3.0, drain_s=1.0,
                sample_period_s=10.0,
            )
        )
        for series in result.link_series.values():
            # runtime 20 s: the t=20 periodic tick never runs (the kernel
            # stops before the horizon), so the flush provides it -- once
            assert series.times_s == [10.0, 20.0]


class TestLinkSeries:
    def test_binned_pdr_deltas(self):
        from repro.exp.runner import LinkSeries

        series = LinkSeries(
            times_s=[10.0, 20.0, 30.0],
            tx_attempts=[100, 220, 300],
            tx_acked=[95, 200, 280],
        )
        times, pdrs = series.binned_pdr()
        assert times == [20.0, 30.0]
        assert pdrs[0] == pytest.approx(105 / 120)
        assert pdrs[1] == pytest.approx(80 / 80)
        assert series.overall_pdr() == pytest.approx(280 / 300)

    def test_empty_series(self):
        from repro.exp.runner import LinkSeries

        series = LinkSeries()
        assert series.binned_pdr() == ([], [])
        assert series.overall_pdr() == 1.0

    def test_idle_bins_skipped(self):
        from repro.exp.runner import LinkSeries

        series = LinkSeries(
            times_s=[10.0, 20.0], tx_attempts=[50, 50], tx_acked=[50, 50]
        )
        assert series.binned_pdr() == ([], [])
