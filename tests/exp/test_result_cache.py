"""Tests for the content-addressed on-disk result cache."""

import dataclasses
import pickle

import pytest

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.cache import RESULT_CACHE_VERSION, ResultCache
from repro.exp.portable import PortableResult

SHORT = dict(duration_s=10.0, warmup_s=4.0, drain_s=3.0)


@pytest.fixture(scope="module")
def portable():
    """One short run, flattened (module-scoped: the run is the slow part)."""
    return run_experiment(ExperimentConfig(name="cache", seed=7, **SHORT)).to_portable()


class TestRoundTrip:
    def test_disk_round_trip_is_equal(self, tmp_path, portable):
        cache = ResultCache(tmp_path)
        cache.put(portable.config, portable)
        loaded = cache.get(portable.config)
        assert loaded == portable  # dataclass equality, all fields deep

    def test_round_trip_preserves_metrics(self, tmp_path, portable):
        cache = ResultCache(tmp_path)
        cache.put(portable.config, portable)
        loaded = cache.get(portable.config)
        assert loaded.coap_pdr() == portable.coap_pdr()
        assert loaded.rtts_s() == portable.rtts_s()
        assert loaded.link_pdr_overall() == portable.link_pdr_overall()
        assert loaded.num_connection_losses() == portable.num_connection_losses()
        assert loaded.fleet_current_ua() == portable.fleet_current_ua()

    def test_pickle_stability(self, portable):
        clone = pickle.loads(pickle.dumps(portable))
        assert clone == portable


class TestAccounting:
    def test_hit_miss_counters(self, tmp_path, portable):
        cache = ResultCache(tmp_path)
        config = portable.config
        assert cache.get(config) is None
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        cache.put(config, portable)
        assert cache.stats.stores == 1
        assert cache.get(config) is not None
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert cache.stats.hit_rate == 0.5
        assert "1 hits / 1 misses" in cache.stats.summary()

    def test_contains_and_entry_count(self, tmp_path, portable):
        cache = ResultCache(tmp_path)
        assert portable.config not in cache
        assert cache.entry_count() == 0
        cache.put(portable.config, portable)
        assert portable.config in cache
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_a_miss_and_deleted(self, tmp_path, portable):
        cache = ResultCache(tmp_path)
        path = cache.put(portable.config, portable)
        path.write_bytes(b"not a pickle")
        assert cache.get(portable.config) is None
        assert not path.exists()
        assert cache.stats.misses == 1


class TestKeyInvalidation:
    def test_every_config_field_changes_the_key(self, tmp_path):
        """Mutating *any* field must address a different cache entry."""
        base = ExperimentConfig()
        cache = ResultCache(tmp_path)
        base_key = cache.key_for(base)
        # a distinct, still-valid replacement value per field
        replacements = {
            "name": "other",
            "topology": "line",
            "n_nodes": 7,
            "link_layer": "802154",
            "conn_interval": "[65:85]",
            "producer_interval_s": 2.5,
            "producer_jitter_s": 0.25,
            "payload_len": 64,
            "confirmable": True,
            "duration_s": 123.0,
            "warmup_s": 6.0,
            "drain_s": 4.0,
            "seed": 999,
            "scheduler_policy": "alternate",
            "drift_ppm_span": 5.0,
            "pktbuf_bytes": 8192,
            "base_ber": 1e-6,
            "sample_period_s": 20.0,
            "subordinate_latency": 1,
            "max_event_len_ms": 4.0,
            "drift_ppms": tuple(float(i) for i in range(15)),
            "abort_event_on_crc_error": False,
            "trace": True,
            "trace_layers": "ble,ip",
            "metrics": True,
            "spans": True,
            "geometry": "rgg",
            "radio_range_m": 30.0,
            "node_spacing_m": 10.0,
            "spatial_index": "allpairs",
            "max_children": 5,
            "churn": {"mean_up_s": 20.0},
            "mobility": {"step_s": 2.0},
            "mac_rotation": {"period_s": 30.0},
            "kernel": {"dispatch": "lookahead", "workers": 2},
        }
        # some replacements are only valid alongside another field change
        # (geometry gates on a dynamic topology; workload blocks gate on
        # dynamic, mobility additionally on a geometry); compare against a
        # base carrying the same companions so the tested field stays
        # isolated
        companions = {
            "geometry": {"topology": "dynamic"},
            "churn": {"topology": "dynamic"},
            "mobility": {"topology": "dynamic", "geometry": "rgg"},
            "mac_rotation": {"topology": "dynamic"},
        }
        fields = {f.name for f in dataclasses.fields(ExperimentConfig)}
        assert fields == set(replacements), (
            "new config fields must get a replacement value here so key "
            "coverage stays exhaustive"
        )
        for field_name, value in replacements.items():
            extra = companions.get(field_name, {})
            ref_key = (
                cache.key_for(dataclasses.replace(base, **extra))
                if extra
                else base_key
            )
            changed = dataclasses.replace(base, **{field_name: value}, **extra)
            assert cache.key_for(changed) != ref_key, (
                f"changing {field_name!r} must invalidate the cache key"
            )

    def test_version_tag_changes_the_key(self, tmp_path):
        config = ExperimentConfig()
        old = ResultCache(tmp_path, version=RESULT_CACHE_VERSION)
        new = ResultCache(tmp_path, version="result-v2")
        assert old.key_for(config) != new.key_for(config)

    def test_same_config_same_key_across_instances(self, tmp_path):
        a = ResultCache(tmp_path)
        b = ResultCache(tmp_path)
        assert a.key_for(ExperimentConfig(seed=5)) == b.key_for(
            ExperimentConfig(seed=5)
        )

    def test_key_shards_into_subdirectories(self, tmp_path, portable):
        cache = ResultCache(tmp_path)
        path = cache.put(portable.config, portable)
        key = cache.key_for(portable.config)
        assert path.parent.name == key[:2]
        assert path.name == f"{key}.pkl"
