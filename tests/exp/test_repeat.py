"""Tests for the repetition helper."""

import pytest

from repro.exp import ExperimentConfig
from repro.exp.repeat import run_repetitions


SHORT = dict(duration_s=15.0, warmup_s=4.0, drain_s=3.0, n_nodes=15)


def test_aggregates_across_reps():
    agg = run_repetitions(ExperimentConfig(name="rep", seed=3, **SHORT), n=3)
    assert agg.n == 3
    assert 0 <= agg.coap_pdr_min() <= agg.coap_pdr_mean() <= 1
    assert 0 < agg.link_pdr_mean() <= 1
    assert agg.rtt_percentile(0.5) > 0
    assert agg.total_connection_losses() >= 0


def test_reps_use_distinct_seeds():
    agg = run_repetitions(ExperimentConfig(name="rep", seed=3, **SHORT), n=2)
    a, b = agg.results
    assert a.config.seed != b.config.seed
    assert a.rtts_s() != b.rtts_s()


def test_reproducible():
    cfg = ExperimentConfig(name="rep", seed=4, **SHORT)
    x = run_repetitions(cfg, n=2)
    y = run_repetitions(cfg, n=2)
    assert [r.coap_sent() for r in x.results] == [r.coap_sent() for r in y.results]


def test_validation():
    with pytest.raises(ValueError):
        run_repetitions(ExperimentConfig(), n=0)
