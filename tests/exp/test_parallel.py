"""Tests for the parallel sharded experiment engine.

The key property: the engine is a pure speed/robustness layer.  Worker
count, cache state, and completion order must never change a single
metric, because every run is a deterministic function of its config.
"""

import json
import os

import pytest

from repro.exp import ExperimentConfig
from repro.exp.parallel import ParallelEngine, execute_portable, run_grid
from repro.exp.repeat import run_repetitions

SHORT = dict(duration_s=10.0, warmup_s=4.0, drain_s=3.0)


def _grid_configs():
    """2 configs x 2 seeds of small-but-real experiments."""
    return [
        ExperimentConfig(name=f"par-{spec}", conn_interval=spec, seed=seed, **SHORT)
        for spec in ("75", "[65:85]")
        for seed in (1, 2)
    ]


def _metrics_blob(results):
    """A byte-exact serialization of everything the benches aggregate."""
    return json.dumps(
        [
            {
                "sent": r.coap_sent(),
                "acked": r.coap_acked(),
                "rtts": r.rtts_s(),
                "ll_pdr": r.link_pdr_overall(),
                "losses": r.connection_losses(),
                "per_producer": r.coap_pdr_per_producer(),
                "currents": r.fleet_current_ua(),
            }
            for r in results
        ],
        sort_keys=True,
    )


# -- crash/failure injection (module-level: must survive pickling) ----------

def _raise_for_marked(config):
    if config.name.startswith("boom"):
        raise RuntimeError(f"injected failure for {config.name}")
    return execute_portable(config)


def _hard_exit_for_marked(config):
    if config.name.startswith("boom"):
        os._exit(17)  # simulates a segfaulting worker: no exception, no result
    return execute_portable(config)


class TestDeterminismUnderSharding:
    def test_serial_and_parallel_runs_are_byte_identical(self):
        configs = _grid_configs()
        serial, serial_stats = run_grid(configs, max_workers=1)
        parallel, parallel_stats = run_grid(configs, max_workers=4)
        assert all(o.ok for o in serial)
        assert all(o.ok for o in parallel)
        assert serial_stats.executed == parallel_stats.executed == len(configs)
        assert _metrics_blob([o.result for o in serial]) == _metrics_blob(
            [o.result for o in parallel]
        )

    def test_outcomes_keep_input_order(self):
        configs = _grid_configs()
        outcomes, _ = run_grid(configs, max_workers=4)
        assert [o.config.seed for o in outcomes] == [c.seed for c in configs]
        assert [o.config.name for o in outcomes] == [c.name for c in configs]


class TestCrashRobustness:
    def test_raising_worker_is_retried_then_reported(self):
        configs = [
            ExperimentConfig(name="ok-1", seed=1, **SHORT),
            ExperimentConfig(name="boom", seed=2, **SHORT),
            ExperimentConfig(name="ok-2", seed=3, **SHORT),
        ]
        engine = ParallelEngine(
            max_workers=2, max_attempts=2, run_fn=_raise_for_marked
        )
        outcomes = engine.run(configs)
        ok, boom, ok2 = outcomes
        assert ok.ok and ok2.ok
        assert not boom.ok
        assert boom.attempts == 2
        assert "injected failure" in boom.error
        assert engine.stats.retries == 1
        assert engine.stats.failures == 1

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="hard-crash injection needs fork",
    )
    def test_dying_worker_is_retried_then_reported(self):
        configs = [
            ExperimentConfig(name="boom", seed=1, **SHORT),
            ExperimentConfig(name="ok", seed=2, **SHORT),
        ]
        engine = ParallelEngine(
            max_workers=2, max_attempts=3, run_fn=_hard_exit_for_marked
        )
        outcomes = engine.run(configs)
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 3
        assert "exit code 17" in outcomes[0].error
        assert outcomes[1].ok

    def test_inline_path_retries_too(self):
        configs = [ExperimentConfig(name="boom", seed=1, **SHORT)]
        engine = ParallelEngine(
            max_workers=1, max_attempts=2, run_fn=_raise_for_marked
        )
        outcomes = engine.run(configs)
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert engine.stats.retries == 1


class TestCacheIntegration:
    def test_second_run_is_all_hits_with_identical_metrics(self, tmp_path):
        configs = _grid_configs()
        cold, cold_stats = run_grid(configs, max_workers=2, cache_dir=tmp_path)
        warm, warm_stats = run_grid(configs, max_workers=2, cache_dir=tmp_path)
        assert cold_stats.cache_hits == 0
        assert cold_stats.executed == len(configs)
        assert warm_stats.cache_hits == len(configs)
        assert warm_stats.executed == 0
        assert all(o.cached for o in warm)
        assert _metrics_blob([o.result for o in cold]) == _metrics_blob(
            [o.result for o in warm]
        )

    def test_cache_works_on_inline_path(self, tmp_path):
        configs = _grid_configs()[:1]
        run_grid(configs, max_workers=1, cache_dir=tmp_path)
        warm, stats = run_grid(configs, max_workers=1, cache_dir=tmp_path)
        assert warm[0].cached
        assert stats.cache_hits == 1


class TestTimeout:
    def test_overdue_worker_is_terminated_and_reported(self):
        import time as _time

        configs = [ExperimentConfig(name="boom-slow", seed=1, **SHORT)]
        engine = ParallelEngine(
            max_workers=2,
            max_attempts=1,
            timeout_s=0.5,
            run_fn=_sleep_forever,
        )
        started = _time.monotonic()
        outcomes = engine.run(configs)
        assert _time.monotonic() - started < 10  # did not hang
        assert not outcomes[0].ok
        assert "timed out" in outcomes[0].error


def _sleep_forever(config):
    import time

    time.sleep(60)


class TestProgressAndRepeat:
    def test_progress_callback_sees_lifecycle(self, tmp_path):
        events = []
        configs = _grid_configs()[:2]
        engine = ParallelEngine(
            max_workers=2, cache=tmp_path, progress=events.append
        )
        engine.run(configs)
        kinds = [e.kind for e in events]
        assert kinds.count("start") == 2
        assert kinds.count("done") == 2
        engine2 = ParallelEngine(
            max_workers=2, cache=tmp_path, progress=events.append
        )
        engine2.run(configs)
        assert [e.kind for e in events[len(kinds):]] == ["cache-hit", "cache-hit"]

    def test_run_repetitions_parallel_matches_serial(self, tmp_path):
        config = ExperimentConfig(name="rep", seed=3, **SHORT)
        serial = run_repetitions(config, n=3)
        parallel = run_repetitions(
            config, n=3, max_workers=4, cache_dir=tmp_path
        )
        assert [r.config.seed for r in serial.results] == [
            r.config.seed for r in parallel.results
        ]
        assert serial.coap_pdr_mean() == parallel.coap_pdr_mean()
        assert serial.link_pdr_mean() == parallel.link_pdr_mean()
        assert serial.total_connection_losses() == parallel.total_connection_losses()
        assert serial.rtt_percentile(0.5) == parallel.rtt_percentile(0.5)
