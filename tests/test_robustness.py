"""Cross-cutting robustness properties: no codec crashes on garbage.

Every parser in the stack sits behind a radio; whatever bytes arrive, the
node must either decode them or reject them with the parser's documented
error -- never die with an unrelated exception.  These fuzz tests feed
arbitrary byte strings into every decoder.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coap.message import CoapDecodeError, CoapMessage
from repro.gatt.att import parse_read_by_group_response
from repro.net.icmpv6 import Icmpv6Message
from repro.sixlowpan import iphc
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet, UdpDatagram

GARBAGE = st.binary(max_size=300)


@given(data=GARBAGE)
@settings(max_examples=300)
def test_iphc_decompress_never_crashes(data):
    try:
        packet = iphc.decompress(
            data,
            Ipv6Address.iid_from_node_id(1),
            Ipv6Address.iid_from_node_id(2),
        )
        assert isinstance(packet, Ipv6Packet)
    except ValueError:
        pass  # IphcError and address errors are the documented rejections


@given(data=GARBAGE)
@settings(max_examples=300)
def test_coap_decode_never_crashes(data):
    try:
        message = CoapMessage.decode(data)
        assert isinstance(message, CoapMessage)
    except CoapDecodeError:
        pass


@given(data=GARBAGE)
@settings(max_examples=200)
def test_ipv6_decode_never_crashes(data):
    try:
        Ipv6Packet.decode(data)
    except ValueError:
        pass


@given(data=GARBAGE)
@settings(max_examples=200)
def test_udp_decode_never_crashes(data):
    try:
        UdpDatagram.decode(data, verify=False)
    except ValueError:
        pass


@given(data=GARBAGE)
@settings(max_examples=200)
def test_icmpv6_decode_never_crashes(data):
    try:
        Icmpv6Message.decode(data, verify=False)
    except ValueError:
        pass


@given(data=GARBAGE)
@settings(max_examples=200)
def test_att_group_response_parse_never_crashes(data):
    result = parse_read_by_group_response(data)
    assert result is None or isinstance(result, list)


@given(data=GARBAGE)
@settings(max_examples=100, deadline=None)
def test_l2cap_rx_never_crashes(data):
    """Arbitrary LL payloads into a CoC end must be absorbed silently."""
    import sys, os

    sys.path.insert(0, os.path.join(os.path.dirname(__file__)))
    from ble.conftest import BlePlane
    from repro.ble.pdu import DataPdu, Llid
    from repro.l2cap import L2capCoc

    plane = BlePlane()
    conn = plane.connect(0, 1, anchor0=1_000_000)
    coc = L2capCoc(conn)
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    end = coc.end_of(plane.nodes[1])
    end._on_ll_rx(DataPdu(payload=data, llid=Llid.DATA_START))
    # any delivered SDU must have come from a well-formed K-frame
    for sdu in got:
        assert isinstance(sdu, bytes)


@given(data=GARBAGE)
@settings(max_examples=100, deadline=None)
def test_rpl_control_never_crashes(data):
    """Arbitrary RPL control bodies (DIO/DAO/DIS) must be absorbed."""
    from repro.net.icmpv6 import RPL_CONTROL
    from repro.rpl import RplInstance
    from repro.testbed.topology import BleNetwork

    net = BleNetwork(2, seed=1, ppms=[0.0, 0.0])
    rpl = RplInstance(net.nodes[0], is_root=False)
    rpl.start()
    for code in (0x00, 0x01, 0x02):
        rpl._on_rpl(
            Icmpv6Message(RPL_CONTROL, code, data), Ipv6Address.mesh_local(1)
        )
