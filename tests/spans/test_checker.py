"""Mutation tests for the span-tree conformance checker.

A checker that never fires is worse than no checker: each test builds a
conforming journey, applies one targeted mutation an instrumentation bug
would produce (a dropped span close, an overlapping retransmit phase),
and asserts the exact rule fires.  The conforming tree itself must pass
cleanly -- that is the baseline every mutation is measured against.
"""

from typing import List

from repro.spans.check import check_journey
from repro.spans.model import (
    Journey,
    Phase,
    TxEvent,
    compute_phases,
)

MS = 1_000_000  # ns


def build_journey() -> Journey:
    """A conforming two-hop journey: request over two links, delivered."""
    journey = Journey(0, "node2", "fd00::1", "ab12", 7, True, 0)
    attempt = journey.new_attempt(0)
    hop1 = attempt.new_hop("node2", "node1", "request", 0)
    hop1.txs.append(TxEvent(1 * MS, 2 * MS, 27, False, False, 0, 75 * MS))
    hop1.close(2 * MS, "ok")
    hop2 = attempt.new_hop("node1", "node0", "request", 2 * MS)
    hop2.txs.append(
        TxEvent(3 * MS, 4 * MS, 27, False, False, 2 * MS, 75 * MS)
    )
    hop2.close(4 * MS, "ok")
    attempt.close(4 * MS, "ok")
    journey.close(4 * MS, "ok")
    return journey


def rules(journey) -> List[str]:
    return [v.rule for v in check_journey(journey)]


class TestConformingTree:
    def test_passes_cleanly(self):
        assert check_journey(build_journey()) == []

    def test_multi_attempt_overlap_is_legal(self):
        # CoAP retransmits on a wall timer; the first attempt's fragments
        # may still be in flight: sibling attempts only need containment.
        journey = build_journey()
        second = journey.new_attempt(1 * MS)
        hop = second.new_hop("node2", "node1", "request", 1 * MS)
        hop.close(3 * MS, "abandoned")
        second.close(3 * MS, "abandoned")
        assert check_journey(journey) == []


class TestDroppedSpanClose:
    """An instrumentation seam that loses a close event must be caught."""

    def test_unclosed_journey(self):
        journey = build_journey()
        journey.end_ns = None
        assert rules(journey) == ["journey-open"]

    def test_unclosed_attempt(self):
        journey = build_journey()
        journey.attempts[0].end_ns = None
        assert "attempt-open" in rules(journey)

    def test_unclosed_hop(self):
        journey = build_journey()
        journey.attempts[0].hops[1].end_ns = None
        assert "hop-open" in rules(journey)


class TestOverlappingPhases:
    def test_overlapping_retransmit_phase_fires_phase_tiling(self):
        # the mutation: a retx_wait phase whose begin precedes the previous
        # air phase's end -- exactly what a double-counted retransmission
        # cycle would emit if phases were built from raw timestamps
        # instead of the running boundary.
        journey = build_journey()
        hop = journey.attempts[0].hops[0]
        air = hop.phases[-2]
        overlap = Phase("retx_wait", air.end_ns - MS // 2, hop.end_ns)
        hop.phases = list(hop.phases[:-1]) + [overlap]
        violations = check_journey(journey)
        assert [v.rule for v in violations] == ["phase-tiling"]
        assert "overlaps" in violations[0].message

    def test_gap_between_phases_fires_phase_tiling(self):
        journey = build_journey()
        hop = journey.attempts[0].hops[0]
        tail = hop.phases[-1]
        hop.phases = list(hop.phases[:-1]) + [
            Phase(tail.name, tail.begin_ns + MS // 4, tail.end_ns)
        ]
        violations = check_journey(journey)
        assert [v.rule for v in violations] == ["phase-tiling"]
        assert "gap" in violations[0].message

    def test_phases_stopping_short_of_hop_end_fires(self):
        journey = build_journey()
        hop = journey.attempts[0].hops[0]
        hop.phases = hop.phases[:-1]  # drop the tail phase
        assert "phase-tiling" in rules(journey)

    def test_empty_phase_fires(self):
        journey = build_journey()
        hop = journey.attempts[0].hops[0]
        first = hop.phases[0]
        hop.phases = [Phase(first.name, first.begin_ns, first.begin_ns)] + \
            list(hop.phases)
        assert "phase-tiling" in rules(journey)

    def test_unphased_nonempty_hop_fires(self):
        journey = build_journey()
        journey.attempts[0].hops[0].phases = []
        assert "phase-tiling" in rules(journey)


class TestHopChain:
    def test_gap_between_hops_fires_hop_tiling(self):
        journey = build_journey()
        hop2 = journey.attempts[0].hops[1]
        hop2.begin_ns += MS  # no longer starts where hop1 delivered
        hop2.phases = compute_phases(
            hop2.begin_ns, hop2.end_ns, hop2.txs, ok=True
        )
        assert "hop-tiling" in rules(journey)

    def test_delivered_attempt_must_reach_its_end(self):
        journey = build_journey()
        attempt = journey.attempts[0]
        attempt.end_ns = 5 * MS  # claims delivery later than the last hop
        journey.end_ns = 5 * MS
        assert "attempt-tail" in rules(journey)


class TestNegativeAndEscapingSpans:
    def test_negative_attempt_fires(self):
        journey = build_journey()
        journey.attempts[0].end_ns = -1
        found = rules(journey)
        assert "negative-span" in found

    def test_attempt_escaping_journey_fires_containment(self):
        journey = build_journey()
        journey.attempts[0].end_ns = 9 * MS  # journey closed at 4ms
        assert "containment" in rules(journey)

    def test_first_attempt_must_anchor_at_journey_begin(self):
        journey = build_journey()
        journey.attempts[0].begin_ns = 1 * MS
        assert "attempt-anchor" in rules(journey)

    def test_journey_must_end_with_its_last_attempt(self):
        journey = build_journey()
        journey.end_ns = 9 * MS
        found = rules(journey)
        assert "journey-tail" in found
