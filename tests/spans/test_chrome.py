"""The Chrome-trace (Perfetto) export of a journeys payload.

Perfetto accepts the JSON object form of the Trace Event Format: a
``traceEvents`` array of ``X``/``M`` events with microsecond ``ts``/
``dur``.  These tests pin the structural contract on the committed golden
payload, so the export stays loadable without a browser in the loop.
"""

import json
from pathlib import Path

import pytest

from repro.spans.chrome import chrome_trace_document, dumps_chrome_trace

GOLDEN = Path(__file__).parent / "golden" / "journeys_line3.json"


@pytest.fixture(scope="module")
def payload() -> dict:
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def doc(payload) -> dict:
    return chrome_trace_document(payload)


class TestChromeTraceExport:
    def test_dumps_is_valid_json(self, payload):
        parsed = json.loads(dumps_chrome_trace(payload))
        assert isinstance(parsed["traceEvents"], list)

    def test_document_shape(self, doc):
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"], "no events exported"
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)

    def test_duration_events_are_nonnegative_microseconds(self, doc):
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs
        for event in xs:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["name"]

    def test_every_journey_becomes_a_process(self, payload, doc):
        meta_pids = {
            e["pid"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert len(meta_pids) == len(payload["journeys"])

    def test_phase_events_nest_inside_their_hop(self, doc):
        # Trace Event nesting contract: a contained X event must begin at
        # or after its container and end at or before it on the same tid.
        by_tid = {}
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                key = (event["pid"], event["tid"])
                by_tid.setdefault(key, []).append(event)
        saw_nesting = False
        for events in by_tid.values():
            events.sort(key=lambda e: (e["ts"], -e["dur"]))
            for outer, inner in zip(events, events[1:]):
                if inner["ts"] >= outer["ts"] and (
                    inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
                ):
                    saw_nesting = True
        assert saw_nesting, "no phase nested inside a hop slice"
