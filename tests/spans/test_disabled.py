"""Spans must be free when off and invisible when on.

Two halves of the observability contract:

* **Invisible when on** -- span collection draws no randomness, schedules
  no timers, and changes no wire bytes, so enabling it must leave the
  committed golden *trace* of the 3-hop line byte-identical.  (The
  spans-off direction is covered by ``tests/trace/test_golden.py``
  itself, which runs the same scenario without spans on every CI pass.)
* **Free when off** -- the disabled path is a single predicate per seam
  (``SPANS.enabled``), cheap enough to sit in the BLE exchange loop; the
  wall-clock A/B gate for the full <2% bar lives in the CI ``journeys``
  job (``python -m repro journeys --ab-check``).
"""

from pathlib import Path

from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_experiment
from repro.obs.wallclock import perf_counter
from repro.spans.hub import SPANS
from repro.trace.sinks import records_to_jsonl

TRACE_GOLDEN = (
    Path(__file__).resolve().parents[1] / "trace" / "golden" / "trace_3hop.jsonl"
)

#: tests/trace/test_golden.py's pinned 3-hop scenario, plus spans.
THREE_HOP_WITH_SPANS = ExperimentConfig(
    name="golden-3hop",
    topology="line",
    n_nodes=4,
    duration_s=2.0,
    warmup_s=1.0,
    drain_s=0.5,
    producer_interval_s=0.5,
    seed=11,
    drift_ppms=(0.0, 1.5, -2.0, 0.5),
    trace=True,
    trace_layers="sixlo,ip,coap",
    spans=True,
)


class TestSpansDoNotPerturbTheRun:
    def test_golden_trace_byte_identical_with_spans_on(self):
        result = run_experiment(THREE_HOP_WITH_SPANS)
        assert result.spans is not None
        assert result.spans["summary"]["journeys"] > 0
        document = records_to_jsonl(result.trace_records)
        assert document == TRACE_GOLDEN.read_text(), (
            "enabling spans changed the golden trace: span hooks must not "
            "draw randomness, schedule timers, or alter wire behaviour"
        )

    def test_spans_off_run_carries_no_payload(self):
        config = ExperimentConfig(
            name="no-spans",
            topology="line",
            n_nodes=2,
            duration_s=2.0,
            warmup_s=1.0,
            drain_s=0.5,
            producer_interval_s=0.5,
            seed=7,
        )
        result = run_experiment(config)
        assert result.spans is None
        assert not SPANS.enabled


class TestDisabledGuardIsCheap:
    def test_disabled_guard_is_cheap(self):
        # mirrors tests/trace/test_tracer.py: 200k guarded no-ops must be
        # far under any per-run noise floor.  The guard is attribute
        # access plus a branch -- the same shape the hot seams use.
        assert not SPANS.enabled
        hub = SPANS
        start = perf_counter()
        for _ in range(200_000):
            if hub.enabled:  # pragma: no cover - never taken
                hub.drop("never")
        elapsed = perf_counter() - start
        assert elapsed < 0.5, f"disabled guard took {elapsed:.3f}s"
