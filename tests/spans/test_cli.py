"""End-to-end ``python -m repro journeys``: artifacts on disk, exit codes."""

import json

import pytest

from repro.exp.cli import main
from repro.exp.journeyscmd import (
    _count_guard_reads,
    ab_config,
    example_config,
    run_ab_check,
    run_journeys,
)
from repro.spans.hub import SPANS, SpanHub

#: Short run so the suite stays fast; journeys still complete end to end.
FAST = [
    "--set", "duration_s=4.0",
    "--set", "warmup_s=1.5",
    "--set", "drain_s=1.0",
]


@pytest.fixture(autouse=True)
def _clean_singleton():
    SPANS.reset()
    yield
    SPANS.reset()


def test_journeys_subcommand_writes_artifacts_and_exits_zero(tmp_path, capsys):
    out = tmp_path / "journeys-out"
    rc = main(["journeys", "-o", str(out)] + FAST)
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "phases tile exactly" in stdout
    assert "latency attribution" in stdout
    payload = json.loads((out / "journeys.json").read_text())
    assert payload["summary"]["journeys"] > 0
    assert payload["violations"] == []
    trace = json.loads((out / "journeys_trace.json").read_text())
    assert trace["traceEvents"]
    assert "legend" in (out / "waterfall.txt").read_text()


def test_exit_code_keys_off_violations(tmp_path):
    import dataclasses

    config = dataclasses.replace(
        example_config("probe"), duration_s=4.0, warmup_s=1.5, drain_s=1.0
    )
    report = run_journeys(config, str(tmp_path / "out"))
    assert report.ok
    report.violations.append({"time_ns": 0, "journey_id": 0,
                              "rule": "fake", "message": "injected"})
    assert not report.ok


def test_run_journeys_requires_spans_enabled(tmp_path):
    import dataclasses

    config = dataclasses.replace(example_config(), spans=False)
    with pytest.raises(ValueError):
        run_journeys(config, str(tmp_path / "out"))


def test_journeys_subcommand_leaves_the_global_hub_disarmed(tmp_path):
    main(["journeys", "-o", str(tmp_path / "o")] + FAST)
    assert not SPANS.enabled


class TestAbCheck:
    def test_guard_count_is_positive_and_class_restored(self):
        import dataclasses

        cfg = dataclasses.replace(
            ab_config(), duration_s=3.0, warmup_s=1.0, drain_s=0.5
        )
        reads = _count_guard_reads(cfg)
        assert reads > 0, "no seam evaluated SPANS.enabled"
        assert type(SPANS) is SpanHub  # the shim must never leak
        assert not SPANS.enabled

    def test_counting_shim_restored_even_on_error(self, monkeypatch):
        import repro.exp.journeyscmd as mod

        def boom(cfg):
            raise RuntimeError("injected")

        monkeypatch.setattr(mod, "run_experiment", boom)
        with pytest.raises(RuntimeError):
            _count_guard_reads(ab_config())
        assert type(SPANS) is SpanHub

    def test_run_ab_check_shape_and_determinism_of_fields(self):
        check = run_ab_check(repeats=1)
        assert check["repeats"] == 1
        assert check["guard_reads"] > 0
        assert check["median_wall_s"] > 0
        assert 0.0 <= check["overhead"]
        assert check["bar"] == 0.02
        assert isinstance(check["ok"], bool)
