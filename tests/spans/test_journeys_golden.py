"""Golden journey tree and cross-configuration byte-identity.

The span payload of the pinned 3-hop line scenario is committed under
``tests/spans/golden/``; any byte of difference means either the
simulator's observable timing changed or the span instrumentation drifted
-- both must be deliberate (regenerate with ``REPRO_REGEN_GOLDEN=1
pytest tests/spans/test_journeys_golden.py``).

The same payload doubles as the determinism proof the issue demands:
byte-identical whether the run happened inline (``max_workers=1``) or in
spawned workers (``max_workers=4``), and -- on the spatial tier --
whether delivery was gated by the grid index or the all-pairs reference.
"""

import json
import os
from pathlib import Path

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.journeyscmd import dumps_payload, example_config
from repro.exp.parallel import ParallelEngine
from repro.exp.runner import run_experiment
from repro.obs.export import build_metrics_document, dumps_metrics_document

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FILE = "journeys_line3.json"


def _payload_via_engine(workers: int) -> str:
    outcomes = ParallelEngine(max_workers=workers).run([example_config()])
    assert outcomes[0].ok, outcomes[0].error
    result = outcomes[0].result
    assert result.spans is not None
    return dumps_payload(result.spans)


@pytest.fixture(scope="module")
def inline_payload() -> str:
    return _payload_via_engine(1)


class TestGoldenJourneyTree:
    def test_matches_golden(self, inline_payload):
        path = GOLDEN_DIR / GOLDEN_FILE
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(inline_payload)
            pytest.skip(f"regenerated {path}")
        assert path.exists(), (
            f"golden journeys {path} missing; regenerate with "
            f"REPRO_REGEN_GOLDEN=1"
        )
        assert inline_payload == path.read_text(), (
            "journey tree of the 3-hop line diverged from the golden; "
            "if deliberate, regenerate with REPRO_REGEN_GOLDEN=1"
        )

    def test_worker_count_does_not_change_a_byte(self, inline_payload):
        assert _payload_via_engine(4) == inline_payload

    def test_payload_is_conformant(self, inline_payload):
        payload = json.loads(inline_payload)
        assert payload["violations"] == []
        assert payload["summary"]["journeys"] > 0
        # every journey closed with an outcome, every hop tiled by phases
        for journey in payload["journeys"]:
            assert journey["end_ns"] is not None
            assert journey["outcome"] is not None
            for attempt in journey["attempts"]:
                for hop in attempt["hops"]:
                    assert hop["phases"], "hop with no phase tiling"

    def test_multi_hop_phases_dominated_by_anchor_wait(self, inline_payload):
        # the paper's Fig. 8 narrative: on a multi-hop line at the default
        # interval, per-hop anchor wait is where the latency goes.
        payload = json.loads(inline_payload)
        totals = {}
        for journey in payload["journeys"]:
            for attempt in journey["attempts"]:
                for hop in attempt["hops"]:
                    for phase in hop["phases"]:
                        dur = phase["end_ns"] - phase["begin_ns"]
                        totals[phase["name"]] = totals.get(phase["name"], 0) + dur
        assert totals["anchor_wait"] == max(totals.values())


#: The spatial determinism cell: a small self-forming mesh on a seeded
#: random-geometric layout.  The differential suite proves grid and
#: all-pairs delivery decisions are byte-identical; spans ride on those
#: decisions, so the journey trees must match byte for byte too.
def _spatial_config(spatial_index: str) -> ExperimentConfig:
    return ExperimentConfig(
        name="journeys-spatial",
        topology="dynamic",
        geometry="rgg",
        spatial_index=spatial_index,
        n_nodes=12,
        duration_s=6.0,
        warmup_s=20.0,
        drain_s=2.0,
        seed=5,
        spans=True,
    )


class TestSpatialIndexByteIdentity:
    def test_grid_and_allpairs_produce_identical_journeys(self):
        grid = run_experiment(_spatial_config("grid"))
        allpairs = run_experiment(_spatial_config("allpairs"))
        assert grid.spans is not None and allpairs.spans is not None
        assert dumps_payload(grid.spans) == dumps_payload(allpairs.spans)


#: Attribution histograms (the ``spans.*`` instruments) must merge into
#: the same document whatever worker count produced the per-run payloads.
def _metrics_config(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        name="journeys-metrics",
        topology="line",
        n_nodes=4,
        duration_s=6.0,
        warmup_s=2.0,
        drain_s=1.0,
        producer_interval_s=1.0,
        seed=seed,
        metrics=True,
        spans=True,
    )


class TestAttributionMergeStability:
    def test_merged_document_identical_across_worker_counts(self):
        configs = [_metrics_config(seed) for seed in (3, 5, 7)]
        docs = {}
        for workers in (1, 4):
            outcomes = ParallelEngine(max_workers=workers).run(configs)
            payloads = []
            for outcome in outcomes:
                assert outcome.ok, outcome.error
                assert outcome.result.metrics is not None
                payloads.append(outcome.result.metrics)
            docs[workers] = dumps_metrics_document(
                build_metrics_document("journeys-metrics", payloads,
                                       seeds=(3, 5, 7))
            )
        assert docs[1] == docs[4]
        merged = json.loads(docs[1])
        phase_instruments = [
            name
            for scope in merged["scopes"].values()
            for name in scope["histograms"]
            if name.startswith("spans.phase_")
        ]
        assert phase_instruments, "no spans.* attribution histograms emitted"
