"""The span model's phase derivation (:func:`repro.spans.model.compute_phases`).

The tiling invariant is enforced *by construction*: phases are cut from a
single running boundary, clamped into ``[begin, end]``.  These tests pin
the construction on hand-built transmission lists, including adversarial
shapes (out-of-order hints, zero-length cuts) that must clamp rather than
produce gaps or overlaps.
"""

import pytest

from repro.spans.model import (
    PHASE_AIR,
    PHASE_ANCHOR_WAIT,
    PHASE_EVENT_WAIT,
    PHASE_LINK,
    PHASE_QUEUE,
    PHASE_REASSEMBLY,
    PHASE_RETX_WAIT,
    PHASE_STALLED,
    PHASE_TURNAROUND,
    HopSpan,
    TxEvent,
    compute_phases,
)

MS = 1_000_000  # ns


def tx(begin, end, *, lost=False, retx=False, anchor=0, interval=75 * MS):
    return TxEvent(begin, end, 27, lost, retx, anchor, interval)


def assert_tiles(phases, begin, end):
    """The load-bearing property: monotone, gap-free, overlap-free."""
    assert phases, f"no phases over [{begin}, {end}]"
    assert phases[0].begin_ns == begin
    cursor = begin
    for phase in phases:
        assert phase.begin_ns == cursor, f"gap/overlap at {phase.name}"
        assert phase.end_ns > phase.begin_ns, f"empty phase {phase.name}"
        cursor = phase.end_ns
    assert cursor == end


class TestComputePhases:
    def test_empty_interval_yields_no_phases(self):
        assert compute_phases(5, 5, [], ok=True) == []
        assert compute_phases(5, 3, [], ok=True) == []

    def test_no_transmissions_is_one_stalled_phase(self):
        phases = compute_phases(0, 10 * MS, [], ok=False)
        assert [p.name for p in phases] == [PHASE_STALLED]
        assert_tiles(phases, 0, 10 * MS)

    def test_coarse_hop_is_one_link_phase(self):
        phases = compute_phases(0, 10 * MS, [], ok=True, coarse=True)
        assert [p.name for p in phases] == [PHASE_LINK]
        assert_tiles(phases, 0, 10 * MS)

    def test_single_tx_splits_anchor_wait_queue_air(self):
        # submitted at 0, carrying event anchored at 60ms (interval 75ms):
        # the nearest anchor at/after submission is 60ms, so [0, 60) is
        # anchor wait, air starts at 61ms leaving 1ms of queueing.
        phases = compute_phases(
            0, 62 * MS,
            [tx(61 * MS, 62 * MS, anchor=60 * MS)],
            ok=True,
        )
        assert [p.name for p in phases] == [
            PHASE_ANCHOR_WAIT, PHASE_QUEUE, PHASE_AIR,
        ]
        assert_tiles(phases, 0, 62 * MS)
        assert phases[0].end_ns == 60 * MS

    def test_multiple_skipped_anchors_count_as_anchor_wait_once(self):
        # anchor at 160ms with a 75ms interval: anchors at 10ms and 85ms
        # passed without carrying the SDU -- the first reachable anchor
        # (10ms) bounds the anchor wait, the rest is queueing.
        phases = compute_phases(
            0, 161 * MS,
            [tx(160 * MS, 161 * MS, anchor=160 * MS)],
            ok=True,
        )
        assert [p.name for p in phases] == [
            PHASE_ANCHOR_WAIT, PHASE_QUEUE, PHASE_AIR,
        ]
        assert phases[0].end_ns == 10 * MS
        assert_tiles(phases, 0, 161 * MS)

    def test_same_event_fragments_are_turnaround(self):
        phases = compute_phases(
            0, 4 * MS,
            [tx(0, 1 * MS, anchor=0), tx(2 * MS, 3 * MS, anchor=0)],
            ok=True,
        )
        assert [p.name for p in phases] == [
            PHASE_AIR, PHASE_TURNAROUND, PHASE_AIR, PHASE_REASSEMBLY,
        ]
        assert_tiles(phases, 0, 4 * MS)

    def test_cross_event_fragments_are_event_wait(self):
        phases = compute_phases(
            0, 76 * MS,
            [tx(0, 1 * MS, anchor=0), tx(75 * MS, 76 * MS, anchor=75 * MS)],
            ok=True,
        )
        assert PHASE_EVENT_WAIT in [p.name for p in phases]
        assert_tiles(phases, 0, 76 * MS)

    def test_lost_pdu_makes_the_wait_retx(self):
        phases = compute_phases(
            0, 76 * MS,
            [
                tx(0, 1 * MS, lost=True, anchor=0),
                tx(75 * MS, 76 * MS, retx=True, anchor=75 * MS),
            ],
            ok=True,
        )
        names = [p.name for p in phases]
        assert PHASE_RETX_WAIT in names
        assert PHASE_EVENT_WAIT not in names
        assert_tiles(phases, 0, 76 * MS)

    def test_delivered_tail_is_reassembly(self):
        phases = compute_phases(
            0, 5 * MS, [tx(0, 1 * MS, anchor=0)], ok=True,
        )
        assert phases[-1].name == PHASE_REASSEMBLY
        assert_tiles(phases, 0, 5 * MS)

    def test_lost_tail_is_stalled(self):
        phases = compute_phases(
            0, 5 * MS, [tx(0, 1 * MS, lost=True, anchor=0)], ok=False,
        )
        assert phases[-1].name == PHASE_STALLED
        assert_tiles(phases, 0, 5 * MS)

    def test_out_of_order_hint_clamps_instead_of_overlapping(self):
        # a forwarded SDU can carry an in-event begin hint that precedes
        # the running boundary; the cut clamps, never overlaps.
        phases = compute_phases(
            0, 10 * MS,
            [tx(5 * MS, 6 * MS, anchor=4 * MS),
             tx(2 * MS, 7 * MS, anchor=4 * MS)],  # begins before prev end
            ok=True,
        )
        assert_tiles(phases, 0, 10 * MS)

    def test_tx_past_hop_end_clamps_to_the_end(self):
        phases = compute_phases(
            0, 3 * MS, [tx(1 * MS, 9 * MS, anchor=0)], ok=True,
        )
        assert_tiles(phases, 0, 3 * MS)

    @pytest.mark.parametrize("seedlike", range(6))
    def test_adversarial_shapes_always_tile(self, seedlike):
        # deterministic pseudo-random tx lists; whatever the shape, the
        # result must tile (this is the property the checker re-verifies).
        txs = []
        t = (seedlike * 7) % 5
        for i in range(1 + seedlike):
            begin = t + ((i * 13 + seedlike) % 9)
            end = begin + 1 + ((i * 5) % 4)
            txs.append(tx(begin * MS, end * MS,
                          lost=(i % 3 == 0), retx=(i % 2 == 1),
                          anchor=(begin - begin % 3) * MS, interval=3 * MS))
            t = end
        phases = compute_phases(0, (t + 2) * MS, txs, ok=seedlike % 2 == 0)
        assert_tiles(phases, 0, (t + 2) * MS)


class TestHopSpan:
    def test_close_derives_the_tiling(self):
        hop = HopSpan("node2", "node1", "request", 0)
        hop.txs.append(tx(1 * MS, 2 * MS, anchor=0))
        hop.close(2 * MS, "ok")
        assert hop.closed
        assert_tiles(hop.phases, 0, 2 * MS)

    def test_close_clamps_negative_interval(self):
        hop = HopSpan("node2", "node1", "request", 10 * MS)
        hop.close(5 * MS, "lost")
        assert hop.end_ns == 10 * MS  # clamped, never negative

    def test_retx_and_frames_counters(self):
        hop = HopSpan("node2", "node1", "request", 0)
        hop.txs.append(tx(0, 1 * MS, lost=True, anchor=0))
        hop.txs.append(tx(2 * MS, 3 * MS, retx=True, anchor=0))
        hop.close(3 * MS, "ok")
        assert hop.frames == 2
        assert hop.retx == 1

    def test_reassembly_hold_measures_first_delivered_fragment(self):
        hop = HopSpan("node2", "node1", "request", 0)
        hop.txs.append(tx(0, 1 * MS, anchor=0))
        hop.txs.append(tx(2 * MS, 3 * MS, anchor=0))
        hop.close(5 * MS, "ok")
        assert hop.reassembly_hold_ns == 4 * MS
