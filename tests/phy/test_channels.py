"""Tests for the BLE / 802.15.4 channel plans."""

import pytest

from repro.phy import BLE_ADV_CHANNELS, BLE_DATA_CHANNELS, IEEE802154_CHANNELS
from repro.phy.channels import (
    ble_index_to_rf,
    ble_rf_to_frequency_mhz,
    ieee802154_frequency_mhz,
)


def test_ble_has_37_data_and_3_adv_channels():
    assert len(BLE_DATA_CHANNELS) == 37
    assert BLE_ADV_CHANNELS == (37, 38, 39)


def test_index_to_rf_is_a_permutation():
    rfs = [ble_index_to_rf(i) for i in range(40)]
    assert sorted(rfs) == list(range(40))


def test_adv_channels_sit_at_band_edges_and_centre():
    # RF 0 = 2402 MHz, RF 12 = 2426 MHz, RF 39 = 2480 MHz
    assert ble_index_to_rf(37) == 0
    assert ble_index_to_rf(38) == 12
    assert ble_index_to_rf(39) == 39


def test_rf_frequencies():
    assert ble_rf_to_frequency_mhz(0) == 2402
    assert ble_rf_to_frequency_mhz(39) == 2480


def test_data_channel_0_is_rf_1():
    assert ble_index_to_rf(0) == 1


def test_out_of_range_raises():
    with pytest.raises(ValueError):
        ble_index_to_rf(40)
    with pytest.raises(ValueError):
        ble_rf_to_frequency_mhz(-1)


def test_802154_channel_plan():
    assert IEEE802154_CHANNELS == tuple(range(11, 27))
    assert ieee802154_frequency_mhz(11) == 2405
    assert ieee802154_frequency_mhz(26) == 2480
    with pytest.raises(ValueError):
        ieee802154_frequency_mhz(27)
