"""Differential proof: the spatial medium == the all-pairs reference.

The tentpole's correctness backbone.  Every case builds the *same* seeded
scenario twice -- once with the uniform-grid neighbor index, once with the
O(N)-per-transmission all-pairs arm -- and runs both to completion with
full cross-layer tracing.  The two arms must produce **byte-identical**
traces: same delivery decisions, same loss draws, same connection events,
same IP forwarding, in the same order at the same times.  A grid index
that ever dropped, invented, or reordered a single neighbor would corrupt
the shared RNG alignment within a few events and diverge loudly.

Covered dimensions (the ISSUE's floor is 3 topologies x 5 seeds):

* self-forming dynconn meshes over ``grid``/``rgg``/``corridor`` layouts,
  5 seeds each, with interference (jammed channel + BER floor) active;
* statically-routed statconn fleets over the BFS tree of the radio graph;
* mid-run mobility: seeded ``Geometry.move`` events on both arms;
* ``@pytest.mark.scale``: the same proof at 500 and 1000 nodes (excluded
  from tier-1; CI runs them in a separate non-blocking step).

The no-mobility cases double as the integration half of the invalidation
suite: after formation traffic, the grid geometry must have rebuilt its
index exactly once -- plain packet traffic never invalidates.
"""

import random

import pytest

from repro.phy.medium import InterferenceModel
from repro.sim.units import SEC
from repro.testbed.dynamic import DynamicBleNetwork
from repro.testbed.topology import BleNetwork
from repro.topo import make_topology
from repro.trace.sinks import RingBufferSink, record_to_jsonl_line
from repro.trace.tracer import TRACE
from tests.support.lockstep import assert_logs_identical

#: Layers captured for the byte-comparison.  All of them: equivalence is
#: claimed for the whole observable behaviour, not just the phy layer.
ALL_LAYERS = None
#: The scale runs bound memory by tracing only the decision-relevant
#: layers (every delivery decision and loss draw lands in phy/ble).
SCALE_LAYERS = ("phy", "ble")


def _run_dynconn(kind, n, seed, index, run_s, moves=(), layers=ALL_LAYERS):
    """One dynconn arm: self-formation over ``kind``; returns the trace."""
    topology = make_topology(kind, n, seed=seed)
    geometry = topology.geometry(index=index)
    interference = InterferenceModel(base_ber=2.2e-5, jammed_channels=(22,))
    ring = RingBufferSink()
    TRACE.configure(sinks=[ring], layers=layers)
    try:
        net = DynamicBleNetwork(
            n, seed=seed, interference=interference, geometry=geometry
        )
        TRACE.attach_sim(net.sim)
        net.start()
        for when_ns, addr, x, y in moves:
            net.sim.at(when_ns, geometry.move, addr, x, y)
        net.run(run_s * SEC)
        lines = [record_to_jsonl_line(r) for r in ring.records()]
    finally:
        TRACE.reset()
    return lines, net, geometry


def _run_statconn(kind, n, seed, index, run_s):
    """One statconn arm: static links over the layout's BFS tree."""
    topology = make_topology(kind, n, seed=seed)
    geometry = topology.geometry(index=index)
    ring = RingBufferSink()
    TRACE.configure(sinks=[ring], layers=ALL_LAYERS)
    try:
        net = BleNetwork(n, seed=seed, geometry=geometry)
        TRACE.attach_sim(net.sim)
        net.apply_edges(topology.tree_edges())
        net.run(run_s * SEC)
        lines = [record_to_jsonl_line(r) for r in ring.records()]
    finally:
        TRACE.reset()
    return lines, net, geometry


def _assert_equivalent(grid_run, allpairs_run, min_records=500):
    """The differential contract between a grid arm and an allpairs arm."""
    grid_lines, grid_net, grid_geo = grid_run
    ap_lines, ap_net, ap_geo = allpairs_run
    assert len(grid_lines) > min_records, "scenario produced too little traffic"
    assert_logs_identical(grid_lines, ap_lines, "grid", "allpairs")
    assert grid_net.medium.packets_sampled == ap_net.medium.packets_sampled
    assert grid_net.medium.packets_lost == ap_net.medium.packets_lost
    assert grid_geo.index == "grid" and ap_geo.index == "allpairs"


DYNCONN_KINDS = ("grid", "rgg", "corridor")


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("kind", DYNCONN_KINDS)
def test_dynconn_formation_is_byte_identical(kind, seed):
    """3 topologies x 5 seeds: self-formation, interference active."""
    grid_run = _run_dynconn(kind, 30, seed, "grid", run_s=25)
    ap_run = _run_dynconn(kind, 30, seed, "allpairs", run_s=25)
    _assert_equivalent(grid_run, ap_run)
    # identical formation outcome, not just identical traces
    assert (
        grid_run[1].formation_depths() == ap_run[1].formation_depths()
    )
    # integration half of the invalidation suite: 25 s of packet traffic,
    # exactly one index build, zero traffic-triggered rebuilds
    assert grid_run[2].rebuilds == 1


@pytest.mark.parametrize("seed", (1, 2))
@pytest.mark.parametrize("kind", ("grid", "rgg", "building"))
def test_statconn_tree_is_byte_identical(kind, seed):
    """Statically-routed statconn over the radio graph's BFS tree."""
    grid_run = _run_statconn(kind, 25, seed, "grid", run_s=10)
    ap_run = _run_statconn(kind, 25, seed, "allpairs", run_s=10)
    _assert_equivalent(grid_run, ap_run)
    assert grid_run[1].all_links_up() == ap_run[1].all_links_up()


def _mobility_plan(topology, seed, run_s, events=8, jitter_m=4.0):
    """Seeded mid-run moves: small position jitters on random nodes.

    Small enough that the mesh usually survives, large enough to cross
    grid-cell boundaries and change neighbor sets.
    """
    rng = random.Random(seed ^ 0x5EED)
    plan = []
    for i in range(events):
        when_ns = (run_s * SEC * (i + 1)) // (events + 1)
        addr = rng.randrange(1, topology.n)  # never move the root
        x, y = topology.positions[addr]
        plan.append((
            when_ns,
            addr,
            x + rng.uniform(-jitter_m, jitter_m),
            y + rng.uniform(-jitter_m, jitter_m),
        ))
    return plan


@pytest.mark.parametrize("seed", range(3))
def test_mobility_events_stay_byte_identical(seed):
    """Mid-run Geometry.move events, applied identically to both arms."""
    topology = make_topology("rgg", 30, seed=seed)
    moves = _mobility_plan(topology, seed, run_s=25)
    grid_run = _run_dynconn("rgg", 30, seed, "grid", run_s=25, moves=moves)
    ap_run = _run_dynconn("rgg", 30, seed, "allpairs", run_s=25, moves=moves)
    _assert_equivalent(grid_run, ap_run)
    # every mobility event invalidates; lazy rebuilds stay bounded by them
    grid_geo = grid_run[2]
    assert grid_geo.moves == len(moves)
    assert 2 <= grid_geo.rebuilds <= 1 + len(moves)


@pytest.mark.scale
@pytest.mark.parametrize("n_nodes", (500, 1000))
def test_scale_fleet_is_byte_identical(n_nodes):
    """The same proof at scale-tier fleet sizes (non-blocking CI step)."""
    grid_run = _run_dynconn(
        "rgg", n_nodes, 7, "grid", run_s=12, layers=SCALE_LAYERS
    )
    ap_run = _run_dynconn(
        "rgg", n_nodes, 7, "allpairs", run_s=12, layers=SCALE_LAYERS
    )
    _assert_equivalent(grid_run, ap_run, min_records=5_000)
    assert grid_run[2].rebuilds == 1
