"""Tests for on-air duration arithmetic."""

import pytest

from repro.phy import BlePhyMode, ble_air_time_ns, ieee802154_air_time_ns
from repro.phy.frames import (
    BLE_MAX_DATA_PAYLOAD,
    T_IFS_NS,
    ble_adv_air_time_ns,
)
from repro.sim.units import USEC


def test_ifs_is_exactly_150us():
    """§2.2: IFS is exactly 150 us for the 1 Mbps PHY mode."""
    assert T_IFS_NS == 150 * USEC


def test_empty_data_pdu_is_80us_at_1m():
    """preamble 1 + AA 4 + header 2 + CRC 3 = 10 bytes = 80 us at 1 Mbit/s."""
    assert ble_air_time_ns(0) == 80 * USEC


def test_full_dle_pdu_is_2120us_at_1m():
    assert ble_air_time_ns(BLE_MAX_DATA_PAYLOAD) == (10 + 251) * 8 * USEC


def test_2m_phy_is_faster():
    assert ble_air_time_ns(100, BlePhyMode.LE_2M) < ble_air_time_ns(100)


def test_air_time_monotone_in_length():
    times = [ble_air_time_ns(n) for n in range(0, 252, 10)]
    assert times == sorted(times)
    assert len(set(times)) == len(times)


def test_adv_pdu_includes_adva():
    # empty AdvData still carries the 6-byte advertiser address
    assert ble_adv_air_time_ns(0) == (10 + 6) * 8 * USEC
    assert ble_adv_air_time_ns(31) == (10 + 6 + 31) * 8 * USEC


def test_payload_range_checks():
    with pytest.raises(ValueError):
        ble_air_time_ns(-1)
    with pytest.raises(ValueError):
        ble_air_time_ns(252)
    with pytest.raises(ValueError):
        ble_adv_air_time_ns(32)


def test_802154_air_time():
    # 127-byte max PSDU + 6 bytes SHR/PHR at 32 us/byte = 4256 us
    assert ieee802154_air_time_ns(127) == (127 + 6) * 32 * USEC
    with pytest.raises(ValueError):
        ieee802154_air_time_ns(128)


def test_ble_vs_802154_rate_ratio():
    """BLE's 1 Mbit/s is 4x faster per byte than 802.15.4's 250 kbit/s."""
    assert ieee802154_air_time_ns(100) / ble_air_time_ns(100) == pytest.approx(
        (100 + 6) * 32 / ((100 + 10) * 8)
    )


class TestMaxPayloadFor:
    def test_inverse_of_air_time(self):
        from repro.phy.frames import ble_max_payload_for

        for budget_us in (79, 80, 81, 500, 1000, 2088, 2120, 5000):
            payload = ble_max_payload_for(budget_us * USEC)
            if payload >= 0:
                assert ble_air_time_ns(payload) <= budget_us * USEC
                if payload < 251:
                    assert ble_air_time_ns(payload + 1) > budget_us * USEC

    def test_tiny_budget_returns_minus_one(self):
        from repro.phy.frames import ble_max_payload_for

        assert ble_max_payload_for(79 * USEC) == -1
        assert ble_max_payload_for(0) == -1

    def test_caps_at_dle_maximum(self):
        from repro.phy.frames import ble_max_payload_for

        assert ble_max_payload_for(10_000_000) == 251

    def test_2m_phy_fits_more(self):
        from repro.phy.frames import BlePhyMode, ble_max_payload_for

        budget = 1000 * USEC
        assert ble_max_payload_for(
            budget, BlePhyMode.LE_2M
        ) > ble_max_payload_for(budget)
