"""Tests for the statistical BLE medium."""

import random

import pytest

from repro.phy import BleMedium, InterferenceModel, MediumRegistrationError
from repro.phy.medium import InterferenceBurst
from repro.sim import Simulator, SEC


def make_medium(**kwargs):
    sim = Simulator()
    return sim, BleMedium(sim, random.Random(1), InterferenceModel(**kwargs))


def test_zero_ber_never_loses():
    _, medium = make_medium(base_ber=0.0)
    assert not any(medium.packet_lost(5, 115) for _ in range(1000))


def test_jammed_channel_always_loses():
    _, medium = make_medium(base_ber=0.0, jammed_channels=(22,))
    assert all(medium.packet_lost(22, 115) for _ in range(100))
    assert not medium.packet_lost(21, 115)


def test_per_increases_with_packet_length():
    model = InterferenceModel(base_ber=1e-4)
    short = model.packet_error_rate(0, 10, 0)
    long = model.packet_error_rate(0, 250, 0)
    assert long > short > 0


def test_channel_per_is_additive():
    model = InterferenceModel(base_ber=0.0, channel_per={7: 0.25})
    assert model.packet_error_rate(7, 100, 0) == 0.25
    assert model.packet_error_rate(8, 100, 0) == 0.0


def test_per_capped_at_one():
    model = InterferenceModel(base_ber=0.0, channel_per={7: 2.0})
    assert model.packet_error_rate(7, 100, 0) == 1.0


def test_burst_only_active_in_window_and_channels():
    burst = InterferenceBurst(start_ns=SEC, end_ns=2 * SEC, channels=(3,), per=1.0)
    model = InterferenceModel(base_ber=0.0, bursts=[burst])
    assert model.packet_error_rate(3, 100, 0) == 0.0
    assert model.packet_error_rate(3, 100, SEC) == 1.0
    assert model.packet_error_rate(4, 100, SEC) == 0.0
    assert model.packet_error_rate(3, 100, 2 * SEC) == 0.0


def test_loss_rate_roughly_matches_per():
    _, medium = make_medium(base_ber=0.0, channel_per={0: 0.3})
    n = 20_000
    losses = sum(medium.packet_lost(0, 100) for _ in range(n))
    assert abs(losses / n - 0.3) < 0.02
    assert medium.packets_sampled == n
    assert medium.packets_lost == losses


def test_usable_channels_excludes_jammed():
    _, medium = make_medium(jammed_channels=(22,))
    usable = medium.usable_channels(range(37))
    assert 22 not in usable
    assert len(usable) == 36


# -- registration discipline (the reconnection double-delivery hazard) -------


class _StubController:
    def __init__(self, addr):
        self.addr = addr


class _StubScanner:
    def __init__(self, addr, target_addr=None):
        self.controller = _StubController(addr)
        self.target_addr = target_addr


def test_register_node_rejects_duplicate_address():
    _, medium = make_medium()
    medium.register_node(3, owner="first")
    with pytest.raises(MediumRegistrationError, match="already registered"):
        medium.register_node(3, owner="second")
    # the original registration is untouched
    assert medium.nodes[3] == "first"


def test_unregister_node_is_idempotent_and_frees_the_address():
    _, medium = make_medium()
    medium.register_node(3)
    medium.unregister_node(3)
    medium.unregister_node(3)  # no-op, no error
    medium.register_node(3)  # address is claimable again


def test_register_scanner_rejects_same_object_twice():
    _, medium = make_medium()
    scanner = _StubScanner(1, target_addr=0)
    medium.register_scanner(scanner)
    with pytest.raises(MediumRegistrationError, match="already registered"):
        medium.register_scanner(scanner)
    assert medium.scanners.count(scanner) == 1  # no silent double entry


def test_register_scanner_rejects_stale_predecessor_for_same_target():
    """The reconnection footgun: a new scanner for the same (node, target)
    while the old one is still registered must be a hard error."""
    _, medium = make_medium()
    medium.register_scanner(_StubScanner(1, target_addr=0))
    with pytest.raises(MediumRegistrationError, match="double-deliver"):
        medium.register_scanner(_StubScanner(1, target_addr=0))


def test_register_scanner_allows_distinct_targets_per_node():
    """statconn keys scanners by peer: one node may scan for several
    targets concurrently (including one wildcard)."""
    _, medium = make_medium()
    medium.register_scanner(_StubScanner(1, target_addr=0))
    medium.register_scanner(_StubScanner(1, target_addr=2))
    medium.register_scanner(_StubScanner(1, target_addr=None))
    assert len(medium.scanners) == 3


def test_unregister_scanner_allows_reconnection_attempt():
    _, medium = make_medium()
    old = _StubScanner(1, target_addr=0)
    medium.register_scanner(old)
    medium.unregister_scanner(old)
    medium.unregister_scanner(old)  # idempotent
    new = _StubScanner(1, target_addr=0)
    medium.register_scanner(new)  # the clean reconnection path
    assert medium.scanners == [new]
    assert medium.scanners_hearing(0) == [new]
