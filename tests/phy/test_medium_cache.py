"""Dirty-flag caches of the interference model and medium.

The per-channel loss addend and ``usable_channels`` results are memoized
against a change stamp; these tests pin the invalidation contract: tuple
replacement and dict growth are caught automatically, in-place value
overwrites need an explicit :meth:`InterferenceModel.invalidate`.
"""

import random

from repro.phy.medium import BleMedium, InterferenceBurst, InterferenceModel
from repro.sim.kernel import Simulator


def _model(**kwargs) -> InterferenceModel:
    return InterferenceModel(base_ber=0.0, **kwargs)


def test_jammed_tuple_replacement_invalidates_addend():
    model = _model(jammed_channels=(22,))
    assert model.packet_error_rate(22, 50, 0) == 1.0
    assert model.packet_error_rate(5, 50, 0) == 0.0
    model.jammed_channels = (5,)  # wholesale replacement, the repo idiom
    assert model.packet_error_rate(22, 50, 0) == 0.0
    assert model.packet_error_rate(5, 50, 0) == 1.0


def test_channel_per_key_addition_invalidates_addend():
    model = _model(channel_per={3: 0.25})
    assert model.packet_error_rate(3, 50, 0) == 0.25
    assert model.packet_error_rate(9, 50, 0) == 0.0
    model.channel_per[9] = 0.5  # new key changes the dict length stamp
    assert model.packet_error_rate(9, 50, 0) == 0.5


def test_in_place_value_overwrite_needs_explicit_invalidate():
    model = _model(channel_per={3: 0.25})
    assert model.packet_error_rate(3, 50, 0) == 0.25
    model.channel_per[3] = 0.75  # same key: invisible to the stamp
    assert model.packet_error_rate(3, 50, 0) == 0.25  # stale by contract
    model.invalidate()
    assert model.packet_error_rate(3, 50, 0) == 0.75


def test_bursts_stay_time_dependent_despite_cache():
    burst = InterferenceBurst(start_ns=100, end_ns=200, channels=(7,), per=0.5)
    model = _model(bursts=[burst])
    assert model.packet_error_rate(7, 50, 50) == 0.0
    assert model.packet_error_rate(7, 50, 150) == 0.5
    assert model.packet_error_rate(7, 50, 250) == 0.0


def test_usable_channels_memo_tracks_jammed_set():
    medium = BleMedium(Simulator(), random.Random(1), _model(jammed_channels=(22,)))
    channels = list(range(37))
    first = medium.usable_channels(channels)
    assert 22 not in first
    assert medium.usable_channels(channels) == first
    medium.interference.jammed_channels = (0, 1)
    second = medium.usable_channels(channels)
    assert 22 in second and 0 not in second and 1 not in second


def test_usable_channels_returns_fresh_lists():
    medium = BleMedium(Simulator(), random.Random(1), _model())
    a = medium.usable_channels(range(5))
    a.append(99)  # caller mutation must not poison the memo
    assert medium.usable_channels(range(5)) == [0, 1, 2, 3, 4]
