"""Unit tests for the spatial neighbor index (:mod:`repro.phy.spatial`).

Two pillars:

* **grid == allpairs** -- the uniform-grid builder must produce exactly
  the brute-force neighbor sets, including on the degenerate layouts
  (cell-boundary positions, negative coordinates, coincident nodes).
* **Invalidation discipline** -- the index rebuilds exactly when a
  placement changes (mobility/topology events) and *never* on plain
  queries or packet traffic; the ``rebuilds`` counter pins both sides.
"""

import random

import pytest

from repro.phy.spatial import (
    Geometry,
    GeometryError,
    allpairs_neighbor_sets,
    grid_neighbor_sets,
    make_geometry,
)


def random_positions(n, seed, side=200.0):
    rng = random.Random(seed)
    return {i: (rng.uniform(-side, side), rng.uniform(-side, side)) for i in range(n)}


class TestNeighborSetEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_grid_matches_allpairs_on_random_layouts(self, seed):
        positions = random_positions(60, seed)
        assert grid_neighbor_sets(positions, 45.0) == allpairs_neighbor_sets(
            positions, 45.0
        )

    def test_cell_boundary_positions(self):
        # nodes exactly on cell edges and exactly at range distance: the
        # disc predicate is <=, so range-distance pairs ARE neighbors
        positions = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (20.0, 0.0), 3: (10.0, 10.0)}
        grid = grid_neighbor_sets(positions, 10.0)
        assert grid == allpairs_neighbor_sets(positions, 10.0)
        assert grid[0] == (1,)
        assert grid[1] == (0, 2, 3)

    def test_negative_coordinates(self):
        positions = {0: (-35.0, -35.0), 1: (-30.0, -30.0), 2: (5.0, 5.0)}
        assert grid_neighbor_sets(positions, 12.0) == allpairs_neighbor_sets(
            positions, 12.0
        )

    def test_coincident_nodes_are_mutual_neighbors(self):
        positions = {0: (1.0, 1.0), 1: (1.0, 1.0), 2: (100.0, 100.0)}
        grid = grid_neighbor_sets(positions, 5.0)
        assert grid[0] == (1,) and grid[1] == (0,) and grid[2] == ()

    def test_neighbor_tuples_are_sorted_by_address(self):
        positions = random_positions(40, seed=3)
        for addr, neighbors in grid_neighbor_sets(positions, 80.0).items():
            assert list(neighbors) == sorted(neighbors)
            assert addr not in neighbors

    def test_nonpositive_range_rejected(self):
        with pytest.raises(GeometryError):
            grid_neighbor_sets({0: (0.0, 0.0)}, 0.0)
        with pytest.raises(GeometryError):
            allpairs_neighbor_sets({0: (0.0, 0.0)}, -1.0)
        with pytest.raises(GeometryError):
            Geometry(0.0)


class TestGeometryQueries:
    def test_in_range_is_symmetric_and_exact(self):
        geo = Geometry(10.0)
        geo.place(0, 0.0, 0.0)
        geo.place(1, 10.0, 0.0)  # exactly at range
        geo.place(2, 10.000001, 0.0)
        assert geo.in_range(0, 1) and geo.in_range(1, 0)
        assert not geo.in_range(0, 2)

    def test_unplaced_node_is_an_error(self):
        geo = Geometry(10.0)
        geo.place(0, 0.0, 0.0)
        with pytest.raises(GeometryError, match="no position"):
            geo.position_of(7)
        with pytest.raises(GeometryError, match="no position"):
            geo.neighbors_of(7)
        with pytest.raises(GeometryError, match="no position"):
            geo.iter_in_range(0, [7])
        with pytest.raises(GeometryError, match="unplaced"):
            geo.move(7, 1.0, 1.0)

    def test_iter_in_range_matches_neighbor_cache(self):
        positions = random_positions(50, seed=5)
        geo = make_geometry(positions, 60.0, index="allpairs")
        addrs = sorted(positions)
        for addr in addrs:
            assert geo.iter_in_range(addr, addrs) == list(geo.neighbors_of(addr))

    def test_make_geometry_empty_positions_is_none(self):
        assert make_geometry({}, 10.0) is None

    def test_unknown_index_rejected(self):
        with pytest.raises(GeometryError, match="unknown neighbor index"):
            Geometry(10.0, index="octree")


class TestIndexInvalidation:
    """The tentpole's cache contract: recompute on topology/mobility
    change, never on plain traffic (queries)."""

    def make_placed(self, n=20, index="grid"):
        geo = make_geometry(random_positions(n, seed=11), 50.0, index=index)
        geo.neighbors_of(0)  # force the initial build
        return geo

    def test_initial_build_happens_once(self):
        geo = self.make_placed()
        assert geo.rebuilds == 1

    def test_queries_never_rebuild(self):
        geo = self.make_placed()
        for _ in range(100):
            geo.neighbors_of(3)
            geo.adjacency()
            geo.in_range(0, 1)
            geo.iter_in_range(0, list(range(20)))
        assert geo.rebuilds == 1

    def test_move_invalidates_once_per_rebuild(self):
        geo = self.make_placed()
        geo.move(4, 0.0, 0.0)
        assert geo.moves == 1
        assert geo.rebuilds == 1  # lazy: no rebuild until the next query
        geo.neighbors_of(4)
        assert geo.rebuilds == 2
        geo.neighbors_of(4)
        assert geo.rebuilds == 2  # clean again

    def test_batched_moves_cost_one_rebuild(self):
        geo = self.make_placed()
        for addr in range(5):
            geo.move(addr, float(addr), float(addr))
        geo.adjacency()
        assert geo.rebuilds == 2

    def test_place_new_node_invalidates(self):
        geo = self.make_placed()
        geo.place(99, 1.0, 1.0)
        geo.neighbors_of(99)
        assert geo.rebuilds == 2
        assert geo.moves == 0  # a fresh placement is not a mobility event

    def test_remove_invalidates(self):
        geo = self.make_placed()
        geo.remove(7)
        assert 7 not in geo
        geo.adjacency()
        assert geo.rebuilds == 2
        geo.remove(7)  # idempotent, no further invalidation
        geo.adjacency()
        assert geo.rebuilds == 2

    def test_mobility_updates_neighbor_sets(self):
        geo = Geometry(10.0)
        geo.place(0, 0.0, 0.0)
        geo.place(1, 100.0, 0.0)
        assert geo.neighbors_of(0) == ()
        geo.move(1, 5.0, 0.0)
        assert geo.neighbors_of(0) == (1,)
        assert geo.neighbors_of(1) == (0,)

    def test_allpairs_index_obeys_the_same_discipline(self):
        geo = self.make_placed(index="allpairs")
        for _ in range(50):
            geo.neighbors_of(1)
        assert geo.rebuilds == 1
        geo.move(1, 0.0, 0.0)
        geo.neighbors_of(1)
        assert geo.rebuilds == 2
