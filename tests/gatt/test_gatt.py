"""Tests for ATT/GATT and the IPSS capability check."""

import pytest

from repro.gatt import GattClient, GattServer, IPSS_UUID, add_ipss, check_ip_support
from repro.gatt.att import (
    ATT_CID,
    AttClient,
    AttServer,
    DEFAULT_ATT_MTU,
    OP_ERROR,
    OP_MTU_REQ,
    OP_MTU_RSP,
    OP_READ_RSP,
    parse_read_by_group_response,
)
from repro.l2cap import L2capCoc
from repro.sim.units import MSEC, SEC

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from ble.conftest import BlePlane  # noqa: E402


def att_pair(services=((IPSS_UUID, []),)):
    """A connection with a GATT server on node 1 and a client on node 0."""
    plane = BlePlane()
    conn = plane.connect(0, 1, anchor0=MSEC)
    coc = L2capCoc(conn)
    database = GattServer()
    for uuid, values in services:
        database.add_service(uuid, list(values))
    AttServer(coc, plane.nodes[1], database)
    return plane, coc, database


class TestDatabase:
    def test_handles_allocated_sequentially(self):
        db = GattServer()
        a = db.add_service(0x1820)
        b = db.add_service(0x180F, [b"\x64"])
        assert a.start == 1 and a.end == 1
        assert b.start == 2 and b.end == 3
        assert db.read(b.end) == b"\x64"

    def test_service_declaration_reads_uuid(self):
        db = GattServer()
        service = db.add_service(0x1820)
        assert db.read(service.start) == (0x1820).to_bytes(2, "little")

    def test_missing_handle_reads_none(self):
        assert GattServer().read(42) is None

    def test_range_query(self):
        db = GattServer()
        db.add_service(0x1800)
        db.add_service(0x1820)
        assert len(db.services_in_range(1, 0xFFFF)) == 2
        assert len(db.services_in_range(2, 0xFFFF)) == 1

    def test_add_ipss_idempotent(self):
        db = GattServer()
        add_ipss(db)
        add_ipss(db)
        assert sum(1 for s in db.services if s.uuid == IPSS_UUID) == 1


class TestAtt:
    def test_mtu_exchange(self):
        plane, coc, _ = att_pair()
        client = AttClient(coc, plane.nodes[0])
        responses = []
        client.request(bytes([OP_MTU_REQ, 0x40, 0x00]), responses.append)
        plane.sim.run(until=500 * MSEC)
        assert responses and responses[0][0] == OP_MTU_RSP
        assert int.from_bytes(responses[0][1:3], "little") == DEFAULT_ATT_MTU

    def test_read_by_group_lists_services(self):
        plane, coc, _ = att_pair(services=((0x1800, []), (IPSS_UUID, [])))
        client = AttClient(coc, plane.nodes[0])
        responses = []
        client.read_by_group_type(1, 0xFFFF, responses.append)
        plane.sim.run(until=500 * MSEC)
        groups = parse_read_by_group_response(responses[0])
        assert [u for _, _, u in groups] == [0x1800, IPSS_UUID]

    def test_read_attribute_value(self):
        plane, coc, db = att_pair(services=((0x180F, [b"\x55"]),))
        client = AttClient(coc, plane.nodes[0])
        responses = []
        client.read(2, responses.append)
        plane.sim.run(until=500 * MSEC)
        assert responses[0] == bytes([OP_READ_RSP]) + b"\x55"

    def test_error_response_for_bad_handle(self):
        plane, coc, _ = att_pair()
        client = AttClient(coc, plane.nodes[0])
        responses = []
        client.read(0x99, responses.append)
        plane.sim.run(until=500 * MSEC)
        assert responses[0][0] == OP_ERROR

    def test_single_outstanding_request_enforced(self):
        plane, coc, _ = att_pair()
        client = AttClient(coc, plane.nodes[0])
        client.read(1, lambda body: None)
        with pytest.raises(RuntimeError):
            client.read(2, lambda body: None)


class TestDiscovery:
    def test_discover_all_services(self):
        plane, coc, _ = att_pair(
            services=((0x1800, []), (0x180F, [b"\x64"]), (IPSS_UUID, []))
        )
        client = GattClient(coc, plane.nodes[0])
        done = []
        client.discover_primary_services(done.append)
        plane.sim.run(until=2 * SEC)
        assert len(done) == 1
        assert [u for _, _, u in done[0]] == [0x1800, 0x180F, IPSS_UUID]

    def test_check_ip_support_positive(self):
        plane, coc, _ = att_pair()
        verdicts = []
        check_ip_support(coc, plane.nodes[0], verdicts.append)
        plane.sim.run(until=2 * SEC)
        assert verdicts == [True]

    def test_check_ip_support_negative(self):
        plane, coc, _ = att_pair(services=((0x1800, []),))
        verdicts = []
        check_ip_support(coc, plane.nodes[0], verdicts.append)
        plane.sim.run(until=2 * SEC)
        assert verdicts == [False]

    def test_empty_database_reports_no_support(self):
        plane, coc, _ = att_pair(services=())
        verdicts = []
        check_ip_support(coc, plane.nodes[0], verdicts.append)
        plane.sim.run(until=2 * SEC)
        assert verdicts == [False]


class TestFullStackIntegration:
    def test_every_node_serves_ipss(self):
        """Node composition registers IPSS; peers can verify it live."""
        from repro.testbed.topology import BleNetwork

        net = BleNetwork(2, seed=81, ppms=[0.0, 0.0])
        net.apply_edges([(0, 1)])
        net.run(2 * SEC)
        conn = net.nodes[1].controller.connection_to(0)
        verdicts = []
        check_ip_support(conn._ipsp_coc, net.nodes[1].controller, verdicts.append)
        net.run(5 * SEC)
        assert verdicts == [True]

    def test_dynconn_rejects_non_ip_peer(self):
        """A peer without IPSS is disconnected and never re-adopted."""
        from repro.testbed.dynamic import DynamicBleNetwork
        from repro.core.dynconn import DynconnConfig

        net = DynamicBleNetwork(3, seed=82)
        for dynconn in net.dynconns:
            dynconn.config.verify_ipss = True
        # strip node 2's IP support
        net.nodes[2].gatt.services.clear()
        net.start()
        net.run(60 * SEC)
        assert net.rpls[1].joined
        assert not net.rpls[2].joined  # rejected, stays orphan
        rejections = sum(d.ipss_rejections for d in net.dynconns)
        assert rejections >= 1
        adopters = [d for d in net.dynconns if 2 in d.non_ip_peers]
        assert adopters, "the rejecting adopter must remember the peer"
