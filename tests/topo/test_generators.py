"""Tests for the parametric topology generators (:mod:`repro.topo`).

The generator contract (seeded determinism, connectivity, canonical
addressing) is what the scale tier's reproducibility rests on: a config's
``(topology, n_nodes, seed)`` triple must pin the exact radio graph, byte
for byte, across processes and platforms.
"""

import pytest

from repro.phy.spatial import allpairs_neighbor_sets
from repro.topo import (
    TOPOLOGY_GENERATORS,
    DisconnectedTopologyError,
    Topology,
    building_topology,
    corridor_topology,
    grid_topology,
    line_topology,
    make_topology,
    random_geometric_topology,
)

ALL_KINDS = sorted(TOPOLOGY_GENERATORS)


class TestSeededDeterminism:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_same_parameters_same_layout(self, kind):
        a = make_topology(kind, 50, seed=9)
        b = make_topology(kind, 50, seed=9)
        assert a.positions == b.positions  # byte-identical floats
        assert a.adjacency() == b.adjacency()
        assert a.tree_edges() == b.tree_edges()

    def test_rgg_seed_changes_layout(self):
        a = random_geometric_topology(40, seed=1)
        b = random_geometric_topology(40, seed=2)
        assert a.positions != b.positions

    def test_deterministic_kinds_ignore_the_seed(self):
        for kind in ("line", "grid", "building", "corridor"):
            assert (
                make_topology(kind, 30, seed=1).positions
                == make_topology(kind, 30, seed=999).positions
            )

    def test_rgg_is_stable_across_processes(self):
        """The sub-seed derivation is sha256-based, not hash()-based: the
        first node's position is a pinned constant."""
        topo = random_geometric_topology(10, seed=1)
        x, y = topo.positions[0]
        assert (x, y) == (39.36030070005407, 14.86077281823839)


class TestConnectivity:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("n", (1, 2, 10, 100))
    def test_generated_layouts_are_connected(self, kind, n):
        topo = make_topology(kind, n, seed=4)
        assert topo.connected
        edges = topo.tree_edges()
        assert len(edges) == n - 1
        # every non-root node appears exactly once as a child
        children = [child for _parent, child in edges]
        assert sorted(children) == list(range(1, n))

    def test_impossible_rgg_raises_after_deterministic_retries(self):
        with pytest.raises(DisconnectedTopologyError, match="disconnected"):
            random_geometric_topology(
                30, seed=1, radio_range_m=1.0, side_m=1000.0, max_attempts=3
            )

    def test_require_connected_false_returns_flagged_layout(self):
        topo = random_geometric_topology(
            30, seed=1, radio_range_m=1.0, side_m=1000.0, require_connected=False
        )
        assert not topo.connected
        with pytest.raises(DisconnectedTopologyError):
            topo.tree_edges()

    def test_addresses_must_be_dense_from_zero(self):
        with pytest.raises(ValueError, match="0..n-1"):
            Topology("line", {1: (0.0, 0.0), 2: (1.0, 0.0)}, 5.0)


class TestDegreeDistributions:
    """Sanity bounds per kind: the layouts must have the *structure* their
    names promise, not just connectivity."""

    def test_line_degrees(self):
        degrees = line_topology(20).degrees()
        assert degrees[0] == degrees[-1] == 1
        assert all(d == 2 for d in degrees[1:-1])

    def test_grid_interior_degree_is_eight(self):
        topo = grid_topology(25)  # 5x5 with diagonals in range
        degrees = topo.degrees()
        assert degrees[12] == 8  # center
        assert degrees[0] == 3  # corner
        assert max(degrees) == 8

    def test_corridor_is_thin(self):
        degrees = corridor_topology(60).degrees()
        # a corridor is nearly a path: low degree everywhere, plus the odd
        # corner-hugging pair
        assert max(degrees) <= 4
        assert sum(degrees) / len(degrees) < 3.0

    def test_building_couples_adjacent_floors_only(self):
        topo = building_topology(30, rooms_per_floor=10)
        adj = topo.adjacency()
        # room 15 sits on floor 1: neighbors on floors 0..2 only
        assert all(abs(peer // 10 - 1) <= 1 for peer in adj[15])
        # the room directly above (25) and below (5) are in range
        assert 5 in adj[15] and 25 in adj[15]

    def test_rgg_hits_the_target_degree_regime(self):
        topo = random_geometric_topology(200, seed=2, target_degree=8.0)
        degrees = topo.degrees()
        mean = sum(degrees) / len(degrees)
        # boundary effects pull the mean below the interior expectation;
        # the point is the regime (supercritical), not the exact value
        assert 4.0 < mean < 14.0

    def test_bfs_tree_depth_is_bounded_by_graph_structure(self):
        # 100-node grid: BFS tree depth ~ lattice radius, far below n
        topo = grid_topology(100)
        edges = dict((child, parent) for parent, child in topo.tree_edges())

        def depth(node):
            d = 0
            while node != 0:
                node = edges[node]
                d += 1
            return d

        assert max(depth(n) for n in range(1, 100)) <= 10


class TestFactory:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            make_topology("torus", 10)

    def test_range_and_spacing_overrides(self):
        wide = make_topology("line", 10, radio_range_m=60.0)
        assert wide.radio_range_m == 60.0
        sparse = make_topology("line", 10, spacing_m=50.0)
        assert sparse.positions[1] == (50.0, 0.0)

    def test_adjacency_matches_reference_builder(self):
        for kind in ALL_KINDS:
            topo = make_topology(kind, 40, seed=6)
            assert topo.adjacency() == allpairs_neighbor_sets(
                topo.positions, topo.radio_range_m
            )
