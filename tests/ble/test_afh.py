"""Tests for adaptive frequency hopping."""

import pytest

from repro.ble.afh import AfhConfig, AfhManager
from repro.ble.config import ConnParams
from repro.sim.units import MSEC, SEC

from .conftest import BlePlane


def jammed_plane(channels=(22,), **kwargs):
    plane = BlePlane(**kwargs)
    plane.medium.interference.jammed_channels = tuple(channels)
    return plane


def busy_conn(plane, interval_ms=30):
    """A connection with continuous light traffic (so events carry data)."""
    conn = plane.connect(
        0, 1, params=ConnParams(interval_ns=interval_ms * MSEC), anchor0=MSEC
    )

    def chatter():
        conn.send(plane.nodes[0], b"x" * 30)
        plane.sim.after(100 * MSEC, chatter)

    plane.sim.after(10 * MSEC, chatter)
    return conn


def test_blacklists_jammed_channel():
    plane = jammed_plane()
    conn = busy_conn(plane)
    afh = AfhManager(conn, AfhConfig(eval_interval_ns=5 * SEC, min_samples=3))
    afh.start()
    plane.sim.run(until=60 * SEC)
    assert 22 in afh.blacklist
    assert afh.map_updates >= 1
    assert not conn.chan_map.is_used(22)


def test_abort_rate_drops_after_adaptation():
    plane = jammed_plane(channels=(5, 22, 30))
    conn = busy_conn(plane)
    afh = AfhManager(conn, AfhConfig(eval_interval_ns=5 * SEC, min_samples=3,
                                     probation_evals=1000))
    afh.start()
    plane.sim.run(until=60 * SEC)
    aborts_mid = conn.coord.stats.events_crc_abort
    events_mid = conn.coord.stats.events_active
    plane.sim.run(until=120 * SEC)
    d_aborts = conn.coord.stats.events_crc_abort - aborts_mid
    d_events = conn.coord.stats.events_active - events_mid
    assert {5, 22, 30} <= afh.blacklist
    assert d_aborts / max(d_events, 1) < 0.02, "post-adaptation aborts persist"


def test_min_channels_floor_respected():
    plane = jammed_plane(channels=tuple(range(32)))  # almost everything dead
    conn = busy_conn(plane)
    afh = AfhManager(
        conn,
        AfhConfig(eval_interval_ns=5 * SEC, min_samples=2, min_channels=10,
                  probation_evals=1000),
    )
    afh.start()
    plane.sim.run(until=240 * SEC)
    assert len(afh.blacklist) <= 37 - 10
    assert conn.chan_map.num_used >= 10


def test_probation_re_admits_channels():
    plane = jammed_plane()
    conn = busy_conn(plane)
    afh = AfhManager(
        conn,
        AfhConfig(eval_interval_ns=2 * SEC, min_samples=3, probation_evals=2),
    )
    afh.start()
    plane.sim.run(until=30 * SEC)
    assert afh.paroles >= 1


def test_clean_medium_never_blacklists():
    plane = BlePlane(base_ber=0.0)
    conn = busy_conn(plane)
    afh = AfhManager(conn, AfhConfig(eval_interval_ns=5 * SEC, min_samples=3))
    afh.start()
    plane.sim.run(until=60 * SEC)
    assert afh.blacklist == set()
    assert afh.map_updates == 0


def test_stop_halts_adaptation():
    plane = jammed_plane()
    conn = busy_conn(plane)
    afh = AfhManager(conn, AfhConfig(eval_interval_ns=5 * SEC, min_samples=3))
    afh.start()
    afh.stop()
    plane.sim.run(until=30 * SEC)
    assert afh.map_updates == 0
