"""Tests for the BLE connection state machine.

These exercise the behaviours the paper's analysis rests on: interval-paced
connection events, SN/NESN acknowledgement with automatic retransmission,
CRC-triggered event aborts, window widening, supervision timeouts, and --
most importantly -- connection shading between co-located connections.
"""

import pytest

from repro.ble.config import BleConfig, ConnParams, SchedulerPolicy
from repro.ble.conn import DisconnectReason
from repro.phy.medium import InterferenceBurst
from repro.sim.units import MSEC, SEC, USEC


class Hog:
    """A fake activity that claims a radio forever."""

    consec_skips = 0

    def next_radio_time(self, after_ns):
        return None


PARAMS_75MS = ConnParams(interval_ns=75 * MSEC)


def test_idle_connection_paces_events_at_interval(plane):
    conn = plane.connect(0, 1, params=PARAMS_75MS, anchor0=MSEC)
    plane.sim.run(until=1 * SEC)
    # anchor at 1 ms, then every 75 ms: events at 1, 76, 151, ... <= 1000 ms
    expected = 1 + (1000 - 1) // 75
    assert conn.coord.stats.events_active == expected
    assert conn.sub.stats.events_active == expected
    assert conn.open


def test_data_delivery_coordinator_to_subordinate(plane):
    conn = plane.connect(0, 1, anchor0=MSEC)
    received = []
    conn.sub.on_rx_pdu = lambda pdu: received.append(pdu.payload)
    assert conn.send(plane.nodes[0], b"hello-ble")
    plane.sim.run(until=200 * MSEC)
    assert received == [b"hello-ble"]
    assert conn.coord.stats.tx_data_acked == 1


def test_data_delivery_subordinate_to_coordinator(plane):
    conn = plane.connect(0, 1, anchor0=MSEC)
    received = []
    conn.coord.on_rx_pdu = lambda pdu: received.append(pdu.payload)
    assert conn.send(plane.nodes[1], b"uplink")
    plane.sim.run(until=200 * MSEC)
    assert received == [b"uplink"]


def test_bidirectional_exchange_in_one_event(plane):
    conn = plane.connect(0, 1, anchor0=MSEC)
    got = {"c": [], "s": []}
    conn.sub.on_rx_pdu = lambda pdu: got["s"].append(pdu.payload)
    conn.coord.on_rx_pdu = lambda pdu: got["c"].append(pdu.payload)
    conn.send(plane.nodes[0], b"down")
    conn.send(plane.nodes[1], b"up")
    plane.sim.run(until=80 * MSEC)  # a single connection event suffices
    assert got["s"] == [b"down"]
    assert got["c"] == [b"up"]


def test_queue_drains_within_one_event_via_more_data(plane):
    """§2.2: the MD flag lets peers chain packet exchanges inside an event."""
    conn = plane.connect(0, 1, anchor0=MSEC)
    received = []
    conn.sub.on_rx_pdu = lambda pdu: received.append(pdu.payload)
    for i in range(10):
        assert conn.send(plane.nodes[0], bytes([i]) * 50)
    plane.sim.run(until=MSEC + 40 * MSEC)  # well before the second event
    assert len(received) == 10
    assert conn.coord.stats.events_active == 1


def test_ack_frees_buffer_pool(plane):
    conn = plane.connect(0, 1, anchor0=MSEC)
    pool = plane.nodes[0].buffer_pool
    conn.send(plane.nodes[0], b"x" * 100)
    assert pool.used == 100
    plane.sim.run(until=100 * MSEC)
    assert pool.used == 0


def test_send_too_large_payload_raises(plane):
    conn = plane.connect(0, 1)
    with pytest.raises(ValueError):
        conn.send(plane.nodes[0], b"x" * 252)


def test_send_fails_when_pool_exhausted(make_plane):
    plane = make_plane(
        config_factory=lambda i: BleConfig(buffer_pool_bytes=150)
    )
    conn = plane.connect(0, 1, anchor0=MSEC)
    assert conn.send(plane.nodes[0], b"x" * 100)
    assert not conn.send(plane.nodes[0], b"y" * 100)
    assert plane.nodes[0].buffer_pool.alloc_failures == 1


def test_send_on_closed_connection_returns_false(plane):
    conn = plane.connect(0, 1)
    conn.close()
    assert not conn.send(plane.nodes[0], b"data")


def test_retransmission_after_interference_burst(make_plane):
    """A lost packet is retransmitted one connection event later (§5.1)."""
    plane = make_plane()
    # jam everything between 50 ms and 200 ms: the first delivery attempts die
    plane.medium.interference.bursts.append(
        InterferenceBurst(50 * MSEC, 200 * MSEC, tuple(range(37)), 1.0)
    )
    conn = plane.connect(0, 1, params=PARAMS_75MS, anchor0=60 * MSEC)
    received = []
    conn.sub.on_rx_pdu = lambda pdu: received.append(pdu.payload)
    conn.send(plane.nodes[0], b"persistent")
    plane.sim.run(until=400 * MSEC)
    assert received == [b"persistent"]  # delivered exactly once, no dup
    assert conn.coord.stats.tx_data_attempts > 1  # needed retransmissions
    assert conn.coord.stats.events_crc_abort >= 1
    assert conn.open


def test_no_duplicate_delivery_when_ack_lost(make_plane):
    """If only the subordinate's reply is lost, the retransmitted PDU is
    recognised as a duplicate via its sequence number and dropped."""
    plane = make_plane()
    conn = plane.connect(0, 1, params=PARAMS_75MS, anchor0=MSEC)
    received = []
    conn.sub.on_rx_pdu = lambda pdu: received.append(pdu.payload)

    # patch the medium: lose exactly the second packet (the sub's first reply)
    real = plane.medium.packet_lost
    counter = {"n": 0}

    def lossy(channel, nbytes, addr=None):
        counter["n"] += 1
        if counter["n"] == 2:
            return True
        return real(channel, nbytes, addr)

    plane.medium.packet_lost = lossy
    conn.send(plane.nodes[0], b"once-only")
    plane.sim.run(until=300 * MSEC)
    assert received == [b"once-only"]
    assert conn.sub.stats.rx_data_dup == 1


def test_supervision_timeout_when_sub_radio_blocked(plane):
    """Events that never reach the subordinate kill the link (§2.2)."""
    closed = []
    conn = plane.connect(0, 1, params=PARAMS_75MS, anchor0=MSEC)
    conn.on_closed = lambda c, reason: closed.append(reason)
    plane.nodes[1].scheduler.claim(Hog(), 0, 10 * SEC)
    plane.sim.run(until=2 * SEC)
    assert closed == [DisconnectReason.SUPERVISION_TIMEOUT]
    # default timeout = 6 * 75 ms = 450 ms after the last valid packet
    assert not conn.open


def test_supervision_timeout_under_total_jamming(make_plane):
    plane = make_plane(base_ber=0.0)
    plane.medium.interference.bursts.append(
        InterferenceBurst(0, 10 * SEC, tuple(range(37)), 1.0)
    )
    closed = []
    conn = plane.connect(0, 1, params=PARAMS_75MS, anchor0=MSEC)
    conn.on_closed = lambda c, r: closed.append(r)
    plane.sim.run(until=2 * SEC)
    assert closed == [DisconnectReason.SUPERVISION_TIMEOUT]


def test_honest_sca_declaration_survives_drift(make_plane):
    """Window widening absorbs real drift when SCA is declared honestly."""
    plane = make_plane(ppms=[250.0, -250.0])  # worst-case legal clocks
    conn = plane.connect(
        0, 1, params=ConnParams(interval_ns=75 * MSEC), anchor0=MSEC
    )
    plane.sim.run(until=30 * SEC)
    assert conn.open
    assert conn.sub.stats.events_missed_window == 0


def test_dishonest_sca_declaration_loses_sync(make_plane):
    """With declared SCA 0 and no widening floor, drift breaks the link."""
    plane = make_plane(
        ppms=[200.0, -200.0],
        config_factory=lambda i: BleConfig(
            declared_sca_ppm=0.0, window_widening_base_ns=10 * USEC
        ),
    )
    closed = []
    conn = plane.connect(0, 1, params=PARAMS_75MS, anchor0=MSEC)
    conn.on_closed = lambda c, r: closed.append(r)
    plane.sim.run(until=60 * SEC)
    # 400 ppm relative drift = 30 us per 75 ms interval > 10 us window
    assert closed == [DisconnectReason.SUPERVISION_TIMEOUT]
    assert conn.sub.stats.events_missed_window > 0


class TestConnectionShading:
    """The paper's core finding, reproduced at unit scale (§6.1)."""

    def _shaded_plane(self, make_plane, policy, interval2_ms=75):
        plane = make_plane(
            n_nodes=3,
            # 50 ppm relative drift: conn A's anchors slide 50 us/s *towards*
            # conn B's, closing the initial 2 ms gap in ~40 s
            ppms=[-25.0, 0.0, 25.0],
            config_factory=lambda i: BleConfig(scheduler_policy=policy),
        )
        # node1 is subordinate of two connections whose coordinators drift
        # against each other; anchors start 2 ms apart and close at 50 us/s.
        conn_a = plane.connect(0, 1, params=PARAMS_75MS, anchor0=MSEC)
        conn_b = plane.connect(
            2, 1, params=ConnParams(interval_ns=interval2_ms * MSEC), anchor0=3 * MSEC
        )
        return plane, conn_a, conn_b

    def test_same_interval_starves_one_connection(self, make_plane):
        plane, conn_a, conn_b = self._shaded_plane(
            make_plane, SchedulerPolicy.EARLIEST_WINS
        )
        closed = []
        conn_a.on_closed = lambda c, r: closed.append(("a", r))
        conn_b.on_closed = lambda c, r: closed.append(("b", r))
        plane.sim.run(until=120 * SEC)
        reasons = [r for _, r in closed]
        assert DisconnectReason.SUPERVISION_TIMEOUT in reasons

    def test_distinct_intervals_prevent_shading(self, make_plane):
        """§6.3: unique intervals per node stop the losses."""
        plane, conn_a, conn_b = self._shaded_plane(
            make_plane, SchedulerPolicy.EARLIEST_WINS, interval2_ms=85
        )
        closed = []
        conn_a.on_closed = lambda c, r: closed.append(r)
        conn_b.on_closed = lambda c, r: closed.append(r)
        plane.sim.run(until=120 * SEC)
        assert closed == []
        assert conn_a.open and conn_b.open

    def test_alternate_policy_degrades_instead_of_dropping(self, make_plane):
        """Paper choice (ii): alternation halves capacity but keeps links."""
        plane, conn_a, conn_b = self._shaded_plane(
            make_plane, SchedulerPolicy.ALTERNATE
        )
        closed = []
        conn_a.on_closed = lambda c, r: closed.append(r)
        conn_b.on_closed = lambda c, r: closed.append(r)
        plane.sim.run(until=120 * SEC)
        assert closed == []
        skips = (
            conn_a.coord.stats.events_skipped_policy
            + conn_a.sub.stats.events_skipped_policy
            + conn_b.coord.stats.events_skipped_policy
            + conn_b.sub.stats.events_skipped_policy
        )
        assert skips > 0


def test_param_update_changes_interval(plane):
    conn = plane.connect(0, 1, params=PARAMS_75MS, anchor0=MSEC)
    new = ConnParams(interval_ns=150 * MSEC)
    conn.request_param_update(new)
    plane.sim.run(until=3 * SEC)
    assert conn.params.interval_ns == 150 * MSEC
    assert conn.open
    # event pacing slowed down: fewer than the 75 ms count of events
    assert conn.coord.stats.events_active < 3 * 13


def test_chan_map_update_takes_effect(plane):
    from repro.ble.chanmap import ChannelMap

    conn = plane.connect(0, 1, anchor0=MSEC)
    conn.send(plane.nodes[0], b"warm-up")
    plane.sim.run(until=100 * MSEC)
    conn.request_chan_map_update(ChannelMap((0, 1, 2, 3)))
    plane.sim.run(until=300 * MSEC)
    assert conn.chan_map.num_used == 4
    # keep traffic flowing on the restricted map
    received = []
    conn.sub.on_rx_pdu = lambda pdu: received.append(pdu.payload)
    before = [list(x) for x in conn.coord.stats.per_channel]
    conn.send(plane.nodes[0], b"restricted")
    plane.sim.run(until=600 * MSEC)
    assert received == [b"restricted"]
    for channel in range(4, 37):
        assert conn.coord.stats.per_channel[channel][0] == before[channel][0]


def test_close_is_idempotent_and_notifies_once(plane):
    conn = plane.connect(0, 1)
    closed = []
    conn.on_closed = lambda c, r: closed.append(r)
    conn.close()
    conn.close()
    assert closed == [DisconnectReason.LOCAL_CLOSE]


def test_close_unregisters_from_controllers(plane):
    conn = plane.connect(0, 1)
    assert conn in plane.nodes[0].connections
    conn.close()
    assert conn not in plane.nodes[0].connections
    assert conn not in plane.nodes[1].connections


def test_second_connection_truncates_first_events(make_plane):
    """Figure 4: a co-located connection bounds event length (capacity)."""
    plane = make_plane(n_nodes=3)
    conn_a = plane.connect(0, 1, params=PARAMS_75MS, anchor0=MSEC)
    received = []
    conn_a.sub.on_rx_pdu = lambda pdu: received.append(pdu.payload)

    def saturate(n):
        sent = 0
        for _ in range(n):
            if conn_a.send(plane.nodes[0], b"z" * 200):
                sent += 1
        return sent

    saturate(25)
    plane.sim.run(until=70 * MSEC)  # one event, alone on the node
    alone = len(received)

    # open a second connection anchored mid-interval of the first
    plane.connect(2, 1, params=PARAMS_75MS, anchor0=76 * MSEC + 37 * MSEC)
    received.clear()
    plane.sim.run(until=151 * MSEC)
    plane.nodes[0].buffer_pool.free(plane.nodes[0].buffer_pool.used)
    conn_a.coord.tx_queue.clear()
    saturate(25)
    received.clear()
    plane.sim.run(until=226 * MSEC)  # exactly one more event of conn_a
    restricted = len(received)
    assert 0 < restricted < alone
