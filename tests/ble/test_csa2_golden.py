"""CSA#2 golden vectors from the Bluetooth Core Specification.

BT Core 5.2, Vol 6, Part B, §4.5.8.3 gives two worked sample sequences
for the access address 0x8E89BED6 (channel identifier 0x305F): one with
all 37 data channels used, one with only 9 channels used.  An
implementation that reproduces both sequences has the PERM/MAM pipeline,
the unmapped-channel derivation, and the remapping-table arithmetic all
byte-exact -- which is what every hop in the simulator rides on.
"""

import pytest

from repro.ble.chanmap import ChannelMap
from repro.ble.csa import Csa2

#: The spec's sample access address (also the advertising AA).
SAMPLE_AA = 0x8E89BED6

#: Spec sample 1 (Vol 6 Part B §4.5.8.3.1): all 37 channels used.
ALL_USED_SEQUENCE = [25, 20, 6, 21]

#: Spec sample 2 (§4.5.8.3.2): 9 used channels, the rest remapped.
NINE_USED = (9, 10, 21, 22, 23, 33, 34, 35, 36)
NINE_USED_SEQUENCE = [35, 9, 33, 21]


def _nine_channel_map() -> ChannelMap:
    return ChannelMap.excluding(c for c in range(37) if c not in NINE_USED)


def test_channel_identifier_derivation():
    assert Csa2(SAMPLE_AA).channel_identifier == 0x305F


def test_spec_sample_all_channels_used():
    csa = Csa2(SAMPLE_AA)
    chan_map = ChannelMap.all_channels()
    got = [csa.channel_for_event(e, chan_map) for e in range(4)]
    assert got == ALL_USED_SEQUENCE


def test_spec_sample_nine_channels_used():
    csa = Csa2(SAMPLE_AA)
    chan_map = _nine_channel_map()
    assert chan_map.num_used == 9
    got = [csa.channel_for_event(e, chan_map) for e in range(4)]
    assert got == NINE_USED_SEQUENCE


def test_remapped_channels_stay_inside_the_map():
    csa = Csa2(SAMPLE_AA)
    chan_map = _nine_channel_map()
    for event in range(200):
        assert csa.channel_for_event(event, chan_map) in NINE_USED


def test_csa2_is_a_pure_function_of_the_counter():
    """Unlike CSA#1, the same event counter always maps to the same
    channel -- re-querying out of order must not perturb anything."""
    csa = Csa2(SAMPLE_AA)
    chan_map = ChannelMap.all_channels()
    forward = [csa.channel_for_event(e, chan_map) for e in range(10)]
    backward = [csa.channel_for_event(e, chan_map) for e in reversed(range(10))]
    assert forward == list(reversed(backward))


@pytest.mark.parametrize("bad_aa", [-1, 1 << 32])
def test_access_address_must_be_32_bit(bad_aa):
    with pytest.raises(ValueError):
        Csa2(bad_aa)
