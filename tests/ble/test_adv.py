"""Tests for advertising, scanning, and connection establishment."""

import statistics

from repro.ble.config import ConnParams
from repro.sim.units import MSEC, SEC


def make_link(plane, params=None):
    """Start advertiser on node1 (sub) and initiator on node0 (coord)."""
    results = {}
    adv = plane.nodes[1].advertise(
        payload_len=20, on_connected=lambda c: results.setdefault("sub", c)
    )
    scanner = plane.nodes[0].initiate(
        target_addr=1,
        params_factory=lambda: params or ConnParams(),
        on_connected=lambda c: results.setdefault("coord", c),
    )
    return adv, scanner, results


def test_establishment_roles_and_callbacks(plane):
    adv, scanner, results = make_link(plane)
    plane.sim.run(until=1 * SEC)
    assert "coord" in results and "sub" in results
    conn = results["coord"]
    assert conn is results["sub"]
    assert conn.coord.controller is plane.nodes[0]
    assert conn.sub.controller is plane.nodes[1]
    assert conn.open


def test_adv_and_scan_stop_after_connect(plane):
    adv, scanner, results = make_link(plane)
    plane.sim.run(until=1 * SEC)
    assert not adv.active
    assert not scanner.active
    assert scanner not in plane.medium.scanners


def test_connection_carries_factory_params(plane):
    params = ConnParams(interval_ns=50 * MSEC)
    _, _, results = make_link(plane, params=params)
    plane.sim.run(until=1 * SEC)
    assert results["coord"].params.interval_ns == 50 * MSEC


def test_connection_works_after_establishment(plane):
    _, _, results = make_link(plane)
    plane.sim.run(until=1 * SEC)
    conn = results["coord"]
    received = []
    conn.sub.on_rx_pdu = lambda pdu: received.append(pdu.payload)
    conn.send(plane.nodes[0], b"post-handshake")
    plane.sim.run(until=2 * SEC)
    assert received == [b"post-handshake"]


def test_reconnect_delay_in_paper_range(make_plane):
    """§4.2: 90 ms adv interval + continuous scan => ~10-100 ms reconnects.

    We measure the establishment delay over many repetitions; the mean must
    land in the paper's quoted 10-100 ms band (it is essentially U(0, adv
    interval) plus handshake).
    """
    delays = []
    for seed in range(40):
        plane = make_plane(seed=seed)
        t_request = 5 * MSEC
        result = {}

        def kickoff(p=plane, r=result):
            p.nodes[1].advertise(on_connected=lambda c: r.setdefault("conn", c))
            p.nodes[0].initiate(
                target_addr=1,
                params_factory=ConnParams,
                on_connected=lambda c, p=p, r=r: r.setdefault("t", p.sim.now),
            )

        plane.sim.at(t_request, kickoff)
        plane.sim.run(until=2 * SEC)
        assert "t" in result, f"no connection established (seed {seed})"
        delays.append((result["t"] - t_request) / MSEC)
    mean = statistics.mean(delays)
    assert 10 <= mean <= 100, f"mean reconnect delay {mean:.1f} ms out of band"
    assert max(delays) <= 150


def test_no_connection_to_unwanted_target(plane):
    """A scanner hunting for addr 7 ignores advertisements from addr 1."""
    plane.nodes[1].advertise()
    scanner = plane.nodes[0].initiate(
        target_addr=7, params_factory=ConnParams, on_connected=None
    )
    plane.sim.run(until=2 * SEC)
    assert scanner.active  # still hunting
    assert plane.nodes[0].connections == []


def test_advertiser_stop_cancels_events(plane):
    adv = plane.nodes[1].advertise()
    plane.sim.run(until=300 * MSEC)
    sent_before = adv.events_sent
    assert sent_before > 0
    adv.stop()
    plane.sim.run(until=1 * SEC)
    assert adv.events_sent == sent_before


def test_advertising_consumes_radio_time(plane):
    plane.nodes[1].advertise(payload_len=31)
    plane.sim.run(until=1 * SEC)
    assert plane.nodes[1].adv_events >= 9  # ~10 events per second at 90 ms
    assert plane.nodes[1].adv_ns > 0


def test_scanner_rotates_advertising_channels(plane):
    from repro.ble.adv import Scanner
    from repro.ble.config import ConnParams
    from repro.sim.units import MSEC

    scanner = Scanner(plane.nodes[0], plane.nodes[0].rng, 1, ConnParams)
    interval = plane.nodes[0].config.scan_interval_ns
    channels = [scanner.current_channel(k * interval) for k in range(6)]
    assert set(channels) == {37, 38, 39}
    assert channels[:3] == channels[3:]  # periodic rotation


def test_wildcard_scanner_skips_self_and_connected(plane):
    from repro.ble.config import ConnParams

    scanner = plane.nodes[0].initiate(None, ConnParams)
    assert not scanner.wants(plane.nodes[0])  # never itself
    assert scanner.wants(plane.nodes[1])
    plane.connect(0, 1)
    assert not scanner.wants(plane.nodes[1])  # already connected


def test_scanner_accept_filter(make_plane):
    from repro.ble.config import ConnParams

    plane = make_plane(n_nodes=3)
    scanner = plane.nodes[0].initiate(
        None, ConnParams, accept=lambda addr: addr % 2 == 0
    )
    assert scanner.wants(plane.nodes[2])
    assert not scanner.wants(plane.nodes[1])
