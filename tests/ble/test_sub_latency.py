"""Tests for subordinate latency (§2.2's energy knob)."""

import pytest

from repro.ble.config import ConnParams
from repro.sim.units import MSEC, SEC

from .conftest import BlePlane


def test_subordinate_skips_allowed_events():
    """With latency L the idle subordinate listens to every (L+1)th event."""
    plane = BlePlane()
    conn = plane.connect(
        0, 1,
        params=ConnParams(interval_ns=50 * MSEC, latency=3),
        anchor0=MSEC,
    )
    plane.sim.run(until=10 * SEC)
    scheduled = conn.event_counter  # ~200 events at 50 ms over 10 s
    attended = conn.sub.stats.events_active
    assert attended == pytest.approx(scheduled / 4, rel=0.1)
    # completed exchanges only happen when the subordinate listens
    assert conn.coord.stats.events_active == attended
    assert conn.open


def test_latency_zero_listens_everywhere():
    plane = BlePlane()
    conn = plane.connect(
        0, 1, params=ConnParams(interval_ns=50 * MSEC, latency=0), anchor0=MSEC
    )
    plane.sim.run(until=5 * SEC)
    assert conn.sub.stats.events_active == conn.coord.stats.events_active


def test_latency_suspended_while_sub_has_data():
    """A subordinate with queued data must not skip events."""
    plane = BlePlane()
    conn = plane.connect(
        0, 1, params=ConnParams(interval_ns=50 * MSEC, latency=5), anchor0=MSEC
    )
    received = []
    conn.coord.on_rx_pdu = lambda pdu: received.append(pdu.payload)

    def chatter():
        conn.send(plane.nodes[1], b"uplink-data")
        plane.sim.after(40 * MSEC, chatter)

    plane.sim.after(5 * MSEC, chatter)
    plane.sim.run(until=5 * SEC)
    # with data pending every interval, nearly every event is attended
    assert conn.sub.stats.events_active > 0.9 * conn.coord.stats.events_active
    assert len(received) > 50


def test_supervision_timeout_scales_with_latency():
    params = ConnParams(interval_ns=50 * MSEC, latency=3)
    # default derivation must cover (latency+1) skipped rounds
    assert params.effective_supervision_timeout_ns() >= 4 * 6 * 50 * MSEC


def test_latency_cuts_subordinate_energy():
    """The §2.2 trade-off: skipped events save subordinate charge."""
    from repro.energy import EnergyModel

    def sub_current(latency: int) -> float:
        plane = BlePlane()
        plane.connect(
            0, 1,
            params=ConnParams(interval_ns=50 * MSEC, latency=latency),
            anchor0=MSEC,
        )
        plane.sim.run(until=30 * SEC)
        return EnergyModel().controller_current_ua(plane.nodes[1], 30.0)

    assert sub_current(4) < 0.45 * sub_current(0)
