"""CSA#2 block-table memoization must be invisible to callers.

The memoized ``channel_for_event`` precomputes event-counter -> channel
tables in blocks; these tests pin it against a direct spec-shaped reference
implementation (the pre-memoization algorithm) across channel maps, map
switches, and the full counter block structure.
"""

import random

from repro.ble.chanmap import ChannelMap
from repro.ble.csa import CSA2_BLOCK_SIZE, Csa2


def _reference_channel(csa: Csa2, event_counter: int, chan_map: ChannelMap) -> int:
    """Direct CSA#2 computation: prn -> unmapped -> remap (no tables)."""
    prn = csa._prn_e(event_counter & 0xFFFF)
    unmapped = prn % 37
    if chan_map.is_used(unmapped):
        return unmapped
    remapping_index = (chan_map.num_used * prn) // 0x10000
    return chan_map.remap(remapping_index)


SPARSE_MAP = ChannelMap((0, 5, 9, 17, 22, 30, 36))
MID_MAP = ChannelMap(tuple(range(0, 37, 2)))
FULL_MAP = ChannelMap.all_channels()


def test_table_matches_reference_across_blocks():
    csa = Csa2(0x8E89BED6)
    for counter in list(range(0, 3 * CSA2_BLOCK_SIZE)) + [0xFFFE, 0xFFFF]:
        assert csa.channel_for_event(counter, FULL_MAP) == _reference_channel(
            csa, counter, FULL_MAP
        )


def test_table_matches_reference_on_sparse_maps():
    csa = Csa2(0xA0B1C2D3)
    rng = random.Random(42)
    for chan_map in (SPARSE_MAP, MID_MAP):
        for _ in range(500):
            counter = rng.randrange(0x10000)
            assert csa.channel_for_event(counter, chan_map) == \
                _reference_channel(csa, counter, chan_map)


def test_map_switches_use_per_map_tables():
    """Alternating maps (channel-map update procedures) never cross-pollute."""
    csa = Csa2(0x12345678)
    rng = random.Random(7)
    maps = [FULL_MAP, SPARSE_MAP, MID_MAP]
    for _ in range(300):
        chan_map = rng.choice(maps)
        counter = rng.randrange(0x10000)
        assert csa.channel_for_event(counter, chan_map) == _reference_channel(
            csa, counter, chan_map
        )


def test_equal_but_distinct_map_objects_share_semantics():
    """A rebuilt (equal) ChannelMap must select identical channels."""
    csa = Csa2(0xDEADBEEF)
    map_a = ChannelMap((1, 2, 3, 10, 20, 30))
    map_b = ChannelMap((1, 2, 3, 10, 20, 30))
    for counter in range(200):
        assert csa.channel_for_event(counter, map_a) == csa.channel_for_event(
            counter, map_b
        )
