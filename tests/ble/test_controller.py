"""Tests for the per-node controller facade."""

from repro.ble.config import ConnParams
from repro.ble.conn import DisconnectReason, Role
from repro.sim.units import MSEC, SEC


def test_attach_fires_open_listeners(plane):
    opened = []
    plane.nodes[0].conn_open_listeners.append(lambda c: opened.append(c))
    conn = plane.connect(0, 1)
    assert opened == [conn]


def test_close_fires_close_listeners_on_both(plane):
    closed = []
    plane.nodes[0].conn_close_listeners.append(lambda c, r: closed.append((0, r)))
    plane.nodes[1].conn_close_listeners.append(lambda c, r: closed.append((1, r)))
    conn = plane.connect(0, 1)
    conn.close()
    assert (0, DisconnectReason.LOCAL_CLOSE) in closed
    assert (1, DisconnectReason.LOCAL_CLOSE) in closed


def test_role_of(plane):
    conn = plane.connect(0, 1)
    assert plane.nodes[0].role_of(conn) is Role.COORDINATOR
    assert plane.nodes[1].role_of(conn) is Role.SUBORDINATE


def test_connection_to_peer_lookup(plane):
    conn = plane.connect(0, 1)
    assert plane.nodes[0].connection_to(1) is conn
    assert plane.nodes[1].connection_to(0) is conn
    assert plane.nodes[0].connection_to(99) is None


def test_used_intervals_reflect_connections(make_plane):
    plane = make_plane(n_nodes=3)
    plane.connect(0, 1, params=ConnParams(interval_ns=75 * MSEC))
    plane.connect(2, 1, params=ConnParams(interval_ns=85 * MSEC), anchor0=2 * MSEC)
    assert sorted(plane.nodes[1].used_intervals_ns()) == [75 * MSEC, 85 * MSEC]
    assert plane.nodes[0].used_intervals_ns() == [75 * MSEC]


def test_energy_counters_accumulate(plane):
    plane.connect(0, 1, anchor0=MSEC)
    plane.sim.run(until=1 * SEC)
    assert plane.nodes[0].conn_events_coord > 0
    assert plane.nodes[0].conn_events_sub == 0
    assert plane.nodes[1].conn_events_sub > 0
    assert plane.nodes[0].conn_event_ns > 0


def test_peer_of(plane):
    conn = plane.connect(0, 1)
    assert conn.peer_of(plane.nodes[0]) is plane.nodes[1]
    assert conn.peer_of(plane.nodes[1]) is plane.nodes[0]
