"""Tests for the byte-budget buffer pool."""

import pytest
from hypothesis import given, strategies as st

from repro.ble.bufpool import BufferPool


def test_alloc_within_budget():
    pool = BufferPool(100)
    assert pool.try_alloc(60)
    assert pool.used == 60
    assert pool.available == 40


def test_alloc_fails_when_full():
    pool = BufferPool(100)
    assert pool.try_alloc(80)
    assert not pool.try_alloc(30)
    assert pool.alloc_failures == 1
    assert pool.used == 80  # failed alloc does not charge


def test_free_releases():
    pool = BufferPool(100)
    pool.try_alloc(80)
    pool.free(50)
    assert pool.try_alloc(60)


def test_overfree_raises():
    pool = BufferPool(100)
    pool.try_alloc(10)
    with pytest.raises(RuntimeError):
        pool.free(20)


def test_peak_tracking():
    pool = BufferPool(100)
    pool.try_alloc(70)
    pool.free(70)
    pool.try_alloc(30)
    assert pool.peak_used == 70


def test_invalid_capacity():
    with pytest.raises(ValueError):
        BufferPool(0)


def test_negative_sizes_rejected():
    pool = BufferPool(10)
    with pytest.raises(ValueError):
        pool.try_alloc(-1)
    with pytest.raises(ValueError):
        pool.free(-1)


@given(ops=st.lists(st.integers(min_value=0, max_value=500), max_size=100))
def test_used_never_exceeds_capacity(ops):
    """Invariant: the pool never over-commits its byte budget."""
    pool = BufferPool(1000)
    outstanding = []
    for size in ops:
        if pool.try_alloc(size):
            outstanding.append(size)
        assert 0 <= pool.used <= pool.capacity
        if len(outstanding) > 3:
            pool.free(outstanding.pop(0))
            assert 0 <= pool.used <= pool.capacity
