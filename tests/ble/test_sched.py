"""Tests for the per-node radio scheduler."""

import pytest

from repro.ble.sched import RadioScheduler


class FakeActivity:
    def __init__(self, demands=()):
        self.demands = list(demands)
        self.consec_skips = 0

    def next_radio_time(self, after_ns):
        future = [t for t in self.demands if t > after_ns]
        return min(future) if future else None


def test_radio_initially_free():
    sched = RadioScheduler("n")
    assert sched.is_free(0)
    assert sched.is_free(10**12)


def test_claim_blocks_until_end():
    sched = RadioScheduler("n")
    act = FakeActivity()
    sched.claim(act, 100, 500)
    assert not sched.is_free(100)
    assert not sched.is_free(499)
    assert sched.is_free(500)


def test_overlapping_claim_raises():
    sched = RadioScheduler("n")
    a, b = FakeActivity(), FakeActivity()
    sched.claim(a, 100, 500)
    with pytest.raises(RuntimeError):
        sched.claim(b, 300, 600)


def test_backwards_claim_raises():
    sched = RadioScheduler("n")
    with pytest.raises(RuntimeError):
        sched.claim(FakeActivity(), 500, 100)


def test_claim_resets_skip_streak():
    sched = RadioScheduler("n")
    act = FakeActivity()
    sched.deny(act)
    sched.deny(act)
    assert act.consec_skips == 2
    sched.claim(act, 0, 10)
    assert act.consec_skips == 0
    assert sched.denials == 2
    assert sched.claims == 1


def test_busy_time_accumulates():
    sched = RadioScheduler("n")
    act = FakeActivity()
    sched.claim(act, 0, 100)
    sched.claim(act, 200, 250)
    assert sched.busy_ns_total == 150


def test_next_demand_excludes_given_activity():
    sched = RadioScheduler("n")
    mine = FakeActivity([100])
    other = FakeActivity([300])
    sched.register(mine)
    sched.register(other)
    t, a = sched.next_demand_after(0, exclude=mine)
    assert (t, a) == (300, other)


def test_next_demand_picks_earliest():
    sched = RadioScheduler("n")
    a = FakeActivity([500])
    b = FakeActivity([200, 900])
    sched.register(a)
    sched.register(b)
    t, winner = sched.next_demand_after(0)
    assert (t, winner) == (200, b)
    t, winner = sched.next_demand_after(200)
    assert (t, winner) == (500, a)


def test_next_demand_none_when_dormant():
    sched = RadioScheduler("n")
    sched.register(FakeActivity([]))
    assert sched.next_demand_after(0) == (None, None)


def test_unregister_removes_demand():
    sched = RadioScheduler("n")
    act = FakeActivity([100])
    sched.register(act)
    sched.unregister(act)
    assert sched.next_demand_after(0) == (None, None)
    # idempotent
    sched.unregister(act)


def test_register_is_idempotent():
    sched = RadioScheduler("n")
    act = FakeActivity([100])
    sched.register(act)
    sched.register(act)
    assert sched.next_demand_after(0) == (100, act)
