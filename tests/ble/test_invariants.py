"""Property-based invariants of the BLE data plane under random traffic/loss.

The SN/NESN acknowledgement scheme guarantees exactly-once, in-order
delivery per direction.  These tests fuzz traffic patterns and loss
processes and check the conservation laws that must hold regardless:

* every acknowledged PDU was delivered exactly once (acked == rx_unique up
  to the single in-flight PDU),
* payloads arrive in transmission order, bit-exact,
* buffer pools drain to zero once everything is acknowledged,
* the radio scheduler's busy time never exceeds wall time.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.ble.config import ConnParams
from repro.phy.medium import InterferenceBurst
from repro.sim.units import MSEC, SEC

from .conftest import BlePlane


@st.composite
def traffic_pattern(draw):
    """A list of (time_ms, direction, payload) send operations."""
    n = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n):
        ops.append(
            (
                draw(st.integers(min_value=2, max_value=2000)),
                draw(st.booleans()),
                draw(st.binary(min_size=1, max_size=120)),
            )
        )
    return sorted(ops)


@st.composite
def loss_bursts(draw):
    """Up to three total-loss bursts inside the first 2.5 s."""
    bursts = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        start = draw(st.integers(min_value=0, max_value=2300))
        length = draw(st.integers(min_value=10, max_value=400))
        bursts.append(
            InterferenceBurst(start * MSEC, (start + length) * MSEC,
                              tuple(range(37)), 1.0)
        )
    return bursts


@given(pattern=traffic_pattern(), bursts=loss_bursts(), seed=st.integers(0, 999))
@settings(max_examples=60, deadline=None)
def test_exactly_once_in_order_delivery(pattern, bursts, seed):
    plane = BlePlane(seed=seed)
    plane.medium.interference.bursts.extend(bursts)
    conn = plane.connect(0, 1, params=ConnParams(interval_ns=30 * MSEC), anchor0=MSEC)
    got = {True: [], False: []}
    conn.sub.on_rx_pdu = lambda pdu: got[True].append(pdu.payload)
    conn.coord.on_rx_pdu = lambda pdu: got[False].append(pdu.payload)
    sent = {True: [], False: []}

    for t_ms, downstream, payload in pattern:
        def make(downstream=downstream, payload=payload):
            node = plane.nodes[0] if downstream else plane.nodes[1]
            if conn.send(node, payload):
                sent[downstream].append(payload)

        plane.sim.at(t_ms * MSEC, make)

    plane.sim.run(until=10 * SEC)
    # Bursts end by 2.7 s and retransmissions have 7+ s to finish.  A burst
    # longer than the supervision timeout legitimately kills the connection
    # and discards queued data -- then delivery may be truncated, but never
    # reordered or duplicated.
    for direction in (True, False):
        if conn.open:
            assert got[direction] == sent[direction], (
                f"direction {direction}: delivery not exactly-once/in-order"
            )
        else:
            n = len(got[direction])
            assert got[direction] == sent[direction][:n], (
                f"direction {direction}: delivered list is not an in-order "
                "prefix of the sent list"
            )

    # conservation: every ack implies a delivery; at most the single
    # in-flight PDU may be delivered but not yet acknowledged
    for tx, rx in (
        (conn.coord.stats, conn.sub.stats),
        (conn.sub.stats, conn.coord.stats),
    ):
        assert 0 <= rx.rx_data_unique - tx.tx_data_acked <= 1
    # buffer pools fully drained after all acks
    assert plane.nodes[0].buffer_pool.used == 0
    assert plane.nodes[1].buffer_pool.used == 0
    # physics: radio cannot be busy longer than elapsed time
    for node in plane.nodes:
        assert node.scheduler.busy_ns_total <= plane.sim.now


@given(seed=st.integers(0, 200))
@settings(max_examples=30, deadline=None)
def test_idle_connection_event_count_is_deterministic(seed):
    """Without loss or drift, event pacing is exact regardless of seed."""
    plane = BlePlane(seed=seed)
    conn = plane.connect(0, 1, params=ConnParams(interval_ns=50 * MSEC), anchor0=MSEC)
    plane.sim.run(until=2 * SEC)
    assert conn.coord.stats.events_active == 1 + (2000 - 1) // 50


@given(
    interval_ms=st.sampled_from([15, 30, 75, 150]),
    ppm_a=st.floats(min_value=-100, max_value=100),
    ppm_b=st.floats(min_value=-100, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_lone_connection_survives_any_legal_drift(interval_ms, ppm_a, ppm_b):
    """Window widening must absorb any in-spec drift for a single link."""
    plane = BlePlane(ppms=[ppm_a, ppm_b])
    conn = plane.connect(
        0, 1, params=ConnParams(interval_ns=interval_ms * MSEC), anchor0=MSEC
    )
    plane.sim.run(until=20 * SEC)
    assert conn.open
    assert conn.sub.stats.events_missed_window == 0
