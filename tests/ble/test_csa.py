"""Tests for the channel selection algorithms."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.ble.chanmap import ChannelMap
from repro.ble.csa import Csa1, Csa2, _mam, _perm


FULL_MAP = ChannelMap.all_channels()


class TestCsa1:
    def test_hop_increment_range_enforced(self):
        with pytest.raises(ValueError):
            Csa1(4)
        with pytest.raises(ValueError):
            Csa1(17)

    def test_first_channel_is_hop_increment(self):
        # lastUnmapped starts at 0, so event 0 lands on the hop increment
        assert Csa1(7).channel_for_event(0, FULL_MAP) == 7

    def test_advances_by_hop_mod_37(self):
        csa = Csa1(13)
        seq = [csa.channel_for_event(i, FULL_MAP) for i in range(40)]
        for a, b in zip(seq, seq[1:]):
            assert b == (a + 13) % 37

    def test_covers_all_channels_with_coprime_hop(self):
        csa = Csa1(5)
        seq = {csa.channel_for_event(i, FULL_MAP) for i in range(37)}
        assert seq == set(range(37))

    def test_counters_must_increase(self):
        csa = Csa1(5)
        csa.channel_for_event(3, FULL_MAP)
        with pytest.raises(ValueError):
            csa.channel_for_event(3, FULL_MAP)

    def test_remapping_avoids_unused_channels(self):
        cmap = ChannelMap.excluding([22])
        csa = Csa1(11)
        for i in range(200):
            assert csa.channel_for_event(i, cmap) != 22

    def test_skipped_counters_advance_state(self):
        a, b = Csa1(7), Csa1(7)
        a.channel_for_event(0, FULL_MAP)
        a.channel_for_event(1, FULL_MAP)
        ch_a = a.channel_for_event(5, FULL_MAP)
        for i in range(6):
            ch_b = b.channel_for_event(i, FULL_MAP)
        assert ch_a == ch_b


class TestCsa2Primitives:
    def test_perm_reverses_bits_within_bytes(self):
        # 0b00000001 per byte reverses to 0b10000000
        assert _perm(0x0101) == 0x8080
        assert _perm(0x8080) == 0x0101
        assert _perm(0x0000) == 0x0000
        assert _perm(0xFFFF) == 0xFFFF

    def test_perm_is_involution(self):
        for v in (0x1234, 0xABCD, 0x0F0F, 0x5555):
            assert _perm(_perm(v)) == v

    def test_mam(self):
        assert _mam(0, 5) == 5
        assert _mam(1, 0) == 17
        assert _mam(0xFFFF, 0xFFFF) == (0xFFFF * 17 + 0xFFFF) & 0xFFFF


class TestCsa2:
    def test_channel_identifier(self):
        # the spec's example access address for sample data
        csa = Csa2(0x8E89BED6)
        assert csa.channel_identifier == (0x8E89 ^ 0xBED6)

    def test_deterministic(self):
        a = Csa2(0x12345678)
        b = Csa2(0x12345678)
        for i in range(100):
            assert a.channel_for_event(i, FULL_MAP) == b.channel_for_event(i, FULL_MAP)

    def test_stateless_random_access(self):
        csa = Csa2(0xDEADBEEF)
        ch50 = csa.channel_for_event(50, FULL_MAP)
        for i in range(10):
            csa.channel_for_event(i, FULL_MAP)
        assert csa.channel_for_event(50, FULL_MAP) == ch50

    def test_respects_channel_map(self):
        cmap = ChannelMap.excluding([22, 0, 1])
        csa = Csa2(0xCAFEBABE)
        for i in range(1000):
            assert cmap.is_used(csa.channel_for_event(i, cmap))

    def test_distribution_roughly_uniform(self):
        csa = Csa2(0x55AA55AA)
        counts = collections.Counter(
            csa.channel_for_event(i, FULL_MAP) for i in range(37 * 200)
        )
        assert set(counts) == set(range(37))
        for channel, n in counts.items():
            assert 100 <= n <= 320, f"channel {channel} count {n} not near 200"

    def test_different_access_addresses_decorrelate(self):
        # note: the identifier is (AA>>16) ^ (AA&0xFFFF), so the two halves
        # must differ between the addresses for the sequences to diverge
        a = Csa2(0x12345678)  # identifier 0x444C
        b = Csa2(0x12340000)  # identifier 0x1234
        assert a.channel_identifier != b.channel_identifier
        seq_a = [a.channel_for_event(i, FULL_MAP) for i in range(100)]
        seq_b = [b.channel_for_event(i, FULL_MAP) for i in range(100)]
        assert seq_a != seq_b

    @given(aa=st.integers(min_value=0, max_value=0xFFFFFFFF),
           counter=st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=200)
    def test_output_always_in_map(self, aa, counter):
        cmap = ChannelMap.excluding([3, 7, 22, 30])
        channel = Csa2(aa).channel_for_event(counter, cmap)
        assert cmap.is_used(channel)

    def test_access_address_validation(self):
        with pytest.raises(ValueError):
            Csa2(1 << 32)
