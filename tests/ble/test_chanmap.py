"""Tests for the data channel map."""

import pytest
from hypothesis import given, strategies as st

from repro.ble.chanmap import ChannelMap


def test_all_channels_map():
    cmap = ChannelMap.all_channels()
    assert cmap.num_used == 37
    assert cmap.is_used(0) and cmap.is_used(36)


def test_excluding_channel_22_matches_paper_testbed():
    cmap = ChannelMap.excluding([22])
    assert cmap.num_used == 36
    assert not cmap.is_used(22)
    assert cmap.is_used(21) and cmap.is_used(23)


def test_too_few_channels_rejected():
    with pytest.raises(ValueError):
        ChannelMap((5,))


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        ChannelMap((0, 37))


def test_unsorted_rejected():
    with pytest.raises(ValueError):
        ChannelMap((5, 3))


def test_remap_lands_on_used_channel():
    cmap = ChannelMap.excluding([0, 1, 2])
    for idx in range(100):
        assert cmap.is_used(cmap.remap(idx))


@given(
    excluded=st.sets(st.integers(min_value=0, max_value=36), max_size=35),
)
def test_bitmask_roundtrip(excluded):
    cmap = ChannelMap.excluding(excluded)
    assert ChannelMap.from_bitmask(cmap.to_bitmask()) == cmap


def test_bitmask_value():
    cmap = ChannelMap((0, 1, 36))
    assert cmap.to_bitmask() == (1 << 0) | (1 << 1) | (1 << 36)
