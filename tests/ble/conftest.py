"""Shared fixtures for BLE link-layer tests."""

import random

import pytest

from repro.ble.config import BleConfig, ConnParams
from repro.ble.controller import BleController
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import Simulator


class BlePlane:
    """A small test harness: one simulator + medium + n controllers."""

    def __init__(self, n_nodes=2, ppms=None, config_factory=None, base_ber=0.0, seed=1):
        from repro.sim.clock import DriftingClock

        self.sim = Simulator()
        self.medium = BleMedium(
            self.sim, random.Random(seed), InterferenceModel(base_ber=base_ber)
        )
        self.nodes = []
        ppms = ppms or [0.0] * n_nodes
        for i in range(n_nodes):
            cfg = config_factory(i) if config_factory else BleConfig()
            ctrl = BleController(
                self.sim,
                self.medium,
                addr=i,
                clock=DriftingClock(self.sim, ppm=ppms[i]),
                config=cfg,
                rng=random.Random(seed * 1000 + i),
                name=f"node{i}",
            )
            self.nodes.append(ctrl)

    def connect(self, coord_idx, sub_idx, params=None, anchor0=1_000_000, aa=None):
        from repro.ble.conn import Connection

        params = params or ConnParams()
        return Connection(
            sim=self.sim,
            coordinator=self.nodes[coord_idx],
            subordinate=self.nodes[sub_idx],
            params=params,
            access_address=aa if aa is not None else random.Random(42).getrandbits(32),
            anchor0_true=anchor0,
        )


@pytest.fixture
def plane():
    """Two-node loss-free plane with drift-free clocks."""
    return BlePlane()


@pytest.fixture
def make_plane():
    """Factory fixture for custom planes."""
    return BlePlane
