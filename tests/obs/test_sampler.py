"""Tests for the sim-time metrics snapshotter (cadence + series shape)."""

from repro.obs.registry import MetricsHub
from repro.obs.sampler import MetricsSnapshotter
from repro.sim import Simulator
from repro.sim.units import SEC

import pytest


def _ticking_hub(sim):
    """A hub plus a 1 Hz counter-bumping workload on the sim clock."""
    hub = MetricsHub()
    hub.configure()

    def work():
        hub.inc("node1", "work.ticks")
        sim.after(1 * SEC, work)

    sim.after(1 * SEC, work)
    return hub


class TestCadence:
    def test_samples_every_period_plus_final_partial_window(self):
        sim = Simulator()
        hub = _ticking_hub(sim)
        snapper = MetricsSnapshotter(sim, hub, 10 * SEC)
        snapper.start()
        sim.run(until=25 * SEC)
        snapper.finish()
        assert snapper.times_ns == [10 * SEC, 20 * SEC, 25 * SEC]
        series = snapper.series()
        # the snapshotter's timer predates the t=10/t=20 work timers, so
        # same-timestamp ties dispatch it first: it sees 9 and 19 ticks;
        # the closing sample at t=25 sees all 24 (the kernel never runs
        # the t=25 event itself)
        assert series["values"]["node1:work.ticks"] == [9, 19, 24]

    def test_finish_is_idempotent_at_a_period_boundary(self):
        sim = Simulator()
        hub = _ticking_hub(sim)
        snapper = MetricsSnapshotter(sim, hub, 10 * SEC)
        snapper.start()
        sim.run(until=20 * SEC)
        # the horizon tick itself never ran (the kernel stops before the
        # horizon), so finish() takes exactly one closing sample...
        snapper.finish()
        assert snapper.times_ns == [10 * SEC, 20 * SEC]
        # ...and a second finish() adds nothing
        snapper.finish()
        assert len(snapper.times_ns) == 2

    def test_no_ticks_yields_no_series_until_finish(self):
        sim = Simulator()
        hub = MetricsHub()
        hub.configure()
        snapper = MetricsSnapshotter(sim, hub, 10 * SEC)
        assert snapper.series() is None
        snapper.finish()
        assert snapper.series()["times_ns"] == [0]

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            MetricsSnapshotter(Simulator(), MetricsHub(), 0)


class TestColumns:
    def test_late_instruments_get_zero_prefix(self):
        sim = Simulator()
        hub = MetricsHub()
        hub.configure()
        hub.inc("n", "early")
        sim.at(int(10.5 * SEC), lambda: hub.inc("n", "late"))
        snapper = MetricsSnapshotter(sim, hub, 10 * SEC)
        snapper.start()
        sim.run(until=30 * SEC)
        snapper.finish()
        series = snapper.series()
        # periodic samples at 10 and 20, closing sample at 30
        assert series["times_ns"] == [10 * SEC, 20 * SEC, 30 * SEC]
        assert series["values"]["n:early"] == [1, 1, 1]
        assert series["values"]["n:late"] == [0, 1, 1]

    def test_queue_depth_gauge_sampled(self):
        sim = Simulator()
        hub = MetricsHub()
        hub.configure()
        snapper = MetricsSnapshotter(sim, hub, 10 * SEC)
        snapper.start()
        sim.run(until=15 * SEC)
        snapper.finish()
        series = snapper.series()
        assert "sim:kernel.timer_queue_depth" in series["values"]

    def test_gauges_only_appear_after_first_set(self):
        sim = Simulator()
        hub = MetricsHub()
        hub.configure()
        hub.scope("n").gauge("unset")  # created but never set
        snapper = MetricsSnapshotter(sim, hub, 10 * SEC)
        snapper.start()
        sim.run(until=15 * SEC)
        snapper.finish()
        assert "n:unset" not in snapper.series()["values"]
