"""Tests for metric instruments, registries, and snapshot merging."""

import random

import pytest

from repro.exp.metrics import percentile as exact_percentile
from repro.obs.registry import (
    RTT_BUCKETS_S,
    Counter,
    CounterVec,
    Gauge,
    Histogram,
    MetricsHub,
    merge_scope_snapshots,
)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestGauge:
    def test_envelope(self):
        g = Gauge()
        for v in (3.0, 1.0, 7.0):
            g.set(v)
        assert g.to_dict() == {"last": 7.0, "min": 1.0, "max": 7.0}

    def test_unset_gauge_exports_none(self):
        assert Gauge().to_dict() == {"last": None, "min": None, "max": None}


class TestCounterVec:
    def test_labels_stringify_and_sort(self):
        v = CounterVec("channel")
        v.inc(10)
        v.inc(2)
        v.inc(10, 3)
        assert v.to_dict() == {
            "label": "channel",
            "values": {"10": 4, "2": 1},
        }


class TestHistogram:
    def test_upper_bound_is_inclusive(self):
        h = Histogram([1.0, 2.0])
        h.observe(1.0)  # lands in bucket 0: (-inf, 1.0]
        h.observe(1.5)  # bucket 1: (1.0, 2.0]
        h.observe(9.0)  # overflow
        assert h.counts == [1, 1, 1]

    def test_mean_and_stats(self):
        h = Histogram([10.0])
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.mean() == pytest.approx(2.0)
        assert h.vmin == 1.0 and h.vmax == 3.0

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram([1.0, 2.0, 3.0])
        for v in (0.5, 1.5, 2.5):
            h.observe(v)
        assert h.percentile(0.5) == pytest.approx(1.5)

    def test_percentile_clamps_to_observed_range(self):
        h = Histogram([10.0])
        h.observe(3.0)
        h.observe(4.0)
        assert h.percentile(0.0) == 3.0
        assert h.percentile(1.0) == 4.0

    def test_percentile_empty_is_nan(self):
        import math

        assert math.isnan(Histogram([1.0]).percentile(0.5))

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).percentile(1.5)

    def test_percentile_within_one_bucket_width_of_exact(self):
        rng = random.Random(42)
        samples = [rng.expovariate(5.0) for _ in range(500)]
        h = Histogram(RTT_BUCKETS_S)
        for s in samples:
            h.observe(s)
        for q in (0.5, 0.9, 0.99):
            exact = exact_percentile(samples, q)
            approx = h.percentile(q)
            widths = [
                hi - lo
                for lo, hi in zip((0.0,) + RTT_BUCKETS_S, RTT_BUCKETS_S)
                if lo <= exact <= hi or lo <= approx <= hi
            ]
            assert abs(approx - exact) <= max(widths), (
                f"q={q}: {approx} vs exact {exact}"
            )

    def test_merge_adds_counts(self):
        a, b = Histogram([1.0, 2.0]), Histogram([1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.vmin == 0.5 and a.vmax == 5.0

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram([1.0]).merge(Histogram([2.0]))

    def test_dict_round_trip_preserves_percentiles(self):
        h = Histogram([1.0, 2.0])
        for v in (0.2, 1.2, 1.8):
            h.observe(v)
        clone = Histogram.from_dict(h.to_dict())
        assert clone.percentile(0.5) == h.percentile(0.5)
        assert clone.to_dict() == h.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([2.0, 1.0])


class TestHub:
    def test_disabled_by_default(self):
        assert MetricsHub().enabled is False

    def test_configure_then_reset_drops_scopes(self):
        hub = MetricsHub()
        hub.configure()
        hub.inc("node1", "x")
        assert hub.snapshot()["node1"]["counters"]["x"] == 1
        hub.reset()
        assert hub.enabled is False
        assert hub.snapshot() == {}

    def test_snapshot_sorts_scopes_and_names(self):
        hub = MetricsHub()
        hub.configure()
        hub.inc("zeta", "b")
        hub.inc("alpha", "a")
        hub.inc("zeta", "a")
        snap = hub.snapshot()
        assert list(snap) == ["alpha", "zeta"]
        assert list(snap["zeta"]["counters"]) == ["a", "b"]

    def test_all_instrument_kinds(self):
        hub = MetricsHub()
        hub.configure()
        hub.inc("n", "c", 2)
        hub.set_gauge("n", "g", 4.0)
        hub.observe("n", "h", 0.5, [1.0])
        hub.inc_vec("n", "v", 7, label_key="channel")
        snap = hub.snapshot()["n"]
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"]["last"] == 4.0
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["vectors"]["v"] == {"label": "channel", "values": {"7": 1}}


class TestMergeSnapshots:
    def _snap(self, count, gauge, hist_value):
        hub = MetricsHub()
        hub.configure()
        hub.inc("n", "c", count)
        hub.set_gauge("n", "g", gauge)
        hub.observe("n", "h", hist_value, [1.0, 2.0])
        hub.inc_vec("n", "v", "a", count)
        return hub.snapshot()

    def test_counters_and_vectors_add(self):
        merged = merge_scope_snapshots([self._snap(1, 0, 0.5), self._snap(2, 0, 0.5)])
        assert merged["n"]["counters"]["c"] == 3
        assert merged["n"]["vectors"]["v"]["values"]["a"] == 3

    def test_gauges_keep_envelope_and_drop_last(self):
        merged = merge_scope_snapshots([self._snap(1, 3.0, 0.5), self._snap(1, 9.0, 0.5)])
        assert merged["n"]["gauges"]["g"] == {"last": None, "min": 3.0, "max": 9.0}

    def test_histograms_fold_bucketwise(self):
        merged = merge_scope_snapshots([self._snap(1, 0, 0.5), self._snap(1, 0, 1.5)])
        h = merged["n"]["histograms"]["h"]
        assert h["counts"] == [1, 1, 0]
        assert h["count"] == 2
        assert h["min"] == 0.5 and h["max"] == 1.5

    def test_bounds_mismatch_raises(self):
        a = self._snap(1, 0, 0.5)
        b = self._snap(1, 0, 0.5)
        b["n"]["histograms"]["h"]["bounds"] = [9.9]
        with pytest.raises(ValueError):
            merge_scope_snapshots([a, b])

    def test_disjoint_scopes_union(self):
        hub = MetricsHub()
        hub.configure()
        hub.inc("other", "x")
        merged = merge_scope_snapshots([self._snap(1, 0, 0.5), hub.snapshot()])
        assert list(merged) == ["n", "other"]
