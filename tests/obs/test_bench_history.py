"""The ``repro bench --append-history`` perf log.

The history file is the longitudinal counterpart of ``BENCH_metrics.json``:
one JSONL line per scenario per run, carrying the timestamp and git
revision the baseline document deliberately omits.  CI uploads it as an
artifact, so the format must stay append-only and line-parseable.
"""

import json

import pytest

import repro.obs.bench as bench_mod
from repro.obs.bench import (
    BENCH_HISTORY_SCHEMA,
    append_history,
    git_revision,
    history_lines,
    main,
)


def _doc(**eps) -> dict:
    return {
        "schema": bench_mod.BENCH_SCHEMA,
        "scenarios": {
            label: {
                "topology": label,
                "n_nodes": 4,
                "sim_time_s": 10.0,
                "events": 1000,
                "wall_s": 0.1,
                "events_per_wall_s": value,
                "sim_s_per_wall_s": 100.0,
            }
            for label, value in eps.items()
        },
    }


class TestHistoryLines:
    def test_one_line_per_scenario_sorted(self):
        lines = history_lines(_doc(tree=2.0, line=1.0), "default", "abc1234", 0.0)
        assert [ln["scenario"] for ln in lines] == ["line", "tree"]

    def test_line_fields(self):
        (line,) = history_lines(_doc(line=1234.5), "scale", "abc1234", 0.0)
        assert line == {
            "schema": BENCH_HISTORY_SCHEMA,
            "ts": "1970-01-01T00:00:00Z",
            "rev": "abc1234",
            "tier": "scale",
            "dispatch": "serial",
            "scenario": "line",
            "n_nodes": 4,
            "events": 1000,
            "wall_s": 0.1,
            "events_per_wall_s": 1234.5,
        }

    def test_timestamp_is_utc_iso(self):
        (line,) = history_lines(_doc(line=1.0), "default", "r", 1754600000.0)
        assert line["ts"] == "2025-08-07T20:53:20Z"


class TestAppendHistory:
    def test_appends_jsonl(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        assert append_history(path, _doc(line=1.0, tree=2.0), "default") == 2
        assert append_history(path, _doc(line=3.0), "default") == 1
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert len(lines) == 3
        assert all(ln["schema"] == BENCH_HISTORY_SCHEMA for ln in lines)
        # appends, never truncates: the first run's lines are still there
        assert lines[0]["events_per_wall_s"] == 1.0

    def test_git_revision_in_this_repo(self):
        rev = git_revision()
        assert rev  # short hash here, "unknown" outside a repo
        assert "\n" not in rev


class TestCliWiring:
    @pytest.fixture
    def canned_bench(self, monkeypatch):
        doc = _doc(line=800.0)
        monkeypatch.setattr(
            bench_mod,
            "run_bench",
            lambda tier="default", dispatch="serial", workers=1: doc,
        )
        return doc

    def test_append_history_flag(self, canned_bench, tmp_path, capsys):
        hist = tmp_path / "BENCH_history.jsonl"
        rc = main([
            "--out", str(tmp_path / "bench.json"),
            "--append-history", str(hist),
        ])
        assert rc == 0
        (line,) = [json.loads(ln) for ln in hist.read_text().splitlines()]
        assert line["scenario"] == "line"
        assert line["tier"] == "default"
        assert "history line(s) appended" in capsys.readouterr().out

    def test_no_flag_no_file(self, canned_bench, tmp_path):
        assert main(["--out", str(tmp_path / "bench.json")]) == 0
        assert not (tmp_path / "BENCH_history.jsonl").exists()

    def test_committed_history_parses(self):
        """The seeded BENCH_history.jsonl at the repo root stays valid."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_history.jsonl"
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert lines, "seed the history with one bench run"
        for line in lines:
            assert line["schema"] == BENCH_HISTORY_SCHEMA
            assert line["events_per_wall_s"] > 0
