"""Tests for metrics.json building/validation and Prometheus export."""

import json

import pytest

from repro.obs.export import (
    METRICS_SCHEMA,
    build_metrics_document,
    dumps_metrics_document,
    to_prometheus,
    validate_metrics_document,
)
from repro.obs.registry import MetricsHub


def _payload(requests=3, rtt=0.1, series=None):
    hub = MetricsHub()
    hub.configure()
    hub.inc("node1", "coap.requests", requests)
    hub.set_gauge("sim", "kernel.timer_queue_depth", 5)
    hub.observe("node1", "coap.rtt_seconds", rtt, [0.05, 0.2, 1.0])
    hub.inc_vec("node1", "ip.drops", "hop-limit", label_key="cause")
    return {"sim_time_ns": 1_000_000, "scopes": hub.snapshot(), "series": series}


class TestBuild:
    def test_single_run_keeps_series(self):
        series = {"times_ns": [10], "values": {"node1:coap.requests": [3]}}
        doc = build_metrics_document("e", [_payload(series=series)], seeds=[3])
        assert doc["schema"] == METRICS_SCHEMA
        assert doc["runs"] == 1
        assert doc["seeds"] == [3]
        assert doc["series"] == series
        validate_metrics_document(doc)

    def test_multi_run_merges_and_drops_series(self):
        series = {"times_ns": [10], "values": {}}
        doc = build_metrics_document(
            "e", [_payload(1, series=series), _payload(2, series=series)]
        )
        assert doc["runs"] == 2
        assert doc["sim_time_ns"] == 2_000_000
        assert "series" not in doc
        assert doc["scopes"]["node1"]["counters"]["coap.requests"] == 3
        validate_metrics_document(doc)

    def test_no_payloads_rejected(self):
        with pytest.raises(ValueError):
            build_metrics_document("e", [])
        with pytest.raises(ValueError):
            build_metrics_document("e", [None])


class TestDumps:
    def test_canonical_bytes(self):
        a = dumps_metrics_document(build_metrics_document("e", [_payload()]))
        b = dumps_metrics_document(build_metrics_document("e", [_payload()]))
        assert a == b
        assert a.endswith("\n")
        # sorted keys at every level
        doc = json.loads(a)
        assert list(doc) == sorted(doc)


class TestValidate:
    def test_wrong_schema_rejected(self):
        doc = build_metrics_document("e", [_payload()])
        doc["schema"] = "repro.obs/99"
        with pytest.raises(ValueError):
            validate_metrics_document(doc)

    def test_histogram_count_mismatch_rejected(self):
        doc = build_metrics_document("e", [_payload()])
        doc["scopes"]["node1"]["histograms"]["coap.rtt_seconds"]["count"] += 1
        with pytest.raises(ValueError):
            validate_metrics_document(doc)

    def test_missing_table_rejected(self):
        doc = build_metrics_document("e", [_payload()])
        del doc["scopes"]["node1"]["vectors"]
        with pytest.raises(ValueError):
            validate_metrics_document(doc)

    def test_ragged_series_rejected(self):
        series = {"times_ns": [10, 20], "values": {"x": [1]}}
        doc = build_metrics_document("e", [_payload(series=series)])
        with pytest.raises(ValueError):
            validate_metrics_document(doc)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            validate_metrics_document([])


class TestPrometheus:
    def test_exposition_lines(self):
        doc = build_metrics_document("e", [_payload()])
        text = to_prometheus(doc["scopes"])
        assert '# TYPE repro_coap_requests_total counter' in text
        assert 'repro_coap_requests_total{scope="node1"} 3' in text
        # histogram: cumulative buckets, +Inf, sum/count
        assert 'repro_coap_rtt_seconds_bucket{scope="node1",le="0.2"} 1' in text
        assert 'repro_coap_rtt_seconds_bucket{scope="node1",le="+Inf"} 1' in text
        assert 'repro_coap_rtt_seconds_count{scope="node1"} 1' in text
        # merged gauges keep only the envelope ("last" means nothing
        # across runs, so the merge drops it)
        assert 'repro_kernel_timer_queue_depth_min{scope="sim"} 5' in text
        assert 'repro_kernel_timer_queue_depth_max{scope="sim"} 5' in text
        # vector member with its label key
        assert (
            'repro_ip_drops_total{scope="node1",cause="hop-limit"} 1' in text
        )

    def test_type_lines_not_repeated_across_scopes(self):
        a, b = _payload(), _payload()
        b["scopes"]["node2"] = b["scopes"].pop("node1")
        doc = build_metrics_document("e", [a, b])
        text = to_prometheus(doc["scopes"])
        assert text.count("# TYPE repro_coap_requests_total counter") == 1
        assert 'repro_coap_requests_total{scope="node2"}' in text

    def test_unmerged_gauge_keeps_last_value(self):
        text = to_prometheus(_payload()["scopes"])
        assert 'repro_kernel_timer_queue_depth{scope="sim"} 5' in text

    def test_empty_scopes(self):
        assert to_prometheus({}) == ""
