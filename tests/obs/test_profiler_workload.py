"""Profiler attribution for workload dispatches and partial callbacks.

``repro.workload`` timers dispatch bound methods, which classify by their
``__module__`` like everything else; ``functools.partial`` objects do not
*have* a ``__module__``, so before the unwrap fix any partial-wrapped
callback fell into the catch-all bucket.  This file pins both paths.
"""

from functools import partial

from repro.obs.profiler import Profiler
from repro.workload.driver import WorkloadDriver


class TestWorkloadAttribution:
    def test_bound_workload_method_classifies_as_workload(self):
        profiler = Profiler()
        assert profiler.subsystem_of(WorkloadDriver.install) == "workload"

    def test_partial_of_workload_callable_classifies_as_workload(self):
        profiler = Profiler()
        wrapped = partial(WorkloadDriver.install, None)
        assert profiler.subsystem_of(wrapped) == "workload"

    def test_nested_partial_unwraps_to_the_innermost_callable(self):
        profiler = Profiler()
        wrapped = partial(partial(WorkloadDriver.install, None))
        assert profiler.subsystem_of(wrapped) == "workload"

    def test_record_attributes_partial_to_workload(self):
        profiler = Profiler()
        profiler.configure()
        try:
            profiler.record(partial(WorkloadDriver.install, None), 0.25)
        finally:
            profiler.reset()
        report = profiler.report(events=1)
        assert "workload" in report["subsystems"]
        assert report["subsystems"]["workload"]["events"] == 1

    def test_record_bulk_attributes_partial_to_workload(self):
        profiler = Profiler()
        profiler.configure()
        try:
            profiler.record_bulk(partial(WorkloadDriver.install, None), 7, 0.5)
        finally:
            profiler.reset()
        report = profiler.report(events=7)
        assert report["subsystems"]["workload"]["events"] == 7


class _UnhashableCallable:
    __hash__ = None  # type: ignore[assignment]

    def __call__(self) -> None:
        pass


class TestUnhashableCallables:
    def test_record_bulk_survives_unhashable_callback(self):
        profiler = Profiler()
        profiler.configure()
        try:
            profiler.record_bulk(_UnhashableCallable(), 3, 0.1)
        finally:
            profiler.reset()
        report = profiler.report(events=3)
        # classified fresh each call, but still accounted
        assert sum(
            row["events"] for row in report["subsystems"].values()
        ) == 3

    def test_record_survives_unhashable_callback(self):
        profiler = Profiler()
        profiler.configure()
        try:
            profiler.record(_UnhashableCallable(), 0.1)
        finally:
            profiler.reset()
        report = profiler.report(events=1)
        assert sum(
            row["events"] for row in report["subsystems"].values()
        ) == 1
