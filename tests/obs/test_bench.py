"""The ``repro bench`` regression gate (compare logic and CLI wiring).

The full bench run is exercised by CI; here the comparison gate is pinned
with canned documents, and the CLI is driven end-to-end with ``run_bench``
monkeypatched so the tests stay fast.
"""

import json

import pytest

import repro.obs.bench as bench_mod
from repro.obs.bench import (
    BENCH_SCHEMA,
    compare_documents,
    main,
    render_comparison,
    scenario_mismatches,
)


def _doc(**eps) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "scenarios": {
            label: {
                "topology": label,
                "n_nodes": 4,
                "sim_time_s": 10.0,
                "events": 1000,
                "wall_s": 0.1,
                "events_per_wall_s": value,
                "sim_s_per_wall_s": 100.0,
            }
            for label, value in eps.items()
        },
    }


class TestCompareDocuments:
    def test_no_regression_within_threshold(self):
        current = _doc(line=900.0, tree=1100.0)
        baseline = _doc(line=1000.0, tree=1000.0)
        assert compare_documents(current, baseline, 0.25) == []

    def test_regression_beyond_threshold(self):
        current = _doc(line=700.0)
        baseline = _doc(line=1000.0)
        problems = compare_documents(current, baseline, 0.25)
        assert len(problems) == 1
        assert "line" in problems[0] and "30.0%" in problems[0]

    def test_threshold_is_configurable(self):
        current = _doc(line=900.0)
        baseline = _doc(line=1000.0)
        assert compare_documents(current, baseline, 0.25) == []
        assert len(compare_documents(current, baseline, 0.05)) == 1

    def test_scenario_set_difference_is_not_a_regression(self):
        # set differences are the province of scenario_mismatches; the
        # regression check compares the intersection only
        current = _doc(line=1000.0, mesh=1.0)
        baseline = _doc(line=1000.0, tree=1.0)
        assert compare_documents(current, baseline, 0.25) == []

    def test_mismatch_baseline_scenario_missing_from_current(self):
        problems = scenario_mismatches(_doc(line=1.0), _doc(line=1.0, tree=1.0))
        assert len(problems) == 1
        assert problems[0].startswith("tree: present in baseline")

    def test_mismatch_current_scenario_missing_from_baseline(self):
        problems = scenario_mismatches(_doc(line=1.0, mesh=1.0), _doc(line=1.0))
        assert len(problems) == 1
        assert problems[0].startswith("mesh: present in current run")

    def test_mismatch_both_directions_reported(self):
        problems = scenario_mismatches(_doc(mesh=1.0), _doc(tree=1.0))
        assert len(problems) == 2

    def test_identical_scenario_sets_are_clean(self):
        assert scenario_mismatches(_doc(line=1.0), _doc(line=2.0)) == []

    def test_render_comparison_shows_ratio(self):
        text = render_comparison(_doc(line=2000.0), _doc(line=1000.0))
        assert "2.00x" in text


class TestBenchCli:
    @pytest.fixture
    def canned_bench(self, monkeypatch):
        doc = _doc(line=800.0, tree=2000.0, mesh=2000.0)
        monkeypatch.setattr(
            bench_mod,
            "run_bench",
            lambda tier="default", dispatch="serial", workers=1: doc,
        )
        return doc

    def test_writes_out_document(self, canned_bench, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["--out", str(out)]) == 0
        assert json.loads(out.read_text()) == canned_bench
        assert "events/sec" in capsys.readouterr().out

    def test_compare_fails_on_regression(self, canned_bench, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc(line=2000.0, tree=2000.0, mesh=2000.0)))
        out = tmp_path / "bench.json"
        rc = main(["--out", str(out), "--compare", str(baseline)])
        assert rc == 1
        assert "REGRESSION: line" in capsys.readouterr().out

    def test_warn_only_reports_but_passes(self, canned_bench, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc(line=2000.0)))
        rc = main([
            "--out", str(tmp_path / "bench.json"),
            "--compare", str(baseline), "--warn-only",
        ])
        assert rc == 0
        output = capsys.readouterr().out
        assert "REGRESSION" in output and "warn-only" in output

    def test_compare_baseline_may_equal_out_path(self, canned_bench, tmp_path):
        path = tmp_path / "BENCH_metrics.json"
        path.write_text(json.dumps(_doc(line=820.0, tree=2000.0, mesh=2000.0)))
        rc = main(["--out", str(path), "--compare", str(path)])
        assert rc == 0  # baseline read before the rewrite
        assert json.loads(path.read_text()) == canned_bench

    def test_baseline_missing_scenario_exits_2(self, canned_bench, tmp_path, capsys):
        # current (line/tree/mesh) has scenarios the baseline lacks
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc(line=800.0, tree=2000.0)))
        rc = main(["--out", str(tmp_path / "b.json"), "--compare", str(baseline)])
        assert rc == 2
        out = capsys.readouterr().out
        assert "MISMATCH: mesh: present in current run" in out

    def test_current_missing_scenario_exits_2(self, canned_bench, tmp_path, capsys):
        # baseline has a scenario the current run lacks (tier mixup)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(_doc(line=800.0, tree=2000.0, mesh=2000.0, scale500=1.0))
        )
        rc = main(["--out", str(tmp_path / "b.json"), "--compare", str(baseline)])
        assert rc == 2
        out = capsys.readouterr().out
        assert "MISMATCH: scale500: present in baseline" in out

    def test_custom_threshold(self, canned_bench, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(_doc(line=1000.0, tree=2000.0, mesh=2000.0)))
        args = ["--out", str(tmp_path / "b.json"), "--compare", str(baseline)]
        assert main(args) == 0  # 20% drop passes the default 25%
        assert main(args + ["--threshold", "0.1"]) == 1
