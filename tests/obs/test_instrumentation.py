"""End-to-end metrics collection: determinism, accuracy, disabled-path.

The acceptance bars of the observability issue:

* ``metrics.json`` for the golden 2-node and 3-hop scenarios is
  byte-identical whether the repetitions ran in-process or sharded across
  worker processes.
* The streaming CoAP RTT histogram's p50/p99 agree with an exact
  percentile over the raw RTT samples to within one bucket width.
* With metrics disabled (the default), runs carry no payload and the
  global hub stays untouched.
"""

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.metrics import percentile
from repro.exp.parallel import ParallelEngine
from repro.exp.repeat import repetition_configs
from repro.exp.runner import run_experiment
from repro.obs.export import build_metrics_document, dumps_metrics_document
from repro.obs.registry import METRICS, RTT_BUCKETS_S, Histogram

TWO_NODE = dict(
    topology="line", n_nodes=2,
    duration_s=10.0, warmup_s=2.0, drain_s=1.0, sample_period_s=5.0,
)
THREE_HOP = dict(
    topology="line", n_nodes=4,
    duration_s=10.0, warmup_s=3.0, drain_s=2.0, sample_period_s=5.0,
)


def _document_bytes(scenario: dict, max_workers: int) -> str:
    cfg = ExperimentConfig(name="g", seed=5, metrics=True, **scenario)
    configs = repetition_configs(cfg, 2)
    engine = ParallelEngine(max_workers=max_workers)
    outcomes = engine.run(configs)
    assert all(o.ok for o in outcomes)
    doc = build_metrics_document(
        cfg.name,
        [o.result.metrics for o in outcomes],
        seeds=[c.seed for c in configs],
    )
    return dumps_metrics_document(doc)


class TestDeterminism:
    @pytest.mark.parametrize("scenario", [TWO_NODE, THREE_HOP],
                             ids=["2-node", "3-hop"])
    def test_document_bytes_identical_across_worker_counts(self, scenario):
        assert _document_bytes(scenario, 1) == _document_bytes(scenario, 2)


class TestAccuracy:
    @pytest.fixture(scope="class")
    def metered(self):
        return run_experiment(
            ExperimentConfig(name="m", seed=9, metrics=True, **THREE_HOP)
        )

    def _rtt_histogram(self, result) -> Histogram:
        merged = None
        for registry in result.metrics["scopes"].values():
            snap = registry["histograms"].get("coap.rtt_seconds")
            if snap is None:
                continue
            hist = Histogram.from_dict(snap)
            if merged is None:
                merged = hist
            else:
                merged.merge(hist)
        assert merged is not None
        return merged

    def test_histogram_count_matches_raw_samples(self, metered):
        hist = self._rtt_histogram(metered)
        assert hist.count == len(metered.rtts_s())

    @pytest.mark.parametrize("q", [0.50, 0.99])
    def test_percentiles_within_one_bucket_width(self, metered, q):
        raw = metered.rtts_s()
        assert raw
        exact = percentile(raw, q)
        approx = self._rtt_histogram(metered).percentile(q)
        widths = [
            hi - lo
            for lo, hi in zip((0.0,) + RTT_BUCKETS_S, RTT_BUCKETS_S)
            if lo <= exact <= hi or lo <= approx <= hi
        ]
        assert abs(approx - exact) <= max(widths)

    def test_expected_instruments_present(self, metered):
        scopes = metered.metrics["scopes"]
        assert scopes["sim"]["counters"]["kernel.events_dispatched"] > 0
        # the last hop's producer originates packets; the sink delivers
        assert scopes["node3"]["counters"]["ip.originated"] > 0
        assert scopes["node0"]["counters"]["ip.delivered"] > 0
        assert scopes["node0"]["counters"]["ble.conn_events_served"] > 0
        assert scopes["node0"]["counters"]["radio.claims"] > 0
        assert scopes["phy"]["counters"]["phy.packets_sampled"] > 0
        assert "ble.pdus_by_channel" in scopes["node0"]["vectors"]
        # the shading gauges ride along even when nothing is degraded
        assert "shading.links_degraded" in scopes["obs"]["gauges"]

    def test_series_covers_the_run(self, metered):
        series = metered.metrics["series"]
        assert series["times_ns"] == sorted(series["times_ns"])
        # final partial window: the last sample sits at the horizon
        assert series["times_ns"][-1] == metered.metrics["sim_time_ns"]
        dispatched = series["values"]["sim:kernel.events_dispatched"]
        assert dispatched == sorted(dispatched)


class TestDisabledPath:
    def test_default_run_has_no_payload_and_hub_stays_idle(self):
        result = run_experiment(
            ExperimentConfig(name="off", seed=5, **TWO_NODE)
        )
        assert result.metrics is None
        assert METRICS.enabled is False
        assert METRICS.snapshot() == {}

    def test_metered_run_resets_the_hub_afterwards(self):
        result = run_experiment(
            ExperimentConfig(name="on", seed=5, metrics=True, **TWO_NODE)
        )
        assert result.metrics is not None
        assert METRICS.enabled is False
        assert METRICS.snapshot() == {}
