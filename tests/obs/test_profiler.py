"""Tests for the wall-clock profiler and its subsystem attribution."""

import pytest

from repro.obs.profiler import Profiler
from repro.ble.conn import Connection
from repro.exp.runner import ExperimentRunner


class TestAttribution:
    def test_repro_modules_map_to_second_segment(self):
        p = Profiler()
        assert p.subsystem_of(Connection.close) == "ble"
        assert p.subsystem_of(ExperimentRunner.run) == "exp"

    def test_bound_methods_share_the_cache_entry(self):
        p = Profiler()
        log = []
        a, b = log.append, log.append
        assert p.subsystem_of(a) == p.subsystem_of(b)

    def test_non_repro_module_falls_back_to_first_segment(self):
        p = Profiler()
        import json

        assert p.subsystem_of(json.dumps) == "json"

    def test_unhashable_callable_is_classified_every_time(self):
        class Weird(list):
            __module__ = "repro.phy.medium"

            __hash__ = None

            def __call__(self):
                pass

        p = Profiler()
        assert p.subsystem_of(Weird()) == "phy"
        assert p._cache == {}


class TestRecordAndReport:
    def test_disabled_by_default(self):
        assert Profiler().enabled is False

    def test_configure_clears_and_reset_disarms(self):
        p = Profiler()
        p.configure()
        assert p.enabled
        p.record(Connection.close, 0.5)
        p.reset()
        assert not p.enabled
        # data stays readable after reset
        assert p.report()["subsystems"]["ble"]["events"] == 1
        p.configure()
        assert p.report()["subsystems"] == {}

    def test_report_shares_and_ordering(self):
        p = Profiler()
        p.configure()
        p.record(Connection.close, 0.3)
        p.record(Connection.close, 0.3)
        p.record(ExperimentRunner.run, 0.4)
        report = p.report()
        assert report["schema"] == "repro.obs.profile/1"
        assert report["events"] == 3
        subsystems = report["subsystems"]
        assert list(subsystems) == ["ble", "exp"]  # sorted by wall desc
        assert subsystems["ble"]["share"] == pytest.approx(0.6)
        assert report["dispatch_wall_s"] == pytest.approx(1.0)
        assert report["wall_s"] > 0

    def test_report_with_sim_time(self):
        p = Profiler()
        p.configure()
        report = p.report(sim_time_ns=2_000_000_000, events=10)
        assert report["sim_time_ns"] == 2_000_000_000
        assert report["events"] == 10
        assert report["sim_s_per_wall_s"] > 0
