"""Tests for the wall-clock profiler and its subsystem attribution."""

import pytest

from repro.obs.profiler import BARRIER_BUCKET, BARRIER_BUCKETS_S, Profiler
from repro.ble.conn import Connection
from repro.exp.runner import ExperimentRunner


class TestAttribution:
    def test_repro_modules_map_to_second_segment(self):
        p = Profiler()
        assert p.subsystem_of(Connection.close) == "ble"
        assert p.subsystem_of(ExperimentRunner.run) == "exp"

    def test_bound_methods_share_the_cache_entry(self):
        p = Profiler()
        log = []
        a, b = log.append, log.append
        assert p.subsystem_of(a) == p.subsystem_of(b)

    def test_non_repro_module_falls_back_to_first_segment(self):
        p = Profiler()
        import json

        assert p.subsystem_of(json.dumps) == "json"

    def test_unhashable_callable_is_classified_every_time(self):
        class Weird(list):
            __module__ = "repro.phy.medium"

            __hash__ = None

            def __call__(self):
                pass

        p = Profiler()
        assert p.subsystem_of(Weird()) == "phy"
        assert p._cache == {}


class TestRecordAndReport:
    def test_disabled_by_default(self):
        assert Profiler().enabled is False

    def test_configure_clears_and_reset_disarms(self):
        p = Profiler()
        p.configure()
        assert p.enabled
        p.record(Connection.close, 0.5)
        p.reset()
        assert not p.enabled
        # data stays readable after reset
        assert p.report()["subsystems"]["ble"]["events"] == 1
        p.configure()
        assert p.report()["subsystems"] == {}

    def test_report_shares_and_ordering(self):
        p = Profiler()
        p.configure()
        p.record(Connection.close, 0.3)
        p.record(Connection.close, 0.3)
        p.record(ExperimentRunner.run, 0.4)
        report = p.report()
        assert report["schema"] == "repro.obs.profile/1"
        assert report["events"] == 3
        subsystems = report["subsystems"]
        assert list(subsystems) == ["ble", "exp"]  # sorted by wall desc
        assert subsystems["ble"]["share"] == pytest.approx(0.6)
        assert report["dispatch_wall_s"] == pytest.approx(1.0)
        assert report["wall_s"] > 0

    def test_report_with_sim_time(self):
        p = Profiler()
        p.configure()
        report = p.report(sim_time_ns=2_000_000_000, events=10)
        assert report["sim_time_ns"] == 2_000_000_000
        assert report["events"] == 10
        assert report["sim_s_per_wall_s"] > 0


class TestBarrierAttribution:
    """Lookahead barrier time must land in its own ``kernel.barrier``
    bucket -- never smeared into the subsystem of the last callback that
    happened to run in the window."""

    def test_barrier_lands_in_dedicated_bucket(self):
        p = Profiler()
        p.configure()
        p.record(Connection.close, 0.3)  # the window's last callback: ble
        p.record_barrier(0.001)
        subsystems = p.report()["subsystems"]
        assert subsystems[BARRIER_BUCKET]["events"] == 1
        assert subsystems[BARRIER_BUCKET]["wall_s"] == pytest.approx(0.001)
        assert subsystems["ble"]["wall_s"] == pytest.approx(0.3)

    def test_barrier_counts_toward_dispatch_share(self):
        p = Profiler()
        p.configure()
        p.record(Connection.close, 0.075)
        p.record_barrier(0.025)
        subsystems = p.report()["subsystems"]
        assert subsystems[BARRIER_BUCKET]["share"] == pytest.approx(0.25)

    def test_barrier_feeds_stall_histogram(self):
        p = Profiler()
        p.configure()
        p.record_barrier(2e-6)   # second bucket (1us < x <= 2.5us)
        p.record_barrier(3e-3)   # 2.5ms < x <= 5ms
        p.record_barrier(5.0)    # overflow: beyond the last bound
        p.record_window(lanes=2, lane_events={"cluster1": 3})
        hist = p.report()["dispatch"]["barrier_stall"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(2e-6 + 3e-3 + 5.0)
        assert tuple(hist["bounds"]) == BARRIER_BUCKETS_S
        # bucket counts: one per observed stall, in the right bucket
        assert hist["counts"][1] == 1
        assert hist["counts"][-1] == 1  # the +inf overflow bucket

    def test_window_stats_gate_the_dispatch_section(self):
        p = Profiler()
        p.configure()
        assert "dispatch" not in p.report()  # serial run: section absent
        p.record_window(lanes=3, lane_events={"cluster1": 5, "global": 1})
        p.record_window(lanes=1, lane_events={"cluster1": 2})
        dispatch = p.report()["dispatch"]
        assert dispatch["windows"] == 2
        assert dispatch["parallelism"] == {"mean": 2.0, "max": 3}
        assert dispatch["lane_events"] == {"cluster1": 7, "global": 1}

    def test_configure_clears_dispatch_stats(self):
        p = Profiler()
        p.configure()
        p.record_barrier(0.001)
        p.record_window(lanes=2, lane_events={"cluster1": 1})
        p.configure()
        report = p.report()
        assert "dispatch" not in report
        assert BARRIER_BUCKET not in report["subsystems"]
