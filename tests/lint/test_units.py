"""The SL007 unit lattice: inference, idioms, and API crossings."""

import textwrap

from repro.lint import lint_source
from repro.lint.rules import UnitMixRule


def sl007(src, module="m"):
    findings = lint_source(
        textwrap.dedent(src), "m.py", module=module, rules=[UnitMixRule()]
    )
    return [f for f in findings if f.code == "SL007"]


class TestArithmeticMixes:
    def test_cross_unit_add_fires(self):
        assert sl007("def f(t_ns, d_ms):\n    return t_ns + d_ms\n")

    def test_cross_unit_compare_fires(self):
        assert sl007("def f(t_ns, d_s):\n    return t_ns > d_s\n")

    def test_same_unit_add_is_clean(self):
        assert not sl007("def f(a_ns, b_ns):\n    return a_ns + b_ns\n")

    def test_unitless_plus_unit_is_clean(self):
        assert not sl007("def f(t_ns):\n    return t_ns + 5\n")

    def test_cross_unit_augmented_assignment_fires(self):
        assert sl007("def f(t_ns, d_us):\n    t_ns += d_us\n    return t_ns\n")


class TestConversionIdioms:
    def test_scale_product_from_literal_is_ns(self):
        # 150 * USEC is the conversion idiom; assigning it to _ns is clean.
        assert not sl007(
            """
            from repro.sim.units import USEC

            def f():
                t_ns = 150 * USEC
                return t_ns
            """
        )

    def test_count_times_matching_scale_is_ns(self):
        # window_s * SEC converts a second count to ns.
        assert not sl007(
            """
            from repro.sim.units import SEC

            def f(window_s, start_ns):
                return start_ns + round(window_s * SEC)
            """
        )

    def test_count_times_wrong_scale_fires(self):
        assert sl007(
            """
            from repro.sim.units import MSEC

            def f(window_s):
                t_ns = window_s * MSEC
                return t_ns
            """
        )

    def test_ratio_division_is_unitless(self):
        assert not sl007("def f(t_ns, span_ns):\n    frac = t_ns / span_ns\n    return frac\n")

    def test_converter_functions_change_unit(self):
        assert not sl007(
            """
            from repro.sim.units import ns_to_s

            def f(t_ns, wall_s):
                return ns_to_s(t_ns) / wall_s
            """
        )

    def test_shadowed_scale_name_is_not_a_conversion(self):
        # a local SEC that doesn't resolve to repro.sim.units is untyped.
        assert not sl007(
            """
            SEC = "label"

            def f(window_s):
                return window_s, SEC
            """
        )


class TestBindings:
    def test_suffix_violating_assignment_fires(self):
        assert sl007("def f(anchor_ns):\n    t_ms = anchor_ns\n    return t_ms\n")

    def test_return_suffix_mismatch_fires(self):
        assert sl007("def elapsed_ms(t_ns):\n    return t_ns\n")

    def test_return_matching_suffix_clean(self):
        assert not sl007("def elapsed_ns(t_ns):\n    return t_ns\n")


class TestApiCrossings:
    def test_cross_suffix_argument_fires(self):
        assert sl007(
            """
            def sink(delay_ms):
                return delay_ms

            def f(x_us):
                return sink(x_us)
            """
        )

    def test_keyword_argument_checked(self):
        assert sl007(
            """
            def sink(delay_ms=0):
                return delay_ms

            def f(x_us):
                return sink(delay_ms=x_us)
            """
        )

    def test_public_api_unit_erasure_fires(self):
        assert sl007(
            """
            def api(delay):
                return delay

            def f(x_us):
                return api(x_us)
            """
        )

    def test_private_helper_erasure_silent(self):
        assert not sl007(
            """
            def _api(delay):
                return delay

            def f(x_us):
                return _api(x_us)
            """
        )

    def test_sequence_parameter_is_aggregation_boundary(self):
        # mean(rtts_s) must not flag: Sequence params are unit-polymorphic.
        assert not sl007(
            """
            from typing import Sequence

            def mean(samples: Sequence[float]) -> float:
                return sum(samples) / len(samples)

            def f(rtts_s):
                return mean(rtts_s)
            """
        )


class TestScoping:
    def test_units_module_is_allowlisted(self):
        src = "def f(t_ns, d_ms):\n    return t_ns + d_ms\n"
        assert not sl007(src, module="repro.sim.units")

    def test_suppression_silences(self):
        assert not sl007(
            "def f(t_ns, d_ms):\n"
            "    return t_ns + d_ms  # simlint: allow-unit-mix -- test sanction\n"
        )
