"""The project symbol table and call graph under simlint 2.0."""

import ast
import textwrap
from pathlib import Path

from repro.lint.core import FileContext
from repro.lint.graph import EDGE_CALL, EDGE_PARTIAL, EDGE_REF, Project


def ctx_for(module, source):
    source = textwrap.dedent(source)
    return FileContext(
        path=Path(f"{module.replace('.', '/')}.py"),
        module=module,
        source=source,
        lines=source.splitlines(),
        tree=ast.parse(source),
    )


def project_of(**modules):
    return Project.from_contexts([ctx_for(m, s) for m, s in modules.items()])


class TestSymbolTable:
    def test_functions_classes_and_methods_are_indexed(self):
        p = project_of(
            m="""
            def f():
                pass

            class C:
                def meth(self):
                    pass
            """
        )
        assert "m.f" in p.functions
        assert "m.C" in p.classes
        assert p.classes["m.C"].methods["meth"] == "m.C.meth"

    def test_self_and_cls_stripped_from_params(self):
        p = project_of(
            m="""
            class C:
                def meth(self, a, b):
                    pass
            """
        )
        assert p.functions["m.C.meth"].params == ["a", "b"]

    def test_sequence_annotated_params_recorded(self):
        p = project_of(
            m="""
            from typing import Sequence

            def mean(samples: Sequence[float], scale: float):
                pass
            """
        )
        assert p.functions["m.mean"].seq_params == frozenset({"samples"})


class TestCallResolution:
    def test_local_and_imported_calls_resolve(self):
        p = project_of(
            a="""
            def helper():
                pass

            def caller():
                helper()
            """,
            b="""
            from a import helper

            def other():
                helper()
            """,
        )
        assert [c.callee for c in p.functions["a.caller"].calls] == ["a.helper"]
        assert [c.callee for c in p.functions["b.other"].calls] == ["a.helper"]

    def test_self_method_dispatch_resolves_through_mro(self):
        p = project_of(
            m="""
            class Base:
                def tick(self):
                    pass

            class Child(Base):
                def run(self):
                    self.tick()
            """
        )
        assert [c.callee for c in p.functions["m.Child.run"].calls] == ["m.Base.tick"]

    def test_typed_local_method_dispatch(self):
        p = project_of(
            m="""
            class Conn:
                def poll(self):
                    pass

            def drive():
                c = Conn()
                c.poll()
            """
        )
        callees = {c.callee for c in p.functions["m.drive"].calls}
        assert "m.Conn.poll" in callees

    def test_partial_creates_partial_edge(self):
        p = project_of(
            m="""
            import functools

            def target():
                pass

            def maker():
                return functools.partial(target, 1)
            """
        )
        edges = [(c.callee, c.kind) for c in p.functions["m.maker"].calls]
        assert ("m.target", EDGE_PARTIAL) in edges

    def test_partial_bound_local_call_resolves_to_wrapped(self):
        p = project_of(
            m="""
            import functools

            def target():
                pass

            def caller():
                cb = functools.partial(target)
                cb()
            """
        )
        kinds = {(c.callee, c.kind) for c in p.functions["m.caller"].calls}
        assert ("m.target", EDGE_CALL) in kinds

    def test_bare_reference_argument_is_ref_edge(self):
        p = project_of(
            m="""
            def callback():
                pass

            def register(sim):
                sim.at(5, callback)
            """
        )
        edges = [(c.callee, c.kind) for c in p.functions["m.register"].calls]
        assert ("m.callback", EDGE_REF) in edges

    def test_external_calls_keep_dotted_path(self):
        p = project_of(
            m="""
            import time

            def f():
                return time.time()
            """
        )
        assert [c.callee for c in p.functions["m.f"].calls] == ["time.time"]

    def test_callers_of_is_sorted_and_complete(self):
        p = project_of(
            m="""
            def helper():
                pass

            def a():
                helper()

            def b():
                helper()
            """
        )
        callers = [fn.qualname for fn, _ in p.callers_of("m.helper")]
        assert callers == ["m.a", "m.b"]


class TestReturnsSet:
    def test_set_literal_and_annotation(self):
        p = project_of(
            m="""
            def lit():
                return {1, 2}

            def ann() -> set:
                return build()

            def build():
                return set()
            """
        )
        assert p.functions["m.lit"].returns_set
        assert p.functions["m.ann"].returns_set
        assert p.functions["m.build"].returns_set


class TestDeterminism:
    def test_analysis_memoised_once(self):
        p = project_of(m="def f():\n    pass\n")
        calls = []
        p.analysis("k", lambda: calls.append(1) or "v")
        p.analysis("k", lambda: calls.append(1) or "v")
        assert calls == [1]
