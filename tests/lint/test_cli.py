"""``python -m repro lint``: exit codes, output formats, baseline flags."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_lint(*args: str, cwd: Path = REPO) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestExitCodes:
    def test_repo_with_empty_baseline_exits_zero(self, tmp_path):
        baseline = tmp_path / "empty-baseline"
        baseline.write_text("")
        proc = run_lint("--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_each_fixture_exits_nonzero(self):
        for fixture in sorted(FIXTURES.glob("sl*.py")):
            proc = run_lint(str(fixture))
            assert proc.returncode == 1, f"{fixture.name}: {proc.stdout}"

    def test_missing_path_exits_two(self):
        proc = run_lint("does/not/exist.py")
        assert proc.returncode == 2

    def test_missing_baseline_file_exits_two(self):
        proc = run_lint(str(FIXTURES), "--baseline", "no-such-baseline.json")
        assert proc.returncode == 2


class TestFormats:
    def test_json_format_is_parseable(self):
        proc = run_lint(str(FIXTURES), "--format=json")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["schema"] == "repro.lint.report/1"
        found = {f["code"] for f in doc["findings"]}
        assert found == {"SL001", "SL002", "SL003", "SL004", "SL005", "SL006"}
        for finding in doc["findings"]:
            assert finding["fingerprint"]
            assert finding["line"] >= 1

    def test_text_format_names_rule_and_location(self):
        proc = run_lint(str(FIXTURES / "sl001_wallclock.py"))
        assert "SL001" in proc.stdout
        assert "sl001_wallclock.py:" in proc.stdout

    def test_list_rules(self):
        proc = run_lint("--list-rules")
        assert proc.returncode == 0
        for code in ("SL001", "SL002", "SL003", "SL004", "SL005", "SL006"):
            assert code in proc.stdout


class TestBaselineFlags:
    def test_write_baseline_then_lint_exits_zero(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        wrote = run_lint(
            str(FIXTURES), "--baseline", str(baseline), "--write-baseline"
        )
        assert wrote.returncode == 0
        assert baseline.exists()
        relint = run_lint(str(FIXTURES), "--baseline", str(baseline))
        assert relint.returncode == 0, relint.stdout
        assert "baselined" in relint.stdout

    def test_new_finding_beats_stale_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        only_one = run_lint(
            str(FIXTURES / "sl001_wallclock.py"),
            "--baseline",
            str(baseline),
            "--write-baseline",
        )
        assert only_one.returncode == 0
        # the baseline grandfathers SL001 but not the SL002 fixture
        proc = run_lint(
            str(FIXTURES / "sl001_wallclock.py"),
            str(FIXTURES / "sl002_rng.py"),
            "--baseline",
            str(baseline),
        )
        assert proc.returncode == 1
        assert "SL002" in proc.stdout
        assert "SL001" not in proc.stdout
