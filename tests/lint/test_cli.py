"""``python -m repro lint``: exit codes, output formats, baseline flags."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def run_lint(*args: str, cwd: Path = REPO) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestExitCodes:
    def test_repo_with_empty_baseline_exits_zero(self, tmp_path):
        baseline = tmp_path / "empty-baseline"
        baseline.write_text("")
        proc = run_lint("--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_each_fixture_exits_nonzero(self):
        for fixture in sorted(FIXTURES.glob("sl*.py")):
            proc = run_lint(str(fixture))
            assert proc.returncode == 1, f"{fixture.name}: {proc.stdout}"

    def test_missing_path_exits_two(self):
        proc = run_lint("does/not/exist.py")
        assert proc.returncode == 2

    def test_missing_baseline_file_exits_two(self):
        proc = run_lint(str(FIXTURES), "--baseline", "no-such-baseline.json")
        assert proc.returncode == 2


class TestFormats:
    def test_json_format_is_parseable(self):
        proc = run_lint(str(FIXTURES), "--format=json")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["schema"] == "repro.lint.report/1"
        found = {f["code"] for f in doc["findings"]}
        assert found == {f"SL00{i}" for i in range(1, 10)}
        for finding in doc["findings"]:
            assert finding["fingerprint"]
            assert finding["line"] >= 1

    def test_text_format_names_rule_and_location(self):
        proc = run_lint(str(FIXTURES / "sl001_wallclock.py"))
        assert "SL001" in proc.stdout
        assert "sl001_wallclock.py:" in proc.stdout

    def test_list_rules(self):
        proc = run_lint("--list-rules")
        assert proc.returncode == 0
        for i in range(1, 10):
            assert f"SL00{i}" in proc.stdout

    def test_sarif_format_is_valid(self):
        proc = run_lint(str(FIXTURES / "sl001_wallclock.py"), "--format=sarif")
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == {f"SL00{i}" for i in range(1, 10)}
        result = run["results"][0]
        assert result["ruleId"] == "SL001"
        assert result["partialFingerprints"]["simlint/v1"]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1

    def test_sarif_on_clean_tree_has_empty_results(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        proc = run_lint(str(clean), "--format=sarif")
        assert proc.returncode == 0
        assert json.loads(proc.stdout)["runs"][0]["results"] == []


class TestExplain:
    def test_every_rule_has_an_explain_page(self):
        for i in range(1, 10):
            code = f"SL00{i}"
            proc = run_lint("--explain", code)
            assert proc.returncode == 0, proc.stderr
            assert code in proc.stdout
            for section in ("Why", "Example", "Fix"):
                assert section in proc.stdout, f"{code} page missing {section}"

    def test_explain_accepts_aliases_case_insensitively(self):
        by_code = run_lint("--explain", "sl003")
        by_alias = run_lint("--explain", "set-order")
        assert by_code.returncode == by_alias.returncode == 0
        assert by_code.stdout == by_alias.stdout

    def test_unknown_rule_exits_two(self):
        proc = run_lint("--explain", "SL099")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr


class TestSharedStateReport:
    def test_stdout_report_is_pure_json(self):
        proc = run_lint(str(FIXTURES / "sl009_shared.py"), "--shared-state-report", "-")
        assert proc.returncode == 0
        doc = json.loads(proc.stdout)
        assert doc["schema"] == "repro.lint.shared-state/1"
        assert any(e["qualname"].endswith("_ROUTE_CACHE") for e in doc["globals"])

    def test_file_report_coexists_with_findings(self, tmp_path):
        report = tmp_path / "shared.json"
        proc = run_lint(
            str(FIXTURES / "sl009_shared.py"), "--shared-state-report", str(report)
        )
        assert proc.returncode == 1  # the fixture still fails the lint
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro.lint.shared-state/1"


class TestCache:
    def test_warm_run_is_identical(self, tmp_path):
        cache = tmp_path / "lint-cache.json"
        cold = run_lint(str(FIXTURES / "sl001_wallclock.py"), "--cache", str(cache))
        assert cache.exists()
        warm = run_lint(str(FIXTURES / "sl001_wallclock.py"), "--cache", str(cache))
        assert (cold.returncode, cold.stdout) == (warm.returncode, warm.stdout)

    def test_source_change_invalidates_cache(self, tmp_path):
        target = tmp_path / "t.py"
        target.write_text("X = 1\n")
        cache = tmp_path / "lint-cache.json"
        clean = run_lint(str(target), "--cache", str(cache))
        assert clean.returncode == 0
        target.write_text("import time\n\nT = time.time()\n")
        dirty = run_lint(str(target), "--cache", str(cache))
        assert dirty.returncode == 1
        assert "SL001" in dirty.stdout


class TestBaselineFlags:
    def test_write_baseline_then_lint_exits_zero(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        wrote = run_lint(
            str(FIXTURES), "--baseline", str(baseline), "--write-baseline"
        )
        assert wrote.returncode == 0
        assert baseline.exists()
        relint = run_lint(str(FIXTURES), "--baseline", str(baseline))
        assert relint.returncode == 0, relint.stdout
        assert "baselined" in relint.stdout

    def test_new_finding_beats_stale_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        only_one = run_lint(
            str(FIXTURES / "sl001_wallclock.py"),
            "--baseline",
            str(baseline),
            "--write-baseline",
        )
        assert only_one.returncode == 0
        # the baseline grandfathers SL001 but not the SL002 fixture
        proc = run_lint(
            str(FIXTURES / "sl001_wallclock.py"),
            str(FIXTURES / "sl002_rng.py"),
            "--baseline",
            str(baseline),
        )
        assert proc.returncode == 1
        assert "SL002" in proc.stdout
        assert "SL001" not in proc.stdout
