"""Per-rule behaviour of the simlint pass.

The fixture files under ``fixtures/`` are the acceptance contract: each
contains exactly one violation of exactly one rule, and linting it must
produce that rule's code and nothing else.  The inline-source tests pin
the sharper edges of every rule (what must fire, what must stay silent).
"""

from pathlib import Path

import pytest

from repro.lint import lint_path, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

FIXTURE_CASES = [
    ("sl001_wallclock.py", "SL001"),
    ("sl001_launder.py", "SL001"),
    ("sl002_rng.py", "SL002"),
    ("sl002_launder.py", "SL002"),
    ("sl003_setiter.py", "SL003"),
    ("sl003_setcall.py", "SL003"),
    ("sl004_floattime.py", "SL004"),
    ("sl005_env.py", "SL005"),
    ("sl005_launder.py", "SL005"),
    ("sl006_magic.py", "SL006"),
    ("sl007_units.py", "SL007"),
    ("sl008_unguarded.py", "SL008"),
    ("sl009_shared.py", "SL009"),
]

#: fixtures that must lint CLEAN: regression guards for false positives
#: the interprocedural upgrade could have introduced.
CLEAN_FIXTURES = ["clean_sorted_sets.py"]


def codes(findings):
    return sorted({f.code for f in findings})


class TestFixtures:
    @pytest.mark.parametrize("filename,expected", FIXTURE_CASES)
    def test_each_fixture_fires_exactly_its_rule(self, filename, expected):
        findings = lint_path(FIXTURES / filename)
        assert codes(findings) == [expected], [f.render() for f in findings]

    @pytest.mark.parametrize("filename,expected", FIXTURE_CASES)
    def test_findings_carry_location_and_text(self, filename, expected):
        for finding in lint_path(FIXTURES / filename):
            assert finding.line >= 1
            assert finding.text, "finding should quote the offending line"
            assert finding.severity == "error"

    @pytest.mark.parametrize("filename", CLEAN_FIXTURES)
    def test_clean_fixtures_stay_clean(self, filename):
        findings = lint_path(FIXTURES / filename)
        assert findings == [], [f.render() for f in findings]


class TestWallclockRule:
    def test_datetime_now_fires(self):
        src = "from datetime import datetime\n\nT0 = datetime.now()\n"
        assert "SL001" in codes(lint_source(src, "x.py"))

    def test_from_import_and_call_both_fire(self):
        src = "from time import perf_counter\n\nt = perf_counter()\n"
        findings = [f for f in lint_source(src, "x.py") if f.code == "SL001"]
        assert len(findings) == 2  # the import and the call

    def test_profiler_module_is_allowlisted(self):
        src = "import time\n\nt = time.time()\n"
        assert lint_source(src, "x.py", module="repro.obs.profiler") == []
        assert lint_source(src, "x.py", module="repro.obs.wallclock") == []

    def test_sim_now_is_clean(self):
        src = "def f(sim):\n    return sim.now\n"
        assert codes(lint_source(src, "x.py")) == []


class TestRngRule:
    def test_unseeded_random_instance_fires(self):
        src = "import random\n\nrng = random.Random()\n"
        assert "SL002" in codes(lint_source(src, "x.py"))

    def test_seeded_random_instance_is_clean(self):
        src = "import random\n\nrng = random.Random(1234)\n"
        assert codes(lint_source(src, "x.py")) == []

    def test_numpy_random_fires(self):
        src = "import numpy as np\n\nx = np.random.default_rng(7)\n"
        assert "SL002" in codes(lint_source(src, "x.py"))

    def test_from_random_import_fires(self):
        src = "from random import randint\n\nx = randint(0, 10)\n"
        findings = [f for f in lint_source(src, "x.py") if f.code == "SL002"]
        assert len(findings) == 2  # the import and the call

    def test_rng_module_is_allowlisted(self):
        src = "import random\n\nx = random.random()\n"
        assert lint_source(src, "x.py", module="repro.sim.rng") == []


class TestSetIterRule:
    def test_sorted_iteration_is_clean(self):
        src = "def f(xs):\n    s = set(xs)\n    return [x for x in sorted(s)]\n"
        assert codes(lint_source(src, "x.py")) == []

    def test_tainted_variable_is_tracked(self):
        src = "def f(xs):\n    s = set(xs)\n    return list(s)\n"
        assert "SL003" in codes(lint_source(src, "x.py"))

    def test_set_annotation_taints_parameter(self):
        src = "def f(xs: set) -> list:\n    return [x for x in xs]\n"
        assert "SL003" in codes(lint_source(src, "x.py"))

    def test_set_algebra_propagates_taint(self):
        src = (
            "def f(a, b):\n"
            "    live = set(a) | set(b)\n"
            "    for x in live:\n"
            "        print(x)\n"
        )
        assert "SL003" in codes(lint_source(src, "x.py"))

    def test_dict_iteration_is_clean(self):
        src = "def f(d: dict):\n    return [k for k in d]\n"
        assert codes(lint_source(src, "x.py")) == []

    def test_join_over_set_fires(self):
        src = "def f(xs):\n    return ','.join({str(x) for x in xs})\n"
        assert "SL003" in codes(lint_source(src, "x.py"))


class TestFloatTimeRule:
    def test_float_multiply_fires(self):
        src = "def f(interval_ns: int):\n    return interval_ns * 1.5\n"
        assert "SL004" in codes(lint_source(src, "x.py"))

    def test_division_conversion_is_exempt(self):
        src = "SEC = 10**9\n\ndef f(t_ns: int):\n    return t_ns / SEC\n"
        assert codes(lint_source(src, "x.py")) == []

    def test_conversion_call_boundary_is_exempt(self):
        src = "def f(t_ns, ns_to_s):\n    return ns_to_s(t_ns) * 1e6\n"
        assert codes(lint_source(src, "x.py")) == []

    def test_int_preserving_builtin_still_time(self):
        src = "def f(a_ns, b_ns):\n    return min(a_ns, b_ns) * 0.5\n"
        assert "SL004" in codes(lint_source(src, "x.py"))

    def test_integer_arithmetic_is_clean(self):
        src = "def f(t_ns: int, d_ns: int):\n    return t_ns + 2 * d_ns\n"
        assert codes(lint_source(src, "x.py")) == []

    def test_untimed_float_math_is_clean(self):
        src = "def f(ratio):\n    return ratio * 1.5\n"
        assert codes(lint_source(src, "x.py")) == []


class TestEnvRule:
    def test_cpu_count_fires(self):
        src = "import os\n\nN = os.cpu_count()\n"
        assert "SL005" in codes(lint_source(src, "x.py"))

    def test_cli_module_is_allowlisted(self):
        src = "import os\n\nW = os.environ.get('REPRO_WORKERS')\n"
        assert lint_source(src, "x.py", module="repro.exp.cli") == []

    def test_os_path_is_clean(self):
        src = "import os\n\np = os.path.join('a', 'b')\n"
        assert codes(lint_source(src, "x.py")) == []


class TestMagicTimingRule:
    def test_caps_constant_definition_is_exempt(self):
        src = "T_IFS_NS: int = 150_000\n"
        assert codes(lint_source(src, "x.py")) == []

    def test_product_form_fires(self):
        src = "USEC = 1000\n\ndef f(t_ns):\n    return t_ns + 150 * USEC\n"
        assert "SL006" in codes(lint_source(src, "x.py"))

    def test_product_form_in_caps_definition_is_exempt(self):
        src = "USEC = 1000\nT_IFS_NS: int = 150 * USEC\n"
        assert codes(lint_source(src, "x.py")) == []

    def test_unknown_literal_is_clean(self):
        src = "def f(t_ns):\n    return t_ns + 123_456\n"
        assert codes(lint_source(src, "x.py")) == []

    def test_units_module_is_allowlisted(self):
        src = "X = [150_000][0]\n"
        assert "SL006" in codes(lint_source(src, "x.py"))
        assert lint_source(src, "x.py", module="repro.sim.units") == []


class TestEngine:
    def test_syntax_error_becomes_meta_finding(self):
        findings = lint_source("def broken(:\n", "x.py")
        assert codes(findings) == ["SL000"]

    def test_simlint_text_in_docstring_is_ignored(self):
        src = '"""Docs mention # simlint: allow-wallclock here."""\nX = 1\n'
        assert lint_source(src, "x.py") == []
