"""SL008 guard proofs, SL009 shared-state inventory, and mutation tests.

The mutation tests are the teeth of the new rules: they lint *real repo
source* with one safety property surgically broken and assert the rule
catches it, alongside the unmutated precondition staying clean.
"""

import ast
import json
import textwrap
from pathlib import Path

from repro.lint import lint_source
from repro.lint.core import FileContext
from repro.lint.graph import Project
from repro.lint.purity import compute_guards, compute_shared_state, is_hot_module

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def ctx_for(module, source):
    source = textwrap.dedent(source)
    return FileContext(
        path=Path(f"{module.replace('.', '/')}.py"),
        module=module,
        source=source,
        lines=source.splitlines(),
        tree=ast.parse(source),
    )


def project_of(**modules):
    return Project.from_contexts([ctx_for(m, s) for m, s in modules.items()])


def unguarded(project, module):
    return list(compute_guards(project).unguarded_touches(module))


# ---------------------------------------------------------------------------
# SL008: guard idioms
# ---------------------------------------------------------------------------


class TestGuardIdioms:
    def test_unguarded_call_fires(self):
        p = project_of(m="def f(t):\n    TRACE.emit(t, 'x', 'y')\n")
        assert len(unguarded(p, "m")) == 1

    def test_direct_guard_is_clean(self):
        p = project_of(
            m="""
            def f(t):
                if TRACE.enabled:
                    TRACE.emit(t, 'x', 'y')
            """
        )
        assert unguarded(p, "m") == []

    def test_hoisted_alias_guard_is_clean(self):
        p = project_of(
            m="""
            def f(t):
                trace_on = TRACE.enabled
                if trace_on:
                    TRACE.emit(t, 'x', 'y')
            """
        )
        assert unguarded(p, "m") == []

    def test_compound_and_guard_is_clean(self):
        p = project_of(
            m="""
            def f(t, pdu):
                if pdu and METRICS.enabled:
                    METRICS.inc('n', 'k')
            """
        )
        assert unguarded(p, "m") == []

    def test_boolop_expression_guard_is_clean(self):
        p = project_of(m="def f(t):\n    TRACE.enabled and TRACE.emit(t, 'x', 'y')\n")
        assert unguarded(p, "m") == []

    def test_ifexp_guard_is_clean(self):
        p = project_of(
            m="""
            def f(t):
                return TRACE.emit(t, 'x', 'y') if TRACE.enabled else None
            """
        )
        assert unguarded(p, "m") == []

    def test_early_return_guard_is_clean(self):
        p = project_of(
            m="""
            def f(t):
                if not TRACE.enabled:
                    return
                TRACE.emit(t, 'x', 'y')
            """
        )
        assert unguarded(p, "m") == []

    def test_wrong_hub_guard_still_fires(self):
        p = project_of(
            m="""
            def f(t):
                if METRICS.enabled:
                    TRACE.emit(t, 'x', 'y')
            """
        )
        assert len(unguarded(p, "m")) == 1

    def test_unguarded_store_fires(self):
        p = project_of(m="def f(t):\n    METRICS.now_hint = t\n")
        touches = unguarded(p, "m")
        assert len(touches) == 1
        assert touches[0][1].kind == "store"

    def test_cold_module_is_out_of_scope(self):
        assert not is_hot_module("repro.topo.builder")
        p = project_of(**{"repro.topo.builder": "def f(t):\n    TRACE.emit(t, 'x', 'y')\n"})
        assert unguarded(p, "repro.topo.builder") == []

    def test_hot_prefixes_are_in_scope(self):
        for module in ("repro.sim.kernel", "repro.ble.conn", "repro.net.rpl", "m"):
            assert is_hot_module(module)


class TestDelegatedGuards:
    def test_caller_guarded_helper_is_clean(self):
        p = project_of(
            m="""
            def emit(t):
                TRACE.emit(t, 'x', 'y')

            def f(t):
                if TRACE.enabled:
                    emit(t)
            """
        )
        assert unguarded(p, "m") == []

    def test_one_unguarded_call_site_breaks_the_proof(self):
        p = project_of(
            m="""
            def emit(t):
                TRACE.emit(t, 'x', 'y')

            def f(t):
                if TRACE.enabled:
                    emit(t)

            def g(t):
                emit(t)
            """
        )
        touches = unguarded(p, "m")
        assert len(touches) == 1
        assert "called unguarded from g()" in touches[0][2]

    def test_guard_delegation_composes_through_chains(self):
        p = project_of(
            m="""
            def emit(t):
                TRACE.emit(t, 'x', 'y')

            def mid(t):
                emit(t)

            def f(t):
                if TRACE.enabled:
                    mid(t)
            """
        )
        assert unguarded(p, "m") == []

    def test_ref_edge_forces_unguarded(self):
        # registering the helper as a callback means it later runs in the
        # dispatcher's context -- the registration-site guard proves nothing.
        p = project_of(
            m="""
            def emit(t):
                TRACE.emit(t, 'x', 'y')

            def f(sim):
                if TRACE.enabled:
                    sim.at(5, emit)
            """
        )
        touches = unguarded(p, "m")
        assert len(touches) == 1

    def test_cold_call_sites_do_not_count(self):
        # the only unguarded call site is in a cold module; the helper's
        # hot-path story stays proven.
        p = project_of(
            m="""
            def emit(t):
                TRACE.emit(t, 'x', 'y')

            def f(t):
                if TRACE.enabled:
                    emit(t)
            """,
            **{
                "repro.topo.builder": """
                from m import emit

                def cold(t):
                    emit(t)
                """
            },
        )
        assert unguarded(p, "m") == []


# ---------------------------------------------------------------------------
# SL009: shared mutable state
# ---------------------------------------------------------------------------


def violations(project, module):
    return list(compute_shared_state(project).violations(module))


class TestSharedState:
    def test_referenced_mutable_global_fires(self):
        p = project_of(
            m="""
            _ROUTE_CACHE = {}

            def lookup(dest):
                return _ROUTE_CACHE.get(dest)
            """
        )
        found = violations(p, "m")
        assert len(found) == 1
        assert found[0].qualname == "m._ROUTE_CACHE"
        assert found[0].value_type == "dict literal"

    def test_sanctioned_global_is_recorded_not_flagged(self):
        p = project_of(
            m="""
            # simlint: allow-shared-state -- test sanction reason
            _ROUTE_CACHE = {}

            def lookup(dest):
                return _ROUTE_CACHE.get(dest)
            """
        )
        assert violations(p, "m") == []
        entries = [
            e for e in compute_shared_state(p).globals if e.qualname == "m._ROUTE_CACHE"
        ]
        assert entries[0].sanctioned
        assert entries[0].reason == "test sanction reason"

    def test_unreferenced_global_is_inventory_only(self):
        p = project_of(m="_TABLE = []\n\ndef f():\n    return 1\n")
        assert violations(p, "m") == []
        entries = compute_shared_state(p).globals
        assert [e.qualname for e in entries] == ["m._TABLE"]
        assert not entries[0].dispatch_reachable

    def test_immutable_globals_are_ignored(self):
        p = project_of(
            m="""
            LIMIT = 10
            NAMES = ("a", "b")
            FROZEN = frozenset({1})

            def f():
                return LIMIT, NAMES, FROZEN
            """
        )
        assert compute_shared_state(p).globals == []

    def test_kernel_rooted_reachability(self):
        p = project_of(
            **{
                "repro.sim.kernel": """
                from a import hot_fn

                def dispatch():
                    hot_fn()
                """,
                "a": """
                _HOT = {}

                def hot_fn():
                    _HOT[1] = 2
                """,
                "b": """
                _COLD = {}

                def cold_fn():
                    _COLD[1] = 2
                """,
            }
        )
        assert [e.qualname for e in violations(p, "a")] == ["a._HOT"]
        assert violations(p, "b") == []

    def test_partial_repro_slice_without_kernel_stays_silent(self):
        # a pre-commit run on changed files cannot see the dispatch path;
        # it must not fall back to treating every function as reachable.
        p = project_of(
            **{
                "repro.lint.units": """
                SUFFIXES = {"_ns": "ns"}

                def suffix_unit(name):
                    return SUFFIXES.get(name[-3:])
                """
            }
        )
        assert violations(p, "repro.lint.units") == []

    def test_instance_state_inventoried_in_scope(self):
        p = project_of(
            **{
                "repro.ble.thing": """
                class Link:
                    def __init__(self):
                        self.pending = []
                """,
                "repro.exp.other": """
                class Out:
                    def __init__(self):
                        self.rows = []
                """,
            }
        )
        attrs = [e.qualname for e in compute_shared_state(p).instance_attrs]
        assert attrs == ["repro.ble.thing.Link.pending"]

    def test_report_is_deterministic(self):
        src = {
            "m": "_C = {}\n\ndef f():\n    return _C\n",
            "repro.ble.x": "class K:\n    def __init__(self):\n        self.q = []\n",
        }
        first = json.dumps(compute_shared_state(project_of(**src)).report())
        second = json.dumps(compute_shared_state(project_of(**src)).report())
        assert first == second
        assert json.loads(first)["schema"] == "repro.lint.shared-state/1"


# ---------------------------------------------------------------------------
# Mutation tests: real repo source with one safety property broken
# ---------------------------------------------------------------------------


def repo_source(rel):
    return (SRC / rel).read_text(encoding="utf-8")


def lint_repo_source(rel, source):
    module = "repro." + rel[:-3].replace("/", ".")
    return lint_source(source, str(SRC / rel), module=module)


class TestMutations:
    def test_sl008_fires_when_trace_tx_guard_removed(self):
        original = repo_source("ble/conn.py")
        guard = "        if not TRACE.enabled:\n            return\n"
        assert guard in original, "mutation anchor moved -- update the test"
        assert lint_repo_source("ble/conn.py", original) == []
        mutated = original.replace(guard, "", 1)
        codes = {f.code for f in lint_repo_source("ble/conn.py", mutated)}
        assert codes == {"SL008"}

    def test_sl007_fires_when_ms_conversion_uses_wrong_scale(self):
        original = repo_source("exp/runner.py")
        anchor = "cfg.max_event_len_ms * MSEC"
        assert anchor in original, "mutation anchor moved -- update the test"
        assert lint_repo_source("exp/runner.py", original) == []
        mutated = original.replace(anchor, "cfg.max_event_len_ms * SEC", 1)
        codes = {f.code for f in lint_repo_source("exp/runner.py", mutated)}
        assert "SL007" in codes

    def test_sl009_fires_when_metrics_sanction_removed(self):
        """The real repo source carries *no* SL009 sanction anymore: the
        instance-hub refactor (``repro.sim.kernel._DEFAULT_HUBS``) took the
        hub singletons out of every dispatch-reachable function, and the
        suppressions were deleted with it.  The rule must still have teeth,
        so rebuild the old world here: a kernel that names ``METRICS`` from
        its dispatch loop, against a sanctioned copy of the real source --
        and assert stripping the sanction fires SL009."""
        original = repo_source("obs/registry.py")
        anchor = "METRICS = MetricsHub()"
        assert anchor in original, "mutation anchor moved -- update the test"
        assert "allow-shared-state" not in original, (
            "registry.py regrew an SL009 sanction -- if the hub became "
            "dispatch-reachable again, update the burn-down story here"
        )
        sanctioned = original.replace(
            anchor,
            "# simlint: allow-shared-state -- hub singleton (test)\n" + anchor,
            1,
        )
        kernel = ctx_for(
            "repro.sim.kernel",
            """
            from repro.obs.registry import METRICS

            def dispatch():
                if METRICS.enabled:
                    METRICS.inc("n", "k")
            """,
        )

        def registry_ctx(source):
            return FileContext(
                path=SRC / "obs/registry.py",
                module="repro.obs.registry",
                source=source,
                lines=source.splitlines(),
                tree=ast.parse(source),
            )

        clean = Project.from_contexts([registry_ctx(sanctioned), kernel])
        assert violations(clean, "repro.obs.registry") == []

        broken = Project.from_contexts([registry_ctx(original), kernel])
        found = violations(broken, "repro.obs.registry")
        assert [e.qualname for e in found] == ["repro.obs.registry.METRICS"]

    def test_sl009_hub_singletons_are_dispatch_unreachable_in_repo(self):
        """The burn-down's end state, pinned: with the *real* kernel source
        in the project, none of the four hub singletons is referenced from
        a dispatch-reachable function, so none needs a sanction."""
        rels = {
            "sim/kernel.py": "repro.sim.kernel",
            "obs/instr.py": "repro.obs.instr",
            "obs/registry.py": "repro.obs.registry",
            "obs/profiler.py": "repro.obs.profiler",
            "trace/tracer.py": "repro.trace.tracer",
        }
        contexts = [
            FileContext(
                path=SRC / rel,
                module=module,
                source=repo_source(rel),
                lines=repo_source(rel).splitlines(),
                tree=ast.parse(repo_source(rel)),
            )
            for rel, module in rels.items()
        ]
        project = Project.from_contexts(contexts)
        state = compute_shared_state(project)
        hubs = {
            "repro.obs.instr.INSTR",
            "repro.obs.registry.METRICS",
            "repro.obs.profiler.PROFILER",
            "repro.trace.tracer.TRACE",
        }
        rows = {e.qualname: e for e in state.globals if e.qualname in hubs}
        assert set(rows) == hubs
        for qualname, entry in sorted(rows.items()):
            assert not entry.dispatch_reachable, qualname
            assert not entry.sanctioned, qualname
