"""Inline-suppression grammar: reasons are mandatory, names are checked."""

from repro.lint import lint_source


def codes(findings):
    return sorted({f.code for f in findings})


class TestSuppression:
    def test_same_line_suppression_silences_rule(self):
        src = (
            "import time\n\n"
            "t = time.time()  # simlint: allow-wallclock -- test scaffolding\n"
        )
        assert lint_source(src, "x.py") == []

    def test_preceding_comment_suppression(self):
        src = (
            "import time\n\n"
            "# simlint: allow-wallclock -- test scaffolding\n"
            "t = time.time()\n"
        )
        assert lint_source(src, "x.py") == []

    def test_preceding_comment_spans_comment_block(self):
        src = (
            "import time\n\n"
            "# simlint: allow-wallclock -- test scaffolding that goes on\n"
            "# for a second explanatory line before the code\n"
            "t = time.time()\n"
        )
        assert lint_source(src, "x.py") == []

    def test_rule_code_is_accepted_as_alias(self):
        src = (
            "import time\n\n"
            "t = time.time()  # simlint: allow-SL001 -- code form works too\n"
        )
        assert lint_source(src, "x.py") == []

    def test_multiple_rules_one_comment(self):
        src = (
            "import os\nimport time\n\n"
            "t = time.time() if os.environ.get('X') else 0"
            "  # simlint: allow-wallclock,allow-env -- one reason for both\n"
        )
        assert lint_source(src, "x.py") == []

    def test_suppression_without_reason_is_flagged(self):
        src = "import time\n\nt = time.time()  # simlint: allow-wallclock\n"
        findings = lint_source(src, "x.py")
        # the suppression is invalid, so SL001 still fires AND SL000 reports
        # the missing reason.
        assert codes(findings) == ["SL000", "SL001"]

    def test_unknown_rule_name_is_flagged(self):
        src = "X = 1  # simlint: allow-warpdrive -- no such rule\n"
        findings = lint_source(src, "x.py")
        assert codes(findings) == ["SL000"]
        assert "warpdrive" in findings[0].message

    def test_suppression_does_not_leak_to_other_lines(self):
        src = (
            "import time\n\n"
            "a = time.time()  # simlint: allow-wallclock -- only this line\n"
            "b = time.time()\n"
        )
        findings = lint_source(src, "x.py")
        assert [f.line for f in findings] == [4]

    def test_suppression_only_covers_named_rule(self):
        src = (
            "import time\n\n"
            "t = time.time()  # simlint: allow-env -- wrong rule named\n"
        )
        assert "SL001" in codes(lint_source(src, "x.py"))

    def test_malformed_simlint_comment_is_flagged(self):
        src = "X = 1  # simlint wallclock please\n"
        findings = lint_source(src, "x.py")
        assert codes(findings) == ["SL000"]
