"""Baseline round-trips: grandfather findings, fail only on new ones."""

import json
from pathlib import Path

import pytest

from repro.lint import lint_path, load_baseline, write_baseline
from repro.lint.baseline import BaselineError

FIXTURES = Path(__file__).parent / "fixtures"


class TestBaselineRoundTrip:
    def test_write_then_load_covers_all_findings(self, tmp_path):
        findings = lint_path(FIXTURES / "sl001_wallclock.py")
        assert findings
        baseline = tmp_path / "baseline.json"
        count = write_baseline(baseline, findings)
        assert count == len({f.fingerprint() for f in findings})
        grandfathered = load_baseline(baseline)
        assert all(f.fingerprint() in grandfathered for f in findings)

    def test_empty_file_is_valid_empty_baseline(self, tmp_path):
        baseline = tmp_path / "empty"
        baseline.write_text("")
        assert load_baseline(baseline) == set()

    def test_baseline_is_byte_stable(self, tmp_path):
        findings = lint_path(FIXTURES / "sl006_magic.py")
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_baseline(a, findings)
        write_baseline(b, list(reversed(findings)))
        assert a.read_bytes() == b.read_bytes()

    def test_fingerprint_survives_line_moves(self):
        """The fingerprint excludes line numbers, so a finding pushed down
        by unrelated edits above it stays grandfathered."""
        original = lint_path(FIXTURES / "sl002_rng.py")
        shifted_src = "\n\n" + (FIXTURES / "sl002_rng.py").read_text()
        from repro.lint import lint_source

        shifted = lint_source(
            shifted_src, FIXTURES / "sl002_rng.py"
        )
        assert {f.fingerprint() for f in original} == {
            f.fingerprint() for f in shifted
        }
        assert [f.line for f in original] != [f.line for f in shifted]

    def test_garbage_baseline_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_wrong_schema_is_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/1", "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(bad)

    def test_entries_record_review_context(self, tmp_path):
        findings = lint_path(FIXTURES / "sl005_env.py")
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        doc = json.loads(baseline.read_text())
        entry = doc["entries"][0]
        assert set(entry) == {"fingerprint", "code", "module", "text", "message"}
        assert entry["code"] == "SL005"
