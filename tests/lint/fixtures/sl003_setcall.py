"""Set-returning project functions iterated without sorting."""


def neighbours():
    return {2, 3, 5}


def wrapped():
    return neighbours()


def schedule():
    out = []
    for n in wrapped():
        out.append(n)
    return list(x for x in neighbours())
