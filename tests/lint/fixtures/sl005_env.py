"""Fixture: SL005 (env) must flag an environment read outside the CLI."""

import os


def workers() -> int:
    return int(os.environ.get("REPRO_WORKERS", "1"))
