"""Laundered environment read: os.environ wrapped twice, plus a partial."""
import functools
import os


def _flag():
    return os.environ.get("REPRO_DEBUG")


def _debug():
    return _flag()


def configure():
    return _debug()


def deferred():
    cb = functools.partial(_debug)
    return cb()
