"""Cross-unit time arithmetic and suffix-violating bindings."""


def drift(t_ns, skew_ms):
    return t_ns + skew_ms


def rebase(anchor_ns):
    offset_ms = anchor_ns
    return offset_ms
