"""Unguarded instrumentation-hub touches on the hot path."""


def _hub():
    return None


TRACE = _hub()
METRICS = _hub()


def on_rx(pdu):
    TRACE.emit("rx", pdu)
    return pdu


def on_tx(pdu):
    METRICS.now_hint = 7
    return pdu


def guarded_ok(pdu):
    if TRACE.enabled:
        TRACE.emit("ok", pdu)
    return pdu
