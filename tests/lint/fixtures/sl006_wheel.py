"""Fixture: SL006 (magic-time) must flag a raw timer-wheel slot literal."""


def slot_of(when_ns: int) -> int:
    return when_ns // 2_097_152
