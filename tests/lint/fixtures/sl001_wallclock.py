"""Fixture: SL001 (wallclock) must flag a host-clock read."""

import time


def stamp() -> float:
    return time.time()
