"""Dispatch-reachable module-level mutable state without a sanction."""

_ROUTE_CACHE = {}


def lookup(dst):
    return _ROUTE_CACHE.get(dst)
