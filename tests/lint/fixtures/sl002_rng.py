"""Fixture: SL002 (rng) must flag a draw from the global random stream."""

import random


def jitter() -> float:
    return random.random()
