"""SL003 regression guard: sorted() launders set-typed calls and genexps.

This file must lint clean.  It pins the two false-positive shapes the
interprocedural upgrade could have introduced: iterating
``sorted(<set-returning call>)`` and generator expressions wrapping an
immediate ``sorted(...)``.
"""


def neighbours():
    return {2, 3, 5}


def ordered():
    out = []
    for n in sorted(neighbours()):
        out.append(n)
    joined = ",".join(str(x) for x in sorted(neighbours()))
    peers = sorted(neighbours())
    total = sum(x for x in peers)
    return out, joined, total
