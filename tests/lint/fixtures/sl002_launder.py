"""Laundered global RNG: random.random() wrapped twice, plus a partial."""
import functools
import random


def _draw():
    return random.random()


def _sample():
    return _draw()


def backoff():
    return _sample()


def deferred():
    cb = functools.partial(_sample)
    return cb()
