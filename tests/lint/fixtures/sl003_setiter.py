"""Fixture: SL003 (set-order) must flag iteration over a set."""


def emit() -> list:
    pending = {"b", "a", "c"}
    out = []
    for item in pending:
        out.append(item)
    return out
