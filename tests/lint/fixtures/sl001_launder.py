"""Laundered wall-clock: time.time() wrapped twice, plus a partial."""
import functools
import time


def _now():
    return time.time()


def _stamp():
    return _now()


def jitter():
    return _stamp()


def deferred():
    cb = functools.partial(_stamp)
    return cb()
