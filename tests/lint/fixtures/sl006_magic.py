"""Fixture: SL006 (magic-time) must flag a raw protocol timing literal."""


def next_exchange(t_ns: int) -> int:
    return t_ns + 150_000
