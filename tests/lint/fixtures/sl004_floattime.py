"""Fixture: SL004 (float-time) must flag float equality on a *_ns value."""


def is_anchor(t_ns: int) -> bool:
    return t_ns == 1.25e6
