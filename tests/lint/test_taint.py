"""Interprocedural taint: chains, barriers, partials, and termination."""

import ast
import textwrap
from pathlib import Path

from repro.lint import lint_source
from repro.lint.core import FileContext
from repro.lint.graph import Project
from repro.lint.taint import ENV, RNG, WALLCLOCK, TaintAnalysis


def ctx_for(module, source):
    source = textwrap.dedent(source)
    return FileContext(
        path=Path(f"{module.replace('.', '/')}.py"),
        module=module,
        source=source,
        lines=source.splitlines(),
        tree=ast.parse(source),
    )


def analysis_of(**modules):
    return TaintAnalysis(Project.from_contexts([ctx_for(m, s) for m, s in modules.items()]))


THREE_DEEP = {
    WALLCLOCK: """
        import time

        def a():
            return time.time()

        def b():
            return a()

        def c():
            return b()
        """,
    RNG: """
        import random

        def a():
            return random.random()

        def b():
            return a()

        def c():
            return b()
        """,
    ENV: """
        import os

        def a():
            return os.environ.get("X")

        def b():
            return a()

        def c():
            return b()
        """,
}


class TestChains:
    def test_three_deep_chain_every_kind(self):
        for kind, src in THREE_DEEP.items():
            analysis = analysis_of(m=src)
            fact = analysis.taint_of(kind, "m.c")
            assert fact is not None, kind
            assert fact.chain[:3] == ("m.c", "m.b", "m.a"), kind

    def test_chain_findings_surface_at_call_sites(self):
        for kind, src in THREE_DEEP.items():
            analysis = analysis_of(m=src)
            sites = [s for k, _, s in analysis.call_site_findings("m") if k == kind]
            # b's call of a, c's call of b -- both project-internal.
            assert len(sites) == 2, kind
            assert all("->" in s.render_chain() for s in sites)

    def test_partial_wrapping_propagates(self):
        analysis = analysis_of(
            m="""
            import functools
            import time

            def src():
                return time.time()

            def outer():
                cb = functools.partial(src)
                return cb()
            """
        )
        assert analysis.taint_of(WALLCLOCK, "m.outer") is not None

    def test_cross_module_chain(self):
        analysis = analysis_of(
            low="""
            import random

            def draw():
                return random.random()
            """,
            high="""
            from low import draw

            def use():
                return draw()
            """,
        )
        fact = analysis.taint_of(RNG, "high.use")
        assert fact is not None
        assert fact.chain[1] == "low.draw"


class TestBarriersAndSuppressions:
    def test_barrier_module_absorbs_taint(self):
        analysis = analysis_of(
            **{
                "repro.obs.wallclock": """
                import time

                def monotonic():
                    return time.time()
                """,
                "repro.sim.other": """
                from repro.obs.wallclock import monotonic

                def use():
                    return monotonic()
                """,
            }
        )
        assert analysis.taint_of(WALLCLOCK, "repro.sim.other.use") is None

    def test_suppressed_source_does_not_seed(self):
        analysis = analysis_of(
            m="""
            import time

            def src():
                return time.time()  # simlint: allow-wallclock -- test sanction

            def use():
                return src()
            """
        )
        assert analysis.taint_of(WALLCLOCK, "m.src") is None
        assert analysis.taint_of(WALLCLOCK, "m.use") is None

    def test_ref_edges_do_not_propagate_taint(self):
        analysis = analysis_of(
            m="""
            import time

            def cb():
                return time.time()

            def register(sim):
                sim.at(5, cb)
            """
        )
        assert analysis.taint_of(WALLCLOCK, "m.register") is None


class TestTermination:
    def test_direct_recursion_terminates(self):
        analysis = analysis_of(
            m="""
            import time

            def f(n):
                if n:
                    return f(n - 1)
                return time.time()
            """
        )
        fact = analysis.taint_of(WALLCLOCK, "m.f")
        assert fact is not None
        assert fact.chain == ("m.f", "time.time")

    def test_mutual_recursion_terminates_with_stable_chains(self):
        src = """
            import time

            def a(n):
                if n:
                    return b(n - 1)
                return time.time()

            def b(n):
                return a(n)
            """
        first = analysis_of(m=src)
        second = analysis_of(m=src)
        for q in ("m.a", "m.b"):
            f1 = first.taint_of(WALLCLOCK, q)
            f2 = second.taint_of(WALLCLOCK, q)
            assert f1 is not None and f2 is not None
            assert f1.chain == f2.chain  # deterministic fixpoint

    def test_tainted_cycle_with_no_source_stays_clean(self):
        analysis = analysis_of(
            m="""
            def a(n):
                return b(n)

            def b(n):
                return a(n)
            """
        )
        assert analysis.taint_of(WALLCLOCK, "m.a") is None


class TestSetReturningClosure:
    def test_wrapper_of_set_returner_closes(self):
        analysis = analysis_of(
            m="""
            def base():
                return {1, 2}

            def wrap():
                return base()

            def wrap2():
                return wrap()
            """
        )
        assert {"m.base", "m.wrap", "m.wrap2"} <= analysis.set_returning


class TestEndToEndFindings:
    def test_direct_and_laundered_both_fire(self):
        src = textwrap.dedent(
            """
            import time

            def helper():
                return time.time()

            def use():
                return helper()
            """
        )
        findings = [f for f in lint_source(src, "m.py", module="m") if f.code == "SL001"]
        lines = sorted(f.line for f in findings)
        assert len(findings) == 2  # the direct read and the laundering call
        assert any("chain" in f.message for f in findings)
        assert lines[0] < lines[1]
