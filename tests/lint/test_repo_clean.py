"""The acceptance gate: the repo lints clean, and mutations are caught.

``python -m repro lint`` exiting 0 with an empty baseline is a hard
acceptance criterion; the mutation tests prove the zero isn't vacuous --
reintroducing the exact defects the rules exist for (a ``time.time()`` in
the BLE connection machinery, an unseeded draw in the kernel) flips the
result to failing.
"""

from pathlib import Path

from repro.lint import lint_paths, lint_source

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"


def test_repo_is_simlint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


class TestMutationIsCaught:
    def _mutate(self, relpath: str, addition: str):
        path = SRC / relpath
        source = path.read_text()
        baseline = lint_source(source, path)
        assert baseline == [], f"{relpath} must lint clean before mutation"
        return lint_source(source + addition, path)

    def test_wallclock_in_ble_conn(self):
        findings = self._mutate(
            "ble/conn.py",
            "\n\ndef _leak_wallclock():\n"
            "    import time\n\n"
            "    return time.time()\n",
        )
        assert any(f.code == "SL001" for f in findings)

    def test_global_random_in_kernel(self):
        findings = self._mutate(
            "sim/kernel.py",
            "\n\ndef _leak_entropy():\n"
            "    import random\n\n"
            "    return random.random()\n",
        )
        assert any(f.code == "SL002" for f in findings)

    def test_set_iteration_in_export(self):
        findings = self._mutate(
            "obs/export.py",
            "\n\ndef _leak_hash_order(names):\n"
            "    pending = set(names)\n"
            "    return [n for n in pending]\n",
        )
        assert any(f.code == "SL003" for f in findings)

    def test_env_read_in_cache(self):
        findings = self._mutate(
            "exp/cache.py",
            "\n\ndef _leak_env():\n"
            "    import os\n\n"
            "    return os.environ.get('REPRO_CACHE_DIR')\n",
        )
        assert any(f.code == "SL005" for f in findings)
