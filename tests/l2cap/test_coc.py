"""Tests for the LE credit-based connection-oriented channel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ble.config import BleConfig, ConnParams
from repro.l2cap import CocConfig, L2capCoc
from repro.phy.medium import InterferenceBurst
from repro.sim.units import MSEC, SEC

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from ble.conftest import BlePlane  # noqa: E402


def make_coc(plane=None, coc_config=None, conn_params=None, **plane_kwargs):
    plane = plane or BlePlane(**plane_kwargs)
    conn = plane.connect(0, 1, params=conn_params, anchor0=MSEC)
    coc = L2capCoc(conn, coc_config)
    return plane, conn, coc


def test_small_sdu_roundtrip():
    plane, conn, coc = make_coc()
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    coc.send(plane.nodes[0], b"ipv6-packet-bytes")
    plane.sim.run(until=200 * MSEC)
    assert got == [b"ipv6-packet-bytes"]


def test_sdu_larger_than_mps_is_segmented_and_reassembled():
    plane, conn, coc = make_coc()
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    sdu = bytes(range(256)) * 4  # 1024 bytes > 247 MPS
    coc.send(plane.nodes[0], sdu)
    plane.sim.run(until=1 * SEC)
    assert got == [sdu]
    end = coc.end_of(plane.nodes[0])
    assert end.sdus_sent == 1


def test_mtu_enforced():
    plane, conn, coc = make_coc()
    with pytest.raises(ValueError):
        coc.send(plane.nodes[0], b"x" * 1281)


def test_bidirectional_traffic():
    plane, conn, coc = make_coc()
    got = {"up": [], "down": []}
    coc.set_rx_handler(plane.nodes[1], got["down"].append)
    coc.set_rx_handler(plane.nodes[0], got["up"].append)
    coc.send(plane.nodes[0], b"request")
    coc.send(plane.nodes[1], b"response")
    plane.sim.run(until=500 * MSEC)
    assert got["down"] == [b"request"]
    assert got["up"] == [b"response"]


def test_many_sdus_in_order():
    plane, conn, coc = make_coc()
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    sdus = [bytes([i]) * (10 + i) for i in range(30)]
    for sdu in sdus:
        coc.send(plane.nodes[0], sdu)
    plane.sim.run(until=5 * SEC)
    assert got == sdus


def test_credits_limit_inflight_frames():
    """With 1 initial credit, the second SDU waits for a credit return."""
    plane, conn, coc = make_coc(coc_config=CocConfig(initial_credits=1))
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    coc.send(plane.nodes[0], b"first")
    coc.send(plane.nodes[0], b"second")
    end = coc.end_of(plane.nodes[0])
    assert end.credits == 0  # the single credit was spent immediately
    plane.sim.run(until=1 * SEC)
    assert got == [b"first", b"second"]  # credit return unblocked the second
    assert coc.end_of(plane.nodes[1]).credits_returned >= 2


def test_sdu_sent_callback_fires_after_ll_ack():
    plane, conn, coc = make_coc()
    sent = []
    end = coc.end_of(plane.nodes[0])
    end.on_sdu_sent = sent.append
    coc.send(plane.nodes[0], b"payload", tag="cookie")
    assert sent == []  # nothing acked before the first connection event
    plane.sim.run(until=200 * MSEC)
    assert sent == ["cookie"]


def test_survives_interference_burst():
    """Retransmissions below keep the channel lossless and in order."""
    plane = BlePlane()
    plane.medium.interference.bursts.append(
        InterferenceBurst(100 * MSEC, 350 * MSEC, tuple(range(37)), 1.0)
    )
    plane, conn, coc = make_coc(plane=plane)
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    sdus = [bytes([i]) * 100 for i in range(10)]
    for sdu in sdus:
        coc.send(plane.nodes[0], sdu)
    plane.sim.run(until=3 * SEC)
    assert got == sdus
    assert conn.open


def test_queue_bytes_accounting():
    plane, conn, coc = make_coc()
    end = coc.end_of(plane.nodes[0])
    # queue before any connection event has run
    coc.send(plane.nodes[0], b"x" * 400)
    assert end.queue_bytes() > 0
    plane.sim.run(until=1 * SEC)
    assert end.queue_bytes() == 0


def test_throughput_stall_on_tiny_pool():
    """A tiny LL buffer pool stalls the pump but never loses SDUs."""
    plane = BlePlane(config_factory=lambda i: BleConfig(buffer_pool_bytes=300))
    plane, conn, coc = make_coc(plane=plane)
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    sdus = [bytes([i]) * 150 for i in range(8)]
    for sdu in sdus:
        coc.send(plane.nodes[0], sdu)
    plane.sim.run(until=3 * SEC)
    assert got == sdus


def test_config_validation():
    with pytest.raises(ValueError):
        CocConfig(mps=10)
    with pytest.raises(ValueError):
        CocConfig(mtu=100, mps=200)
    with pytest.raises(ValueError):
        CocConfig(initial_credits=0)


@given(
    payload=st.binary(min_size=0, max_size=1280),
)
@settings(max_examples=30, deadline=None)
def test_any_sdu_roundtrips(payload):
    """Property: any SDU within the MTU reassembles byte-identically."""
    plane, conn, coc = make_coc()
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    coc.send(plane.nodes[0], payload)
    plane.sim.run(until=2 * SEC)
    assert got == [payload]
