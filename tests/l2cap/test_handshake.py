"""Tests for the LE credit-based connection handshake (RFC 7668 / IPSP)."""

import pytest

from repro.ble.config import ConnParams
from repro.l2cap import L2capCoc
from repro.l2cap.coc import IPSP_PSM
from repro.sim.units import MSEC, SEC

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from ble.conftest import BlePlane  # noqa: E402


def handshake_coc(accept=True, open_from=0):
    plane = BlePlane()
    conn = plane.connect(0, 1, anchor0=MSEC)
    coc = L2capCoc(conn, handshake=True)
    if accept:
        coc.accept_psm(IPSP_PSM)
    results = []
    coc.open_listeners.append(lambda c, ok: results.append(ok))
    coc.open_channel(plane.nodes[open_from], IPSP_PSM)
    return plane, conn, coc, results


def test_handshake_opens_channel():
    plane, conn, coc, results = handshake_coc()
    assert coc.state == "requested"
    plane.sim.run(until=500 * MSEC)
    assert coc.state == "open"
    assert results == [True]


def test_unknown_psm_refused():
    plane, conn, coc, results = handshake_coc(accept=False)
    plane.sim.run(until=500 * MSEC)
    assert coc.state == "refused"
    assert results == [False]
    assert not coc.is_open


def test_data_queued_before_open_flows_after():
    plane, conn, coc, results = handshake_coc()
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    coc.send(plane.nodes[0], b"early-bird")  # queued while 'requested'
    assert got == []
    plane.sim.run(until=1 * SEC)
    assert got == [b"early-bird"]


def test_data_never_flows_on_refused_channel():
    plane, conn, coc, results = handshake_coc(accept=False)
    got = []
    coc.set_rx_handler(plane.nodes[1], got.append)
    coc.send(plane.nodes[0], b"never")
    plane.sim.run(until=2 * SEC)
    assert got == []


def test_legacy_mode_is_born_open():
    plane = BlePlane()
    conn = plane.connect(0, 1, anchor0=MSEC)
    coc = L2capCoc(conn)  # no handshake
    assert coc.is_open


def test_netif_path_performs_handshake():
    """The full stack opens the IPSP channel from the coordinator side."""
    from repro.sim.units import SEC as _SEC
    from repro.testbed.topology import BleNetwork

    net = BleNetwork(2, seed=77, ppms=[0.0, 0.0])
    net.apply_edges([(0, 1)])
    net.run(3 * _SEC)
    conn = net.nodes[1].controller.connection_to(0)
    coc = conn._ipsp_coc
    assert coc.state == "open"
    assert IPSP_PSM in coc.accepted_psms


def test_credits_come_from_handshake():
    from repro.l2cap import CocConfig

    plane = BlePlane()
    conn = plane.connect(0, 1, anchor0=MSEC)
    coc = L2capCoc(conn, CocConfig(initial_credits=4), handshake=True)
    coc.accept_psm(IPSP_PSM)
    coc.open_channel(plane.nodes[0])
    plane.sim.run(until=1 * SEC)
    assert coc.end_of(plane.nodes[0]).credits == 4
    assert coc.end_of(plane.nodes[1]).credits == 4
