"""Differential proof: churn runtime behaviour is byte-identical across
worker counts and spatial indexes.

One pinned churn + mobility + MAC-rotation scenario runs (a) inline in
this process, (b) in forked workers, and (c) under the brute-force
all-pairs spatial index instead of the grid.  All three must serialize to
the byte-identical JSONL trace and carry the same churn-schedule digest:
the workload layer adds randomness only through sha256 sub-seeded streams
(:func:`repro.sim.rng.subseed`), never through process- or index-dependent
state.

The complementary regression -- a run with every workload axis *disabled*
is byte-identical to the pre-workload simulator -- is carried by the three
pinned goldens in ``tests/trace/test_golden.py`` (committed before the
workload layer existed and untouched since) plus the explicit
``test_workload_off_run_is_clean`` here.
"""

import dataclasses

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.parallel import ParallelEngine
from repro.exp.runner import run_experiment
from repro.sim.units import s_to_ns
from repro.trace.sinks import records_to_jsonl
from repro.workload import WorkloadSpec, build_churn_schedule
from tests.support.lockstep import assert_logs_identical

#: The pinned differential scenario: 10 nodes on a seeded random-geometric
#: layout, Poisson churn with a fail-stop mix, random-waypoint mobility
#: invalidating the spatial index every simulated second, and compressed
#: RPA rotation so identities out-live several MAC changes.
CHURN_CFG = ExperimentConfig(
    name="workload-differential",
    topology="dynamic",
    n_nodes=10,
    conn_interval="[65:85]",
    warmup_s=20.0,
    duration_s=12.0,
    drain_s=8.0,
    seed=5,
    geometry="rgg",
    spatial_index="grid",
    trace=True,
    trace_layers="sixlo,ip,coap,workload",
    churn={"mean_up_s": 14.0, "mean_down_s": 5.0},
    mobility={"step_s": 1.0},
    mac_rotation={"period_s": 12.0, "jitter_s": 3.0},
)


@pytest.fixture(scope="module")
def inline_run():
    """The scenario executed inline (``max_workers=1``), shared: the run is
    the slow part, the comparisons are cheap."""
    results = ParallelEngine(max_workers=1).run([CHURN_CFG])
    assert results[0].ok, results[0].error
    return results[0].result


@pytest.fixture(scope="module")
def forked_run():
    results = ParallelEngine(max_workers=4).run([CHURN_CFG])
    assert results[0].ok, results[0].error
    return results[0].result


def _jsonl_lines(result):
    return records_to_jsonl(result.trace_records).splitlines()


def test_scenario_actually_churns(inline_run):
    """Guard against a vacuous differential: the pinned scenario must
    exercise every axis it claims to compare."""
    wl = inline_run.workload
    assert wl["departures"] >= 3
    assert wl["failstops"] >= 1
    assert wl["failstops"] < wl["departures"]  # both departure flavours
    assert wl["moves"] > 100
    assert wl["rotations"] >= 10
    assert wl["reconverged"] and wl["departed_at_end"] == []


def test_trace_identical_across_worker_counts(inline_run, forked_run):
    assert_logs_identical(
        _jsonl_lines(inline_run), _jsonl_lines(forked_run), "w1", "w4"
    )


def test_workload_summary_ships_through_workers(inline_run, forked_run):
    assert forked_run.workload == inline_run.workload


def test_trace_identical_across_spatial_indexes(inline_run):
    allpairs = run_experiment(
        dataclasses.replace(CHURN_CFG, spatial_index="allpairs")
    )
    assert_logs_identical(
        _jsonl_lines(inline_run), _jsonl_lines(allpairs), "grid", "allpairs"
    )
    assert allpairs.workload == inline_run.workload


def test_repeat_run_in_warm_process_is_byte_identical(inline_run):
    """Hundreds of simulations may precede this one in the test process;
    the trace must not care."""
    again = run_experiment(CHURN_CFG)
    assert_logs_identical(_jsonl_lines(inline_run), _jsonl_lines(again))


def test_schedule_digest_matches_offline_recomputation(inline_run):
    """The digest in the result is reproducible from the config alone --
    the handle CI artifacts and cross-machine comparisons key on."""
    spec = WorkloadSpec.from_config(CHURN_CFG)
    sched = build_churn_schedule(
        spec.churn,
        CHURN_CFG.seed,
        CHURN_CFG.n_nodes,
        s_to_ns(CHURN_CFG.warmup_s),
        s_to_ns(CHURN_CFG.warmup_s + CHURN_CFG.duration_s),
    )
    assert sched.digest() == inline_run.workload["schedule_digest"]
    assert sched.departures() == inline_run.workload["departures"]


def test_workload_off_run_is_clean():
    """With every axis disabled no driver is built: no workload records,
    no workload summary, and (run twice) a byte-identical trace -- the
    explicit half of the 'mobility-off equals pre-workload' regression."""
    cfg = ExperimentConfig(
        name="workload-off",
        topology="dynamic",
        n_nodes=6,
        conn_interval="[65:85]",
        warmup_s=15.0,
        duration_s=8.0,
        drain_s=5.0,
        seed=9,
        trace=True,
        trace_layers="sixlo,ip,coap,workload",
    )
    first = run_experiment(cfg)
    second = run_experiment(cfg)
    assert first.workload is None
    assert not any(r.layer == "workload" for r in first.trace_records)
    assert_logs_identical(_jsonl_lines(first), _jsonl_lines(second))
