"""Mutation proofs: the churn checkers fire when healing logic is broken.

A liveness suite that always passes proves little until something breaks
it on purpose.  Each test here disables one load-bearing piece of the
arrival path (radio resume, dynconn restart, RPL state reset, radio
silencing) and asserts the matching detector -- the reconvergence check,
the re-attach measurement, or the streaming
:class:`~repro.trace.invariants.ReattachChecker` -- reports exactly that
defect.  The healthy control runs live in ``test_liveness.py``.
"""

import pytest

from repro.sim.units import SEC
from repro.testbed.dynamic import DynamicBleNetwork
from repro.testbed.traffic import Consumer, Producer, TrafficConfig
from repro.trace.invariants import CheckerSink, ReattachChecker
from repro.trace.tracer import TRACE
from repro.workload import ChurnSpec, WorkloadSpec
from tests.support.churnnet import (
    install_driver,
    run_window_and_heal,
    warm_joined_net,
)


@pytest.fixture(autouse=True)
def _clean_singleton():
    TRACE.reset()
    yield
    TRACE.reset()


def _single_victim_cycle(net, victim, down_s=12.0, seed=0):
    """Arm a one-departure trace-mode churn window starting shortly."""
    t0_s = net.sim.now / SEC + 1.0
    spec = WorkloadSpec(churn=ChurnSpec(
        mode="trace",
        events=(
            (t0_s, victim, "depart", True),
            (t0_s + down_s, victim, "arrive", False),
        ),
    ))
    window_s = t0_s + down_s + 1.0 - net.sim.now / SEC
    return install_driver(net, spec, seed, window_s), window_s


class TestHealingMutations:
    def test_broken_radio_resume_fails_reconvergence(self):
        """A radio that stays dead after 'arrival' must be caught by the
        liveness gate: the victim can never advertise, so the network
        cannot reconverge."""
        net = warm_joined_net(6, seed=11)
        victim = 2
        net.nodes[victim].controller.scheduler.resume = lambda now_ns: None
        driver, window_s = _single_victim_cycle(net, victim, seed=11)
        ok = run_window_and_heal(net, driver, window_s, heal_deadline_s=60)
        assert driver.arrivals == 1  # the arrival event itself ran
        assert not ok, "dead radio went undetected by the liveness check"
        assert not net.rpls[victim].joined

    def test_broken_dynconn_restart_fails_reconvergence(self):
        """If the returning node never restarts topology formation it
        stays detached forever -- same gate, different broken stage."""
        net = warm_joined_net(6, seed=11)
        victim = 3
        net.dynconns[victim].start = lambda: None
        driver, window_s = _single_victim_cycle(net, victim, seed=11)
        ok = run_window_and_heal(net, driver, window_s, heal_deadline_s=60)
        assert driver.arrivals == 1
        assert not ok
        assert not net.rpls[victim].joined

    def test_broken_rpl_reset_is_caught_by_reattach_accounting(self):
        """A no-op ``rpl.reset`` leaves the victim *claiming* a stale
        DODAG membership, so the coarse reconvergence predicate is blind
        to it -- the re-attach measurement and the joined-implies-uplink
        invariant are what catch this mutation class."""
        net = warm_joined_net(6, seed=11)
        victim = 4
        net.rpls[victim].reset = lambda: None
        driver, window_s = _single_victim_cycle(net, victim, seed=11)
        run_window_and_heal(net, driver, window_s, heal_deadline_s=60)
        assert driver.arrivals == 1
        assert driver.reattach_latencies == [], (
            "a node that never truly rejoined must not report a re-attach"
        )
        # the contradictory state the structural invariant trips on:
        # membership claimed on stale rank, with no live uplink behind it
        assert net.rpls[victim].joined
        assert not net.dynconns[victim].has_uplink()

    def test_unbroken_control_heals_and_measures(self):
        """The same cycle with nothing stubbed: reconverges, measures one
        re-attach -- the mutations above fail for their stated reasons,
        not because the scenario is impossible."""
        net = warm_joined_net(6, seed=11)
        driver, window_s = _single_victim_cycle(net, 2, seed=11)
        ok = run_window_and_heal(net, driver, window_s, heal_deadline_s=60)
        assert ok
        assert [node_id for node_id, _ in driver.reattach_latencies] == [2]


class TestReattachCheckerLive:
    """The streaming checker against a real stack with a broken fail-stop."""

    def _traced_relay_net(self, seed=8):
        """A churn-ready net with the checker armed and traffic relaying
        through a depth-1 router (so its silence is observable)."""
        checkers = CheckerSink([ReattachChecker()])
        TRACE.configure(sinks=[checkers])
        net = DynamicBleNetwork(6, seed=seed)
        TRACE.attach_sim(net.sim)
        net.start()
        deadline = 120 * SEC
        while not net.fully_joined() and net.sim.now < deadline:
            net.run(net.sim.now + 5 * SEC)
        assert net.fully_joined()
        # a child routing through a non-root parent
        child = next(
            (n for n in range(1, 6) if net.rpls[n].hops_to_root() == 2), None
        )
        assert child is not None, "topology has no depth-2 node; pick a new seed"
        parent_addr = net.rpls[child].parent
        victim = next(
            n for n in range(1, 6)
            if net.nodes[n].mesh_local == parent_addr
        )
        Consumer(net.nodes[0])
        producer = Producer(
            net.nodes[child],
            net.nodes[0].mesh_local,
            config=TrafficConfig(interval_ns=SEC // 4, jitter_ns=SEC // 20),
        )
        producer.start()
        return net, checkers, victim

    def test_broken_fail_stop_trips_departed_silence(self):
        """Mutation: the 'fail-stop' never silences the radio.  The
        departed relay keeps receiving its child's packets, which is
        exactly the no-data-to-departed-nodes invariant."""
        net, checkers, victim = self._traced_relay_net()
        net.run(net.sim.now + 5 * SEC)
        checkers.finish()
        assert checkers.violations == [], "healthy relay already violated"
        net.nodes[victim].controller.scheduler.fail_stop = lambda: None
        driver, window_s = _single_victim_cycle(net, victim, down_s=20.0)
        net.run(net.sim.now + round(window_s * SEC))
        found = [
            v for v in checkers.violations
            if v.checker == "reattach" and "while departed" in v.message
        ]
        assert found, "undead departed node went undetected"

    def test_honest_fail_stop_keeps_the_checker_silent(self):
        """Control: with the real fail-stop, the relay goes silent and the
        checker has nothing to say through an identical cycle."""
        net, checkers, victim = self._traced_relay_net()
        net.run(net.sim.now + 5 * SEC)
        driver, window_s = _single_victim_cycle(net, victim, down_s=20.0)
        ok = run_window_and_heal(net, driver, window_s)
        checkers.finish()
        assert ok
        assert [v for v in checkers.violations if v.checker == "reattach"] == []
