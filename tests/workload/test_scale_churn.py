"""Scale-tier churn liveness (non-blocking CI step, ``-m scale``).

The same reconvergence property ``test_liveness.py`` gates at paper-scale
fleet sizes, pushed to a 40-node fleet with heavier concurrent churn.
Excluded from tier-1 (minutes of formation wall clock); CI runs it in the
non-blocking scale step alongside the 500/1000-node spatial differentials.
"""

import pytest

from repro.workload import ChurnSpec
from tests.support.churnnet import churn_cycle


@pytest.mark.scale
@pytest.mark.parametrize("seed", (1, 2, 3))
def test_scale_fleet_reconverges_after_churn(seed):
    churn = ChurnSpec(mean_up_s=15.0, mean_down_s=6.0, fail_fraction=0.5)
    net, driver, ok = churn_cycle(40, seed, churn, window_s=60)
    assert driver.schedule.max_departed() <= max(1, int(0.3 * 39))
    assert driver.departures >= 5, "scale cell churned too little to prove anything"
    assert ok, f"40-node fleet failed to reconverge (seed {seed}): {driver.summary()}"
