"""Churn-schedule purity: the generator is a deterministic function.

The differential suite (``test_differential.py``) proves the *runtime* is
byte-identical across worker counts and spatial indexes; this file proves
the *plan* itself is pure -- same ``(spec, seed, n_nodes, window)``, same
events, same digest, in any process, with no dependence on how many other
nodes exist or which RNG streams the rest of the simulator has pulled.
"""

import random

import pytest

from repro.sim.rng import RngRegistry, subseed
from repro.sim.units import SEC
from repro.workload import ChurnSpec, build_churn_schedule

WINDOW = (10 * SEC, 300 * SEC)


def build(spec=None, seed=42, n_nodes=16, window=WINDOW):
    return build_churn_schedule(spec or ChurnSpec(), seed, n_nodes, *window)


class TestDeterminism:
    #: Digest of ``build_churn_schedule(ChurnSpec(), 42, 16, 10s, 300s)``,
    #: pinned.  A change means the generator's draws moved -- every churn
    #: golden trace is invalidated with it, which must be deliberate.
    GOLDEN_DIGEST = (
        "32994406c8b5b18c783cec40755adb022f6bab16a89646944b7e7110191e31fa"
    )

    def test_repeated_builds_are_identical(self):
        a, b = build(), build()
        assert a.events == b.events
        assert a.digest() == b.digest()

    def test_pinned_digest(self):
        assert build().digest() == self.GOLDEN_DIGEST

    def test_digest_varies_with_seed_and_window(self):
        assert build(seed=43).digest() != self.GOLDEN_DIGEST
        assert build(window=(10 * SEC, 299 * SEC)).digest() != self.GOLDEN_DIGEST

    def test_node_streams_are_independent_of_fleet_size(self):
        """Adding nodes never shifts an existing node's draws.

        With ``max_departed_fraction=1`` the cap can never drop an
        interval (each node has at most one open at a time), so the
        per-node event streams must match between a 6- and a 9-node build.
        """
        spec = ChurnSpec(max_departed_fraction=1.0)
        small = build(spec, n_nodes=6)
        large = build(spec, n_nodes=9)
        for node in range(1, 6):
            assert [e for e in small.events if e.node_id == node] == [
                e for e in large.events if e.node_id == node
            ]

    def test_building_draws_nothing_from_registry_streams(self):
        """The satellite-3 fix, stated directly: churn planning derives its
        randomness via sha256 sub-seeds, so enabling it cannot perturb the
        traffic/medium/interval streams a run would otherwise draw."""
        rngs = RngRegistry(42)
        names = ("medium", "clock-drift", "traffic-3", "intervals-2", "node1")
        before = {name: rngs.stream(name).getstate() for name in names}
        build()
        for name in names:
            assert rngs.stream(name).getstate() == before[name]

    def test_workload_subseeds_are_mutually_disjoint(self):
        streams = {
            subseed(42, "workload-churn", 1),
            subseed(42, "workload-mobility", 1),
            subseed(42, "workload-rotation", 1),
            subseed(42, "traffic-1"),
            subseed(42, "medium"),
        }
        assert len(streams) == 5


class TestStructure:
    @pytest.mark.parametrize("seed", range(20))
    def test_events_are_paired_ordered_and_windowed(self, seed):
        start, end = WINDOW
        sched = build(seed=seed)
        assert list(sched.events) == sorted(
            sched.events, key=lambda e: (e.time_ns, e.node_id, e.action)
        )
        departed = {}
        for event in sched.events:
            assert 1 <= event.node_id < 16  # node 0 (the root) never churns
            if event.action == "depart":
                assert event.node_id not in departed
                assert start <= event.time_ns < end
                departed[event.node_id] = event.time_ns
            else:
                assert event.action == "arrive"
                assert not event.fail  # fail marks departures only
                assert event.time_ns > departed.pop(event.node_id)
                assert event.time_ns <= end
        assert not departed, "every departure must have a paired arrival"

    @pytest.mark.parametrize("seed", range(20))
    def test_cap_bounds_simultaneous_departures(self, seed):
        spec = ChurnSpec(mean_up_s=5.0, mean_down_s=20.0)  # heavy pressure
        sched = build(spec, seed=seed, n_nodes=11)
        assert sched.max_departed() <= max(1, int(0.3 * 10))

    def test_fail_fraction_extremes(self):
        all_graceful = build(ChurnSpec(fail_fraction=0.0))
        assert not any(e.fail for e in all_graceful.events)
        all_fail = build(ChurnSpec(fail_fraction=1.0))
        departs = [e for e in all_fail.events if e.action == "depart"]
        assert departs and all(e.fail for e in departs)

    def test_degenerate_inputs_yield_empty_schedules(self):
        assert build(window=(300 * SEC, 10 * SEC)).events == ()
        assert build(n_nodes=1).events == ()

    def test_digest_of_empty_schedule_is_stable(self):
        assert build(n_nodes=1).digest() == build(n_nodes=1).digest()


def _trace_spec(events):
    return ChurnSpec(mode="trace", events=tuple(events))


class TestTraceReplay:
    def test_valid_trace_is_ordered_and_kept(self):
        spec = _trace_spec([
            (30.0, 2, "depart", True),
            (40.0, 2, "arrive", False),
            (20.0, 1, "depart", False),
            (25.0, 1, "arrive", False),
        ])
        sched = build(spec, n_nodes=4, window=(0, 100 * SEC))
        assert [e.node_id for e in sched.events] == [1, 1, 2, 2]
        assert [e.time_ns for e in sched.events] == [
            20 * SEC, 25 * SEC, 30 * SEC, 40 * SEC,
        ]

    @pytest.mark.parametrize(
        "events, message",
        [
            ([(5.0, 0, "depart", False), (6.0, 0, "arrive", False)], "root"),
            ([(5.0, 9, "depart", False), (6.0, 9, "arrive", False)], "names node 9"),
            (
                [
                    (5.0, 1, "depart", False),
                    (6.0, 1, "depart", False),
                    (7.0, 1, "arrive", False),
                ],
                "departs twice",
            ),
            ([(5.0, 1, "arrive", False)], "arrives while present"),
            ([(5.0, 1, "depart", False)], "leaves nodes departed"),
            (
                [(500.0, 1, "depart", False), (501.0, 1, "arrive", False)],
                "beyond the churn window",
            ),
        ],
    )
    def test_inconsistent_traces_are_rejected(self, events, message):
        with pytest.raises(ValueError, match=message):
            build(_trace_spec(events), n_nodes=4, window=(0, 100 * SEC))

    def test_trace_peaking_over_cap_is_rejected(self):
        events = [(5.0 + i, i, "depart", False) for i in range(1, 4)]
        events += [(50.0 + i, i, "arrive", False) for i in range(1, 4)]
        with pytest.raises(ValueError, match="cap is"):
            build(_trace_spec(events), n_nodes=8, window=(0, 100 * SEC))


class TestCapSweep:
    def test_dropped_intervals_vanish_wholesale(self):
        """The cap drops a departure *and* its arrival, never just one
        side -- checked by brute-force replay of the accepted schedule."""
        spec = ChurnSpec(mean_up_s=3.0, mean_down_s=30.0)
        for seed in range(10):
            sched = build(spec, seed=seed, n_nodes=8)
            per_node = {}
            for event in sched.events:
                per_node.setdefault(event.node_id, []).append(event.action)
            for actions in per_node.values():
                assert actions == ["depart", "arrive"] * (len(actions) // 2)

    def test_cap_never_below_one(self):
        """Even a tiny fraction admits one departure at a time."""
        spec = ChurnSpec(mean_up_s=5.0, mean_down_s=10.0,
                         max_departed_fraction=0.01)
        sched = build(spec, seed=3, n_nodes=5)
        assert sched.departures() > 0
        assert sched.max_departed() == 1


def test_generation_is_independent_of_global_rng_state():
    """The module-level ``random`` state never leaks into a schedule."""
    random.seed(123)
    a = build()
    random.seed(999)
    for _ in range(100):
        random.random()
    b = build()
    assert a.digest() == b.digest()
