"""Liveness under churn: the network always reconverges.

The acceptance property of the workload layer: for every seed in the
matrix, a churn run that never removes more than 30 % of the (churnable)
fleet at once reaches a fully connected DODAG again within a bounded
amount of simulated time after the churn window closes
(``tests.support.churnnet.HEAL_DEADLINE_S``).

The 50-seed property test at the bottom pins the PR-6 orphan-timeout
path specifically: a torn-down node always resumes advertising, always
re-attaches, and the connection cycle never deadlocks.
"""

import random

import pytest

from repro.ble.conn import Role
from repro.sim.rng import subseed
from repro.sim.units import SEC
from repro.workload import ChurnSpec, WorkloadSpec
from tests.support.churnnet import (
    churn_cycle,
    install_driver,
    run_window_and_heal,
    warm_joined_net,
)

#: Aggressive-but-capped churn: short up-times force several concurrent
#: departures, the default 0.3 cap keeps the liveness property in scope.
MATRIX_CHURN = ChurnSpec(mean_up_s=12.0, mean_down_s=5.0, fail_fraction=0.5)

#: The seed matrix: five seeds across three fleet sizes.
MATRIX = [(n, seed) for n in (6, 9, 12) for seed in (1, 2, 3, 4, 5)]


@pytest.mark.parametrize("n_nodes, seed", MATRIX)
def test_network_reconverges_after_capped_churn(n_nodes, seed):
    net, driver, ok = churn_cycle(n_nodes, seed, MATRIX_CHURN)
    cap = max(1, int(0.3 * (n_nodes - 1)))
    assert driver.schedule.max_departed() <= cap
    assert ok, (
        f"network failed to reconverge (n={n_nodes}, seed={seed}): "
        f"{driver.summary()}"
    )
    # structural invariants after healing, same bar as the classic churn
    # suite: unique intervals, child caps respected, everyone parented
    for node, dynconn, rpl in zip(net.nodes, net.dynconns, net.rpls):
        intervals = node.controller.used_intervals_ns()
        assert len(set(intervals)) == len(intervals), "interval collision"
        assert dynconn.child_count() <= dynconn.config.max_children
        if not rpl.is_root:
            assert rpl.parent is not None
            # membership must be backed by a live uplink -- the invariant
            # that catches a stale-state arrival (see test_mutations)
            assert dynconn.has_uplink()


def test_matrix_actually_exercises_churn():
    """Anti-vacuity: the matrix spec must produce real departures of both
    flavours on the matrix seeds (else the liveness runs prove nothing)."""
    departures = failstops = 0
    for n_nodes, seed in MATRIX:
        _, driver, _ = churn_cycle(n_nodes, seed, MATRIX_CHURN, window_s=40)
        departures += driver.departures
        failstops += driver.failstops
    assert departures >= len(MATRIX)  # on average one-plus per run
    assert 0 < failstops < departures


def test_reattach_latencies_are_measured_and_sane():
    net, driver, ok = churn_cycle(9, seed=2, churn=MATRIX_CHURN)
    assert ok
    assert driver.reattach_latencies, "no re-attach was ever measured"
    for node_id, latency_ns in driver.reattach_latencies:
        assert 1 <= node_id < 9
        assert 0 < latency_ns < 120 * SEC


class TestOrphanTimeoutUnderChurn:
    """Satellite 1: the PR-6 orphan-timeout path, 50 randomized seeds."""

    def test_torn_down_node_always_readvertises_and_reattaches(self):
        for seed in range(50):
            rng = random.Random(subseed(seed, "orphan-churn-test"))
            net = warm_joined_net(6, seed=seed)
            victim = rng.randrange(1, 6)
            down_s = rng.uniform(1.0, 30.0)  # straddles the 20 s timeout
            t0_s = net.sim.now / SEC + rng.uniform(0.5, 3.0)
            spec = WorkloadSpec(churn=ChurnSpec(
                mode="trace",
                events=(
                    (t0_s, victim, "depart", True),
                    (t0_s + down_s, victim, "arrive", False),
                ),
            ))
            window_s = t0_s + down_s + 1.0 - net.sim.now / SEC
            driver = install_driver(net, spec, seed, window_s)
            adv_before = net.nodes[victim].controller.adv_events
            ok = run_window_and_heal(net, driver, window_s)
            assert ok, (
                f"seed {seed}: victim {victim} never re-attached "
                f"(down {down_s:.1f}s): {driver.summary()}"
            )
            # a returning node has no links: re-attachment is only
            # reachable through fresh advertising, which must have resumed
            assert net.nodes[victim].controller.adv_events > adv_before, (
                f"seed {seed}: victim {victim} re-attached without "
                f"advertising -- connection cycle is broken"
            )
            assert net.rpls[victim].joined
            assert driver.reattach_latencies, "re-attach went unmeasured"

    def test_orphan_timeout_breaks_a_silent_uplink(self):
        """Deterministic exercise of the timeout itself: a node holding a
        live uplink that never yields a DIO must cut it after
        ``orphan_timeout_ns`` and fall back to advertising -- that firing
        is what makes the 50-seed property above deadlock-free."""
        net = warm_joined_net(6, seed=4)
        victim = next(
            node_id for node_id in range(1, 6)
            if any(
                net.nodes[node_id].controller.role_of(conn) is Role.SUBORDINATE
                for conn in net.nodes[node_id].controller.connections
            )
        )
        rpl = net.rpls[victim]
        dynconn = net.dynconns[victim]
        # deafen the victim to DIOs, then detach: it keeps its uplink
        # connection but can never rejoin through it
        real_on_dio = rpl._on_dio
        rpl._on_dio = lambda body, src: None
        rpl.detach()
        assert not rpl.joined
        assert dynconn.has_uplink()
        before = dynconn.orphan_timeouts
        net.run(net.sim.now + dynconn.config.orphan_timeout_ns + 5 * SEC)
        assert dynconn.orphan_timeouts == before + 1, (
            "silent uplink survived the orphan timeout"
        )
        # hearing again, the re-advertised victim must rejoin
        rpl._on_dio = real_on_dio
        deadline = net.sim.now + 120 * SEC
        while not net.fully_joined() and net.sim.now < deadline:
            net.run(net.sim.now + 5 * SEC)
        assert net.fully_joined(), "victim never rejoined after the timeout"
