"""Reusable churn-cycle scaffolding for the workload proof suite.

The liveness, property, and mutation suites under ``tests/workload/`` all
share one shape: warm a :class:`~repro.testbed.dynamic.DynamicBleNetwork`
until the DODAG is fully formed, bolt a
:class:`~repro.workload.WorkloadDriver` onto it, run a churn window, and
then drive the simulator until the network reconverges (or a deadline
proves it never will).  This module holds that shape once.
"""

from repro.sim.units import SEC
from repro.testbed.dynamic import DynamicBleNetwork
from repro.workload import WorkloadDriver, WorkloadSpec

#: Formation deadline: every seed/size pair used by the suites forms well
#: inside this; blowing it means formation itself regressed.
FORM_DEADLINE_S = 120

#: Healing deadline after the churn window closes.  The paper-scale bound
#: the liveness property asserts: a network that lost <= 30 % of its nodes
#: reconverges to a connected DODAG within this much simulated time.
HEAL_DEADLINE_S = 120


def warm_joined_net(n_nodes, seed, **net_kwargs):
    """A started :class:`DynamicBleNetwork` run until fully joined."""
    net = DynamicBleNetwork(n_nodes, seed=seed, **net_kwargs)
    net.start()
    deadline = FORM_DEADLINE_S * SEC
    while not net.fully_joined() and net.sim.now < deadline:
        net.run(net.sim.now + 5 * SEC)
    assert net.fully_joined(), (
        f"DODAG formation stalled (n={n_nodes}, seed={seed})"
    )
    return net


def install_driver(net, spec, seed, window_s):
    """Attach a driver and arm a churn window starting now."""
    driver = WorkloadDriver(net, spec, seed)
    start = net.sim.now
    driver.install(start, start + round(window_s * SEC))
    return driver


def run_window_and_heal(net, driver, window_s, heal_deadline_s=HEAL_DEADLINE_S):
    """Run through the churn window, then until reconvergence or deadline.

    Returns ``True`` iff every scheduled arrival has happened and every
    present node is joined to the DODAG before the deadline.
    """
    net.run(net.sim.now + round(window_s * SEC))
    deadline = net.sim.now + heal_deadline_s * SEC
    while net.sim.now < deadline:
        if driver.reconverged() and not driver.departed_now():
            return True
        net.run(net.sim.now + 5 * SEC)
    return driver.reconverged() and not driver.departed_now()


def churn_cycle(n_nodes, seed, churn, window_s=40, heal_deadline_s=HEAL_DEADLINE_S):
    """One full warm-up / churn / heal cycle; returns ``(net, driver, ok)``."""
    net = warm_joined_net(n_nodes, seed)
    driver = install_driver(net, WorkloadSpec(churn=churn), seed, window_s)
    ok = run_window_and_heal(net, driver, window_s, heal_deadline_s)
    return net, driver, ok
