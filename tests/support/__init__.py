"""Shared test scaffolding (not a test package; no test_* modules here)."""
