"""Reusable lockstep-equivalence scaffolding.

Differential suites in this repo all share one shape: drive the *same*
deterministic workload through an optimized implementation and through a
deliberately naive reference, then assert the observable logs never
diverge.  This module holds the pieces two suites already share:

* :class:`ReferenceKernel` / :class:`RefHandle` -- the classic single-heap
  event kernel, the dispatch-order reference for the timer-wheel
  (``tests/sim/test_wheel_reference.py``);
* :class:`TimerWorkload` -- the randomized schedule/cancel/rearm workload
  that exercises a kernel across every timer placement class;
* :class:`ParallelWorkload` -- the cluster-partitioned counterpart for the
  lookahead dispatcher (``tests/sim/test_lookahead.py``): independent
  per-cluster timer streams whose offsets are pinned to the lookahead
  horizon boundary, plus an ownerless global ticker that cuts windows;
* :func:`assert_logs_identical` -- byte-equality with a *useful* failure
  message (first divergence index and both sides' entries), used by the
  spatial-medium differential suite (``tests/phy/
  test_medium_differential.py``) where a bare ``assert a == b`` over tens
  of thousands of trace records would be undebuggable.
"""

import random
from heapq import heappop, heappush

from repro.sim.kernel import WHEEL_HORIZON_NS, WHEEL_SLOT_NS


class RefHandle:
    """Cancellation handle of the reference kernel."""

    __slots__ = ("when", "seq", "callback", "args", "cancelled")

    def __init__(self, when, seq, callback, args):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class ReferenceKernel:
    """The classic all-heap kernel: one binary heap, lazy cancellation.

    Implements just enough of the :class:`repro.sim.kernel.Simulator`
    surface for the equivalence workloads: ``now``, ``at``, ``after``,
    ``rearm``, ``run``, ``pending``.
    """

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._heap = []

    @property
    def now(self):
        return self._now

    def at(self, when, callback, *args):
        assert when >= self._now
        handle = RefHandle(int(when), self._seq, callback, args)
        self._seq += 1
        heappush(self._heap, (handle.when, handle.seq, handle))
        return handle

    def after(self, delay, callback, *args):
        return self.at(self._now + int(delay), callback, *args)

    def rearm(self, handle, when):
        # Reference semantics: a rearm is indistinguishable from a fresh at.
        return self.at(when, handle.callback, *handle.args)

    def run(self, until=None):
        executed = 0
        heap = self._heap
        while heap:
            when, _seq, handle = heap[0]
            if handle.cancelled:
                heappop(heap)
                continue
            if until is not None and when >= until:
                break
            heappop(heap)
            self._now = when
            handle.callback(*handle.args)
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return executed

    def pending(self):
        return sum(1 for _, _, h in self._heap if not h.cancelled)


class TimerWorkload:
    """One deterministic schedule/cancel/rearm workload bound to a kernel.

    All decisions come from a private ``random.Random(seed)``: as long as
    both kernels dispatch in the same order, both harnesses draw the same
    random sequence and therefore issue identical operations.  Any ordering
    divergence desynchronizes the logs, which the caller asserts against.
    """

    #: Offsets crossing every placement class: same-tick, same-slot,
    #: near-future wheel slots, exactly one slot, the wheel horizon, and
    #: deep overflow-heap territory.
    OFFSETS = (
        0,
        1,
        1_337,
        WHEEL_SLOT_NS - 1,
        WHEEL_SLOT_NS,
        3 * WHEEL_SLOT_NS + 17,
        WHEEL_HORIZON_NS - 1,
        WHEEL_HORIZON_NS,
        2 * WHEEL_HORIZON_NS + 23,
    )

    def __init__(self, sim, seed, max_items=400):
        self.sim = sim
        self.rng = random.Random(seed)
        self.max_items = max_items
        self.next_id = 0
        self.log = []
        self.live = {}  # id -> handle, scheduled but not fired/cancelled
        self.fired_handles = []  # candidates for rearm

    def schedule(self, when):
        rng = self.rng
        if self.fired_handles and rng.random() < 0.4:
            # Rearm reuses the fired timer object: same callback, same item
            # id, so the entry fires (and logs) again under its old id on
            # both kernels in lockstep.
            self.sim.rearm(self.fired_handles.pop(), when)
            return
        if self.next_id >= self.max_items:
            return
        item_id = self.next_id
        self.next_id += 1
        self.live[item_id] = self.sim.at(when, self.fire, item_id)

    def fire(self, item_id):
        self.log.append((self.sim.now, item_id))
        handle = self.live.pop(item_id, None)
        if handle is not None:
            self.fired_handles.append(handle)
        rng = self.rng
        for _ in range(rng.randrange(3)):
            self.schedule(self.sim.now + rng.choice(self.OFFSETS))
        if self.live and rng.random() < 0.25:
            victim = rng.choice(sorted(self.live))
            self.live.pop(victim).cancel()

    def play(self):
        """Phases of root scheduling and bounded runs, then run to empty."""
        rng = self.rng
        for _ in range(6):
            for _ in range(20):
                self.schedule(self.sim.now + rng.choice(self.OFFSETS))
            self.sim.run(until=self.sim.now + rng.choice(
                (WHEEL_SLOT_NS, WHEEL_HORIZON_NS // 2, WHEEL_HORIZON_NS * 3)
            ))
        self.sim.run()
        return self.log


class _WorkloadNode:
    """Minimal ``cluster_addr``-bearing timer owner.

    All behaviour lives in its cluster lane; the node exists so the
    dispatcher's ``owner_addr`` walk (bound method -> ``__self__`` ->
    ``cluster_addr``) resolves exactly as it does for real stack objects.
    """

    __slots__ = ("addr", "lane")

    def __init__(self, addr, lane):
        self.addr = addr
        self.lane = lane

    @property
    def cluster_addr(self):
        return self.addr

    def fire(self, item_id):
        self.lane.fire(self, item_id)


class _ClusterLane:
    """Per-cluster state of a :class:`ParallelWorkload`.

    Each cluster draws from its *own* ``random.Random``: the lookahead
    dispatcher only guarantees per-cluster subsequence order for
    uninstrumented windows, so a shared stream would desynchronize the
    workloads between modes even when dispatch is correct.  Every decision
    here depends only on this cluster's own dispatch order.
    """

    def __init__(self, workload, members, seed):
        self.workload = workload
        self.rng = random.Random(seed)
        self.log = []
        self.live = {}  # id -> handle, scheduled but not fired/cancelled
        self.fired = []  # candidates for rearm
        self.next_id = 0
        self.nodes = [_WorkloadNode(addr, self) for addr in members]

    def schedule(self, when):
        rng = self.rng
        if self.fired and rng.random() < 0.4:
            self.workload.sim.rearm(self.fired.pop(), when)
            return
        if self.next_id >= self.workload.max_items:
            return
        item_id = self.next_id
        self.next_id += 1
        node = rng.choice(self.nodes)
        self.live[item_id] = self.workload.sim.at(when, node.fire, item_id)

    def fire(self, node, item_id):
        workload = self.workload
        now = workload.sim.now
        self.log.append((now, node.addr, item_id))
        workload.merged_log.append((now, node.addr, item_id))
        handle = self.live.pop(item_id, None)
        if handle is not None:
            self.fired.append(handle)
        rng = self.rng
        for _ in range(rng.randrange(3)):
            self.schedule(now + rng.choice(workload.offsets))
        if self.live and rng.random() < 0.25:
            victim = rng.choice(sorted(self.live))
            self.live.pop(victim).cancel()


class ParallelWorkload:
    """Cluster-partitioned timer workload for the lookahead dispatcher.

    Structure mirrors :class:`TimerWorkload`, but the schedule is split
    into independent per-cluster streams (owned timers, resolved through
    the ``cluster_addr`` protocol) plus an optional ownerless global
    ticker whose timers land on the global lane and therefore *cut*
    dispatch windows.  Offsets are pinned to the lookahead horizon
    boundary -- ``horizon - 1`` (last nanosecond routed into the active
    lane), exactly ``horizon`` (first timer of the *next* window) and
    ``horizon + 1`` -- the off-by-one territory where a broken window cut
    or lane-routing comparison diverges first.

    Observable contracts, asserted by the differential suite:

    * per-cluster logs (:attr:`_ClusterLane.log`) and the global tick log
      are identical between serial and lookahead dispatch, always;
    * the interleaved :attr:`merged_log` is additionally identical
      whenever the window runs merged (TRACE/METRICS enabled) or only one
      cluster exists.
    """

    def __init__(self, sim, seed, clusters, horizon_ns,
                 max_items=150, global_every=0):
        self.sim = sim
        self.horizon_ns = int(horizon_ns)
        self.max_items = max_items
        h = self.horizon_ns
        #: Same-tick, next-tick, mid-window, and the three boundary cases.
        self.offsets = (0, 1, h // 3, h - 1, h, h + 1, 2 * h + 5)
        self.lanes = [
            _ClusterLane(self, members, seed * 1_000_003 + i)
            for i, members in enumerate(clusters)
        ]
        #: Run-horizon driver; its draws depend only on the round count,
        #: never on dispatch order, so both modes see identical phases.
        self.driver = random.Random(seed ^ 0x5EED)
        self.global_every = int(global_every)
        self.global_log = []
        self.merged_log = []

    def _global_tick(self, tick_id, remaining):
        # Bound method of the workload itself: no ``cluster_addr`` on the
        # owner, so this timer rides the global lane and barriers windows.
        self.global_log.append((self.sim.now, tick_id))
        if remaining > 0:
            self.sim.at(self.sim.now + self.global_every,
                        self._global_tick, tick_id + 1, remaining - 1)

    def play(self, rounds=6):
        """Phases of per-cluster root scheduling and bounded runs."""
        sim = self.sim
        if self.global_every:
            sim.at(sim.now + self.global_every, self._global_tick, 0, 40)
        for _ in range(rounds):
            for lane in self.lanes:
                for _ in range(8):
                    lane.schedule(sim.now + lane.rng.choice(self.offsets))
            sim.run(until=sim.now + self.driver.choice(
                (self.horizon_ns // 2, self.horizon_ns, 3 * self.horizon_ns)
            ))
        sim.run()
        return self.cluster_logs()

    def cluster_logs(self):
        """Per-cluster dispatch logs, in cluster declaration order."""
        return [list(lane.log) for lane in self.lanes]


def assert_logs_identical(log_a, log_b, label_a="a", label_b="b"):
    """Assert two observable logs are identical, reporting the first
    divergence (index, both entries, surrounding counts) on failure."""
    if log_a == log_b:
        return
    limit = min(len(log_a), len(log_b))
    for index in range(limit):
        if log_a[index] != log_b[index]:
            raise AssertionError(
                f"logs diverge at entry {index}/{limit}:\n"
                f"  {label_a}: {log_a[index]!r}\n"
                f"  {label_b}: {log_b[index]!r}"
            )
    raise AssertionError(
        f"logs share a {limit}-entry prefix but lengths differ: "
        f"{label_a} has {len(log_a)} entries, {label_b} has {len(log_b)}"
    )
