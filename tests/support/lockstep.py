"""Reusable lockstep-equivalence scaffolding.

Differential suites in this repo all share one shape: drive the *same*
deterministic workload through an optimized implementation and through a
deliberately naive reference, then assert the observable logs never
diverge.  This module holds the pieces two suites already share:

* :class:`ReferenceKernel` / :class:`RefHandle` -- the classic single-heap
  event kernel, the dispatch-order reference for the timer-wheel
  (``tests/sim/test_wheel_reference.py``);
* :class:`TimerWorkload` -- the randomized schedule/cancel/rearm workload
  that exercises a kernel across every timer placement class;
* :func:`assert_logs_identical` -- byte-equality with a *useful* failure
  message (first divergence index and both sides' entries), used by the
  spatial-medium differential suite (``tests/phy/
  test_medium_differential.py``) where a bare ``assert a == b`` over tens
  of thousands of trace records would be undebuggable.
"""

import random
from heapq import heappop, heappush

from repro.sim.kernel import WHEEL_HORIZON_NS, WHEEL_SLOT_NS


class RefHandle:
    """Cancellation handle of the reference kernel."""

    __slots__ = ("when", "seq", "callback", "args", "cancelled")

    def __init__(self, when, seq, callback, args):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class ReferenceKernel:
    """The classic all-heap kernel: one binary heap, lazy cancellation.

    Implements just enough of the :class:`repro.sim.kernel.Simulator`
    surface for the equivalence workloads: ``now``, ``at``, ``after``,
    ``rearm``, ``run``, ``pending``.
    """

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._heap = []

    @property
    def now(self):
        return self._now

    def at(self, when, callback, *args):
        assert when >= self._now
        handle = RefHandle(int(when), self._seq, callback, args)
        self._seq += 1
        heappush(self._heap, (handle.when, handle.seq, handle))
        return handle

    def after(self, delay, callback, *args):
        return self.at(self._now + int(delay), callback, *args)

    def rearm(self, handle, when):
        # Reference semantics: a rearm is indistinguishable from a fresh at.
        return self.at(when, handle.callback, *handle.args)

    def run(self, until=None):
        executed = 0
        heap = self._heap
        while heap:
            when, _seq, handle = heap[0]
            if handle.cancelled:
                heappop(heap)
                continue
            if until is not None and when >= until:
                break
            heappop(heap)
            self._now = when
            handle.callback(*handle.args)
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return executed

    def pending(self):
        return sum(1 for _, _, h in self._heap if not h.cancelled)


class TimerWorkload:
    """One deterministic schedule/cancel/rearm workload bound to a kernel.

    All decisions come from a private ``random.Random(seed)``: as long as
    both kernels dispatch in the same order, both harnesses draw the same
    random sequence and therefore issue identical operations.  Any ordering
    divergence desynchronizes the logs, which the caller asserts against.
    """

    #: Offsets crossing every placement class: same-tick, same-slot,
    #: near-future wheel slots, exactly one slot, the wheel horizon, and
    #: deep overflow-heap territory.
    OFFSETS = (
        0,
        1,
        1_337,
        WHEEL_SLOT_NS - 1,
        WHEEL_SLOT_NS,
        3 * WHEEL_SLOT_NS + 17,
        WHEEL_HORIZON_NS - 1,
        WHEEL_HORIZON_NS,
        2 * WHEEL_HORIZON_NS + 23,
    )

    def __init__(self, sim, seed, max_items=400):
        self.sim = sim
        self.rng = random.Random(seed)
        self.max_items = max_items
        self.next_id = 0
        self.log = []
        self.live = {}  # id -> handle, scheduled but not fired/cancelled
        self.fired_handles = []  # candidates for rearm

    def schedule(self, when):
        rng = self.rng
        if self.fired_handles and rng.random() < 0.4:
            # Rearm reuses the fired timer object: same callback, same item
            # id, so the entry fires (and logs) again under its old id on
            # both kernels in lockstep.
            self.sim.rearm(self.fired_handles.pop(), when)
            return
        if self.next_id >= self.max_items:
            return
        item_id = self.next_id
        self.next_id += 1
        self.live[item_id] = self.sim.at(when, self.fire, item_id)

    def fire(self, item_id):
        self.log.append((self.sim.now, item_id))
        handle = self.live.pop(item_id, None)
        if handle is not None:
            self.fired_handles.append(handle)
        rng = self.rng
        for _ in range(rng.randrange(3)):
            self.schedule(self.sim.now + rng.choice(self.OFFSETS))
        if self.live and rng.random() < 0.25:
            victim = rng.choice(sorted(self.live))
            self.live.pop(victim).cancel()

    def play(self):
        """Phases of root scheduling and bounded runs, then run to empty."""
        rng = self.rng
        for _ in range(6):
            for _ in range(20):
                self.schedule(self.sim.now + rng.choice(self.OFFSETS))
            self.sim.run(until=self.sim.now + rng.choice(
                (WHEEL_SLOT_NS, WHEEL_HORIZON_NS // 2, WHEEL_HORIZON_NS * 3)
            ))
        self.sim.run()
        return self.log


def assert_logs_identical(log_a, log_b, label_a="a", label_b="b"):
    """Assert two observable logs are identical, reporting the first
    divergence (index, both entries, surrounding counts) on failure."""
    if log_a == log_b:
        return
    limit = min(len(log_a), len(log_b))
    for index in range(limit):
        if log_a[index] != log_b[index]:
            raise AssertionError(
                f"logs diverge at entry {index}/{limit}:\n"
                f"  {label_a}: {log_a[index]!r}\n"
                f"  {label_b}: {log_b[index]!r}"
            )
    raise AssertionError(
        f"logs share a {limit}-entry prefix but lengths differ: "
        f"{label_a} has {len(log_a)} entries, {label_b} has {len(log_b)}"
    )
