"""Tests for the §6.2 shading-likelihood arithmetic."""

import pytest

from repro.core.shading import (
    detect_degradation_spans,
    network_shading_events,
    shading_events_per_hour,
    time_to_overlap_s,
    typical_events_per_hour,
    worst_case_events_per_hour,
)


def test_worst_case_matches_paper():
    """7.5 ms interval + 500 us/s drift -> overlap every 15 s, 240/h."""
    assert time_to_overlap_s(0.0075, 500.0) == pytest.approx(15.0)
    assert worst_case_events_per_hour() == pytest.approx(240.0)


def test_typical_case_matches_paper():
    """75 ms + 5 us/s -> every 4.17 h, 0.24 events/h."""
    assert time_to_overlap_s(0.075, 5.0) / 3600 == pytest.approx(4.17, abs=0.01)
    assert typical_events_per_hour() == pytest.approx(0.24, abs=0.001)


def test_network_scaling_matches_paper():
    """14 links -> 3.4 events/h, 80.6 per 24 h (§6.2)."""
    assert network_shading_events(14, 0.075, 5.0) == pytest.approx(3.36, abs=0.01)
    assert network_shading_events(14, 0.075, 5.0, hours=24) == pytest.approx(
        80.6, abs=0.1
    )


def test_input_validation():
    with pytest.raises(ValueError):
        time_to_overlap_s(0, 5.0)
    with pytest.raises(ValueError):
        time_to_overlap_s(0.075, 0)
    with pytest.raises(ValueError):
        network_shading_events(-1, 0.075, 5.0)


class TestDegradationSpans:
    def test_single_span(self):
        times = [0, 10, 20, 30, 40, 50]
        pdr = [1.0, 1.0, 0.5, 0.5, 1.0, 1.0]
        assert detect_degradation_spans(times, pdr) == [(20, 40)]

    def test_open_ended_span(self):
        times = [0, 10, 20]
        pdr = [1.0, 0.4, 0.5]
        assert detect_degradation_spans(times, pdr) == [(10, 20)]

    def test_no_degradation(self):
        assert detect_degradation_spans([0, 10], [1.0, 0.99]) == []

    def test_threshold(self):
        times = [0, 10, 20]
        pdr = [0.95, 0.95, 0.95]
        assert detect_degradation_spans(times, pdr, threshold=0.9) == []
        assert detect_degradation_spans(times, pdr, threshold=0.96) == [(0, 20)]

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError):
            detect_degradation_spans([0, 1], [1.0])
