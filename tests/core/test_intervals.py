"""Tests for connection-interval policies (§6.3)."""

import random

import pytest

from repro.ble.config import CONN_INTERVAL_UNIT_NS
from repro.core.intervals import RandomWindowIntervalPolicy, StaticIntervalPolicy
from repro.sim.units import MSEC


class TestStatic:
    def test_always_same_interval(self):
        policy = StaticIntervalPolicy(75 * MSEC)
        for _ in range(5):
            assert policy.make_params([]).interval_ns == 75 * MSEC

    def test_ignores_collisions(self):
        policy = StaticIntervalPolicy(75 * MSEC)
        assert policy.make_params([75 * MSEC]).interval_ns == 75 * MSEC

    def test_quantized_to_grid(self):
        policy = StaticIntervalPolicy(76 * MSEC)
        assert policy.make_params([]).interval_ns % CONN_INTERVAL_UNIT_NS == 0

    def test_describe(self):
        assert StaticIntervalPolicy(75 * MSEC).describe() == "75"


class TestRandomWindow:
    def make(self, lo=65, hi=85, **kwargs):
        return RandomWindowIntervalPolicy(
            lo * MSEC, hi * MSEC, random.Random(7), **kwargs
        )

    def test_draws_within_window(self):
        policy = self.make()
        for _ in range(100):
            interval = policy.make_params([]).interval_ns
            assert 65 * MSEC <= interval <= 85 * MSEC
            assert interval % CONN_INTERVAL_UNIT_NS == 0

    def test_uniqueness_enforced(self):
        policy = self.make()
        used = []
        for _ in range(10):
            interval = policy.make_params(used).interval_ns
            assert interval not in used
            used.append(interval)

    def test_uniqueness_exhaustion_raises(self):
        policy = self.make(lo=65, hi=70, max_redraws=8)
        slots = [65 * MSEC + k * CONN_INTERVAL_UNIT_NS for k in range(5)]
        with pytest.raises(RuntimeError):
            policy.make_params(slots)

    def test_non_unique_mode_allows_collisions(self):
        policy = self.make(unique=False)
        used = [policy._draw() for _ in range(200)]
        # with 17 slots and 200 draws, collisions are certain
        assert len(set(used)) < len(used)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            self.make(lo=85, hi=65)
        with pytest.raises(ValueError):
            self.make(lo=75, hi=75)

    def test_describe(self):
        assert self.make().describe() == "[65:85]"

    def test_draws_are_seed_reproducible(self):
        a = RandomWindowIntervalPolicy(65 * MSEC, 85 * MSEC, random.Random(3))
        b = RandomWindowIntervalPolicy(65 * MSEC, 85 * MSEC, random.Random(3))
        assert [a._draw() for _ in range(20)] == [b._draw() for _ in range(20)]
