"""Tests for the statconn connection manager (full stack, small networks)."""

import pytest

from repro.ble.conn import DisconnectReason, Role
from repro.core.intervals import RandomWindowIntervalPolicy, StaticIntervalPolicy
from repro.core.statconn import StatconnConfig
from repro.sim.units import MSEC, SEC
from repro.testbed.topology import BleNetwork


def two_node_net(**kwargs):
    net = BleNetwork(2, seed=3, ppms=[0.0, 0.0], **kwargs)
    net.apply_edges([(0, 1)])  # node0 parent/sub, node1 child/coord
    return net


def test_link_establishes():
    net = two_node_net()
    net.run(2 * SEC)
    assert net.all_links_up()
    conn = net.nodes[1].controller.connection_to(0)
    assert conn is not None
    # child initiates => child is coordinator, parent subordinate
    assert net.nodes[1].controller.role_of(conn) is Role.COORDINATOR
    assert net.nodes[0].controller.role_of(conn) is Role.SUBORDINATE


def test_neighbor_cache_populated_on_link_up():
    net = two_node_net()
    net.run(2 * SEC)
    from repro.sixlowpan.ipv6 import Ipv6Address

    assert net.nodes[1].ip.nib.resolve(Ipv6Address.mesh_local(0)) is not None
    assert net.nodes[0].ip.nib.resolve(Ipv6Address.link_local(1)) is not None


def test_reconnect_after_forced_loss():
    net = two_node_net()
    net.run(2 * SEC)
    conn = net.nodes[1].controller.connection_to(0)
    # simulate an unexpected drop mid-run
    net.sim.at(2 * SEC + 1, lambda: conn.close(DisconnectReason.SUPERVISION_TIMEOUT))
    net.run(4 * SEC)
    assert net.all_links_up()
    new_conn = net.nodes[1].controller.connection_to(0)
    assert new_conn is not conn
    # both ends recorded the loss
    assert len(net.nodes[0].statconn.losses) == 1
    assert len(net.nodes[1].statconn.losses) == 1
    # and measured the reconnect delay in the paper's 10-100 ms band
    delays = net.nodes[1].statconn.reconnect_delays_ns
    assert len(delays) == 1
    assert delays[0] <= 200 * MSEC


def test_duplicate_link_rejected():
    net = BleNetwork(2, seed=1)
    net.nodes[0].statconn.add_link(1, Role.SUBORDINATE)
    with pytest.raises(ValueError):
        net.nodes[0].statconn.add_link(1, Role.COORDINATOR)


def test_advertiser_shared_across_sub_links():
    """A parent of several children advertises until all links are up."""
    net = BleNetwork(3, seed=5, ppms=[0.0] * 3)
    net.apply_edges([(0, 1), (0, 2)])
    net.run(3 * SEC)
    assert net.all_links_up()
    adv = net.nodes[0].statconn._advertiser
    assert adv is not None and not adv.active  # stopped once both are up


def test_interval_collision_rejection():
    """§6.3: the subordinate closes fresh connections with colliding
    intervals, forcing the coordinator to redraw."""
    policy_rng_net = BleNetwork(
        3,
        seed=11,
        ppms=[0.0] * 3,
        statconn_config_factory=lambda i: StatconnConfig(
            interval_policy=RandomWindowIntervalPolicy(
                65 * MSEC, 85 * MSEC, __import__("random").Random(100 + i)
            ),
            reject_interval_collisions=True,
        ),
    )
    net = policy_rng_net
    net.apply_edges([(0, 1), (0, 2)])
    net.run(10 * SEC)
    assert net.all_links_up()
    intervals = net.nodes[0].controller.used_intervals_ns()
    assert len(intervals) == 2
    assert intervals[0] != intervals[1]


def test_static_policy_intervals_all_equal():
    net = BleNetwork(
        3,
        seed=11,
        ppms=[0.0] * 3,
        statconn_config_factory=lambda i: StatconnConfig(
            interval_policy=StaticIntervalPolicy(75 * MSEC)
        ),
    )
    net.apply_edges([(0, 1), (0, 2)])
    net.run(5 * SEC)
    assert net.nodes[0].controller.used_intervals_ns() == [75 * MSEC, 75 * MSEC]


def test_collision_action_update_negotiates_in_place():
    """§6.3 design space: the BT 5.0 path keeps the link and re-times it."""
    import random
    from repro.core.intervals import RandomWindowIntervalPolicy

    net = BleNetwork(
        3,
        seed=13,
        ppms=[0.0] * 3,
        statconn_config_factory=lambda i: StatconnConfig(
            interval_policy=RandomWindowIntervalPolicy(
                # two slots only: the second link must collide sometimes
                73.75 * 1e6, 76.25 * 1e6, random.Random(0), unique=False
            ),
            reject_interval_collisions=True,
            collision_action="update",
        ),
    )
    net.apply_edges([(0, 1), (0, 2)])
    net.run(30 * SEC)
    assert net.all_links_up()
    intervals = net.nodes[0].controller.used_intervals_ns()
    assert len(set(intervals)) == len(intervals)
    # no connection was torn down to fix the collision
    total_rejects = sum(n.statconn.collision_rejects for n in net.nodes)
    if total_rejects:
        assert net.total_connection_losses() == 0


def test_collision_action_validation():
    import pytest as _pytest

    with _pytest.raises(ValueError):
        StatconnConfig(collision_action="explode")
