"""Tests for dynamic topology formation (dynconn + RPL)."""

import pytest

from repro.ble.conn import DisconnectReason, Role
from repro.sim.units import SEC
from repro.sixlowpan.ipv6 import Ipv6Address
from repro.testbed.dynamic import DynamicBleNetwork


def formed(n_nodes=8, seed=5, run_s=60, **kwargs):
    net = DynamicBleNetwork(n_nodes, seed=seed, **kwargs)
    net.start()
    net.run(run_s * SEC)
    return net


def test_mesh_forms_from_nothing():
    net = formed()
    assert net.fully_joined()
    links = sum(len(n.controller.connections) for n in net.nodes) // 2
    assert links == 7  # a spanning tree


def test_child_cap_respected():
    net = formed(n_nodes=10, max_children=2, seed=6, run_s=120)
    assert net.fully_joined()
    for node, dynconn in zip(net.nodes, net.dynconns):
        assert dynconn.child_count() <= 2, f"node {node.node_id} over cap"


def test_depths_consistent_with_links():
    net = formed()
    for node, rpl in zip(net.nodes, net.rpls):
        if rpl.is_root:
            assert rpl.hops_to_root() == 0
            continue
        parent_id = rpl.parent.node_id()
        parent_rpl = net.rpls[parent_id]
        assert rpl.hops_to_root() == parent_rpl.hops_to_root() + 1
        # the RPL parent is an actual BLE neighbour
        assert node.controller.connection_to(parent_id) is not None


def test_interval_uniqueness_holds_in_dynamic_mesh():
    """dynconn defaults to the §6.3 policy: no node reuses an interval."""
    net = formed(n_nodes=10, seed=7, run_s=120)
    for node in net.nodes:
        intervals = node.controller.used_intervals_ns()
        assert len(set(intervals)) == len(intervals)


def test_traffic_flows_over_formed_mesh():
    from repro.testbed.traffic import Consumer, Producer

    net = formed(seed=8)
    Consumer(net.nodes[0])
    producer = Producer(net.nodes[7], net.nodes[0].mesh_local)
    producer.start()
    net.run(90 * SEC)
    assert producer.acks_received > 0
    assert producer.pdr > 0.9


def test_router_failure_heals():
    """Killing a router's uplink re-attaches its whole subtree."""
    net = formed(n_nodes=8, seed=5, run_s=60)
    # pick a router with children
    router = next(
        d for d in net.dynconns if d.child_count() > 0 and not d.rpl.is_root
    )
    node = router.node
    uplink = next(
        conn
        for conn in node.controller.connections
        if node.controller.role_of(conn) is Role.SUBORDINATE
    )
    uplink.close(DisconnectReason.SUPERVISION_TIMEOUT)
    assert not router.rpl.joined  # detached immediately
    net.run(net.sim.now + 120 * SEC)
    assert net.fully_joined(), "the subtree must re-join"


def test_orphan_advertises_and_joined_scan():
    net = DynamicBleNetwork(3, seed=9)
    net.start()
    # before anything happens: root scans, orphans advertise
    root_dyn, orphan_dyn = net.dynconns[0], net.dynconns[1]
    assert root_dyn._scanner is not None and root_dyn._scanner.active
    assert orphan_dyn._advertiser is not None and orphan_dyn._advertiser.active
    net.run(60 * SEC)
    assert net.fully_joined()
    # fully formed: nobody advertises anymore
    for dynconn in net.dynconns:
        adv = dynconn._advertiser
        assert adv is None or not adv.active


def test_formation_deterministic_per_seed():
    a = formed(seed=11)
    b = formed(seed=11)
    assert a.formation_depths() == b.formation_depths()


def test_verify_ipss_accepts_capable_fleet():
    """With every node exposing IPSS, verification never rejects anyone."""
    net = DynamicBleNetwork(6, seed=14)
    for dynconn in net.dynconns:
        dynconn.config.verify_ipss = True
    net.start()
    net.run(90 * SEC)
    assert net.fully_joined()
    assert sum(d.ipss_rejections for d in net.dynconns) == 0
