"""Integration tests: the CoAP workload over 802.15.4 (paper §5.3)."""

from repro.ieee802154 import CsmaNetwork
from repro.sim.units import MSEC, SEC
from repro.testbed.topology import line_topology_edges, tree_topology_edges
from repro.testbed.traffic import Consumer, Producer, TrafficConfig


def test_single_hop_coap_over_154():
    net = CsmaNetwork(2, seed=2)
    net.apply_edges([(0, 1)])
    consumer = Consumer(net.nodes[0])
    producer = Producer(net.nodes[1], net.nodes[0].mesh_local)
    producer.start()
    net.sim.at(8 * SEC, producer.stop)
    net.run(10 * SEC)
    assert producer.requests_sent > 0
    assert producer.pdr == 1.0
    assert consumer.total_requests == producer.requests_sent


def test_multi_hop_forwarding_over_154():
    net = CsmaNetwork(4, seed=2)
    net.apply_edges(line_topology_edges(4))
    Consumer(net.nodes[0])
    producer = Producer(net.nodes[3], net.nodes[0].mesh_local)
    producer.start()
    net.sim.at(12 * SEC, producer.stop)
    net.run(15 * SEC)
    # forwarding chains occasionally lose a frame to ACK/data collisions
    # followed by retry exhaustion -- 802.15.4's §5.3 loss mode -- so only
    # near-perfect delivery is guaranteed here
    assert producer.pdr >= 0.9
    assert net.nodes[1].ip.forwarded > 0


def test_154_rtt_smaller_than_ble_on_idle_network():
    """§5.3: 802.15.4 delays are backoff-sized, not interval-quantized."""
    net = CsmaNetwork(4, seed=2)
    net.apply_edges(line_topology_edges(4))
    Consumer(net.nodes[0])
    producer = Producer(net.nodes[3], net.nodes[0].mesh_local)
    producer.start()
    net.sim.at(12 * SEC, producer.stop)
    net.run(15 * SEC)
    rtts = [rtt for _, rtt in producer.rtt_samples]
    mean_rtt = sum(rtts) / len(rtts)
    # 3 hops, ~5 ms per hop incl. backoff: way below one BLE conn interval
    assert mean_rtt < 75 * MSEC


def test_contention_losses_on_tree_under_load():
    """High offered load on the shared channel drops frames after retries
    -- 802.15.4's signature failure mode in the comparison."""
    net = CsmaNetwork(15, seed=4)
    net.apply_edges(tree_topology_edges())
    Consumer(net.nodes[0])
    producers = [
        Producer(
            net.nodes[i],
            net.nodes[0].mesh_local,
            config=TrafficConfig(interval_ns=60 * MSEC, jitter_ns=30 * MSEC),
        )
        for i in range(1, 15)
    ]
    for producer in producers:
        producer.start()
    net.run(20 * SEC)
    drops = sum(n.netif.drops_mac for n in net.nodes)
    assert drops > 0
    pdr = sum(p.acks_received for p in producers) / sum(
        p.requests_sent for p in producers
    )
    assert pdr < 1.0
