"""Tests for the CSMA/CA MAC and the active medium."""

import random

from repro.ieee802154.mac import Mac154, MacConfig
from repro.ieee802154.medium154 import CsmaMedium
from repro.phy.medium import InterferenceModel
from repro.sim import Simulator
from repro.sim.units import MSEC, SEC


def make_macs(n=2, seed=1, interference=None, config=None):
    sim = Simulator()
    medium = CsmaMedium(sim, random.Random(seed), interference)
    macs = [
        Mac154(sim, medium, addr=i, rng=random.Random(seed * 100 + i), config=config)
        for i in range(n)
    ]
    return sim, medium, macs


def test_single_frame_delivery_with_ack():
    sim, medium, (a, b) = make_macs()
    got = []
    b.on_frame = lambda frame: got.append(frame.payload)
    done = []
    a.on_tx_done = lambda frame, ok: done.append(ok)
    a.send(1, b"hello-154")
    sim.run(until=1 * SEC)
    assert got == [b"hello-154"]
    assert done == [True]
    assert a.tx_ok == 1


def test_queue_processes_in_order():
    sim, medium, (a, b) = make_macs()
    got = []
    b.on_frame = lambda frame: got.append(frame.payload)
    for i in range(5):
        a.send(1, bytes([i]))
    sim.run(until=1 * SEC)
    assert got == [bytes([i]) for i in range(5)]


def test_frame_to_absent_peer_drops_after_retries():
    sim, medium, (a, b) = make_macs()
    done = []
    a.on_tx_done = lambda frame, ok: done.append(ok)
    a.send(99, b"void")  # nobody home
    sim.run(until=1 * SEC)
    assert done == [False]
    assert a.tx_dropped_retries == 1
    # 1 initial try + macMaxFrameRetries
    assert a.tx_attempts == 1 + MacConfig().max_frame_retries


def test_noise_triggers_retries_then_success():
    interference = InterferenceModel(base_ber=0.0, channel_per={17: 0.5})
    sim, medium, (a, b) = make_macs(seed=5, interference=interference)
    got = []
    b.on_frame = lambda f: got.append(f.payload)
    results = []
    a.on_tx_done = lambda f, ok: results.append(ok)
    for i in range(30):
        a.send(1, bytes([i]) * 10)
    sim.run(until=30 * SEC)
    assert len(results) == 30
    assert any(results)  # some get through
    assert a.tx_attempts > 30  # retries happened
    # every delivered frame was delivered exactly once (dedupe by seq)
    assert len(got) == b.rx_frames


def test_collision_when_two_senders_align():
    """Force both senders to transmit simultaneously: both frames corrupt."""
    sim, medium, macs = make_macs(3)
    a, b, c = macs
    # bypass CSMA: put two frames on the air directly
    from repro.phy.frames import ieee802154_air_time_ns

    outcomes = []
    dur = ieee802154_air_time_ns(50)
    sim.at(1000, lambda: medium.transmit(a, 17, 50, dur, outcomes.append))
    sim.at(1000, lambda: medium.transmit(b, 17, 50, dur, outcomes.append))
    sim.run(until=1 * SEC)
    assert outcomes == [False, False]
    assert medium.collisions == 2


def test_cca_sees_ongoing_transmission():
    sim, medium, macs = make_macs(2)
    from repro.phy.frames import ieee802154_air_time_ns

    dur = ieee802154_air_time_ns(100)
    sim.at(1000, lambda: medium.transmit(macs[0], 17, 100, dur, lambda ok: None))
    observed = []
    sim.at(1000 + dur // 2, lambda: observed.append(medium.channel_busy(17)))
    sim.at(1000 + dur + 1000, lambda: observed.append(medium.channel_busy(17)))
    sim.run(until=1 * SEC)
    assert observed == [True, False]


def test_contention_backoff_keeps_goodput_reasonable():
    """Seven saturating senders to one sink: collisions happen (the CCA
    turnaround is blind, §5.3's contention losses), but binary exponential
    backoff still delivers the bulk of the frames."""
    sim, medium, macs = make_macs(8, seed=3)
    sink = macs[0]
    received = []
    sink.on_frame = lambda f: received.append(f.src)
    for sender in macs[1:]:
        for i in range(20):
            sender.send(0, bytes([sender.addr, i]))
    sim.run(until=30 * SEC)
    total_sent = 7 * 20
    assert medium.collisions > 0
    assert len(received) >= 0.7 * total_sent
    # drop-after-retries is 802.15.4's failure mode: it must appear here
    assert sum(m.tx_dropped_retries for m in macs[1:]) > 0


def test_duplicate_suppression_on_lost_ack():
    """If the ACK collides, the retransmitted frame is deduped by seq."""
    interference = InterferenceModel(base_ber=2e-3)  # short ACKs also die
    sim, medium, (a, b) = make_macs(seed=11, interference=interference)
    got = []
    b.on_frame = lambda f: got.append(f.seq)
    for i in range(200):
        a.send(1, bytes(20))
    sim.run(until=120 * SEC)
    assert b.rx_dupes > 0  # at least one ACK loss caused a redundant rx
    assert len(got) == len(set(got)) or b.rx_frames == len(got)
