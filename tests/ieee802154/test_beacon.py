"""Tests for beacon-enabled PANs (the §8 shading generalization)."""

import random

import pytest

from repro.ieee802154.beacon import BeaconedPan
from repro.ieee802154.medium154 import CsmaMedium
from repro.phy.medium import InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC


def make_pan(sim=None, medium=None, ppm=0.0, interval_ms=983, offset_ms=1, **kw):
    sim = sim or Simulator()
    medium = medium or CsmaMedium(sim, random.Random(1), InterferenceModel(base_ber=0.0))
    pan = BeaconedPan(
        sim, medium, DriftingClock(sim, ppm=ppm),
        interval_ms * MSEC, offset_ns=offset_ms * MSEC, **kw
    )
    return sim, medium, pan


def test_lone_pan_is_lossless():
    sim, _, pan = make_pan()
    pan.start()
    sim.run(until=60 * SEC)
    assert pan.stats.beacons_sent == 62  # 60 s / 0.983 s, first at 1 ms
    assert pan.stats.beacon_pdr() == 1.0
    assert pan.stats.frame_pdr() == 1.0
    assert pan.stats.frames_sent == pan.stats.beacons_sent * pan.burst_frames


def test_beacon_pacing_follows_drifting_clock():
    sim, _, fast = make_pan(ppm=200.0, interval_ms=1000)
    fast.start()
    sim.run(until=100 * SEC)
    # a +200 ppm clock squeezes in a hair more beacons over 100 s
    expected = 100_000 / (1000 / (1 + 200e-6))
    assert fast.stats.beacons_sent == pytest.approx(expected, abs=1)


def test_overlapping_superframes_collide():
    sim = Simulator()
    medium = CsmaMedium(sim, random.Random(2), InterferenceModel(base_ber=0.0))
    _, _, pan_a = make_pan(sim, medium, interval_ms=983, offset_ms=1)
    _, _, pan_b = make_pan(sim, medium, interval_ms=983, offset_ms=4)  # inside A
    pan_a.start()
    pan_b.start()
    sim.run(until=60 * SEC)
    assert pan_a.stats.beacon_pdr() < 0.5 or pan_b.stats.beacon_pdr() < 0.5
    assert medium.collisions > 0


def test_separated_superframes_coexist():
    sim = Simulator()
    medium = CsmaMedium(sim, random.Random(2), InterferenceModel(base_ber=0.0))
    _, _, pan_a = make_pan(sim, medium, offset_ms=1)
    _, _, pan_b = make_pan(sim, medium, offset_ms=400)  # far apart
    pan_a.start()
    pan_b.start()
    sim.run(until=60 * SEC)
    assert pan_a.stats.beacon_pdr() == 1.0
    assert pan_b.stats.beacon_pdr() == 1.0


def test_stop_halts_superframes():
    sim, _, pan = make_pan()
    pan.start()
    sim.run(until=10 * SEC)
    count = pan.stats.beacons_sent
    pan.stop()
    sim.run(until=20 * SEC)
    assert pan.stats.beacons_sent == count


def test_missed_beacon_suppresses_burst():
    sim = Simulator()
    medium = CsmaMedium(
        sim, random.Random(3), InterferenceModel(base_ber=0.0, channel_per={17: 1.0})
    )
    _, _, pan = make_pan(sim, medium)
    pan.start()
    sim.run(until=10 * SEC)
    assert pan.stats.beacons_sent > 0
    assert pan.stats.beacons_received == 0
    assert pan.stats.frames_sent == 0
    assert pan.stats.beacon_pdr() == 0.0
