"""Tests for the 802.15.4 network interface."""

from repro.ieee802154 import CsmaNetwork
from repro.sim.units import SEC
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet, UdpDatagram


def linked_net():
    net = CsmaNetwork(2, seed=91)
    net.apply_edges([(0, 1)])
    return net


def make_packet(src_id, dst_id, payload_len=60):
    src = Ipv6Address.mesh_local(src_id)
    dst = Ipv6Address.mesh_local(dst_id)
    dgram = UdpDatagram(5683, 5683, bytes(payload_len - 8))
    return Ipv6Packet(src=src, dst=dst, payload=dgram.encode(src, dst))


def test_send_and_receive():
    net = linked_net()
    got = []
    net.nodes[0].udp.bind(5683, lambda p, src, sport: got.append(p))
    assert net.nodes[1].netif.send(make_packet(1, 0), next_hop_ll=0)
    net.run(1 * SEC)
    assert len(got) == 1
    assert net.nodes[1].netif.tx_packets == 1
    assert net.nodes[0].netif.rx_packets == 1


def test_pktbuf_held_until_mac_completion():
    net = linked_net()
    netif = net.nodes[1].netif
    assert netif.send(make_packet(1, 0), next_hop_ll=0)
    assert net.nodes[1].pktbuf.used > 0
    net.run(1 * SEC)
    assert net.nodes[1].pktbuf.used == 0


def test_mac_drop_frees_pktbuf_and_counts():
    net = linked_net()
    netif = net.nodes[1].netif
    assert netif.send(make_packet(1, 99), next_hop_ll=99)  # nobody there
    net.run(2 * SEC)
    assert netif.drops_mac == 1
    assert net.nodes[1].pktbuf.used == 0


def test_oversize_packet_takes_fragmentation_path():
    """Datagrams above the frame budget go through RFC 4944 fragments."""
    net = linked_net()
    got = []
    net.nodes[0].udp.bind(5683, lambda p, src, sport: got.append(len(p)))
    big = make_packet(1, 0, payload_len=200)  # 240-byte IP packet
    assert net.nodes[1].netif.send(big, next_hop_ll=0)
    net.run(2 * SEC)
    assert got == [192]
    assert net.nodes[1].netif.tx_fragmented_datagrams == 1


def test_pktbuf_exhaustion():
    net = CsmaNetwork(2, seed=92, pktbuf_capacity=128)
    net.apply_edges([(0, 1)])
    netif = net.nodes[1].netif
    results = [netif.send(make_packet(1, 0), next_hop_ll=0) for _ in range(5)]
    assert not all(results)
    assert netif.drops_pktbuf > 0


def test_compression_shared_with_ble_path():
    """The same IPHC adaptation runs over 802.15.4 (fair comparison)."""
    net = linked_net()
    netif = net.nodes[1].netif
    netif.send(make_packet(1, 0), next_hop_ll=0)
    assert netif.adaptation.packets_down == 1
    assert netif.adaptation.bytes_out < netif.adaptation.bytes_in
