"""Tests for named deterministic random streams."""

from repro.sim import RngRegistry


def test_same_name_returns_same_stream_object():
    reg = RngRegistry(42)
    assert reg.stream("phy") is reg.stream("phy")


def test_streams_reproducible_across_registries():
    a = RngRegistry(42).stream("phy")
    b = RngRegistry(42).stream("phy")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    reg = RngRegistry(42)
    a = reg.stream("phy")
    b = reg.stream("traffic")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RngRegistry(1).stream("phy")
    b = RngRegistry(2).stream("phy")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_is_deterministic_and_distinct():
    reg = RngRegistry(7)
    f1 = reg.fork("rep0")
    f2 = RngRegistry(7).fork("rep0")
    assert f1.seed == f2.seed
    assert f1.seed != reg.seed
    assert reg.fork("rep0").seed != reg.fork("rep1").seed


def test_stream_order_does_not_matter():
    """Stream contents depend only on (seed, name), not creation order."""
    r1 = RngRegistry(9)
    r1.stream("a")
    x = r1.stream("b").random()
    r2 = RngRegistry(9)
    y = r2.stream("b").random()
    assert x == y
