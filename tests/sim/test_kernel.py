"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Simulator, SEC, MSEC
from repro.sim.kernel import SimulationError


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.at(30, lambda: fired.append(30))
    sim.at(10, lambda: fired.append(10))
    sim.at(20, lambda: fired.append(20))
    sim.run()
    assert fired == [10, 20, 30]


def test_same_timestamp_fires_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in ("a", "b", "c"):
        sim.at(5, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.at(123, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [123]
    assert sim.now == 123


def test_after_is_relative_to_now():
    sim = Simulator()
    seen = []
    sim.at(100, lambda: sim.after(50, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [150]


def test_run_until_excludes_horizon_events():
    sim = Simulator()
    fired = []
    sim.at(10, lambda: fired.append(10))
    sim.at(20, lambda: fired.append(20))
    sim.run(until=20)
    assert fired == [10]
    assert sim.now == 20
    # the horizon event is still pending and fires on the next run
    sim.run()
    assert fired == [10, 20]


def test_run_until_advances_now_without_events():
    sim = Simulator()
    sim.run(until=5 * SEC)
    assert sim.now == 5 * SEC


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    timer = sim.at(10, lambda: fired.append("nope"))
    timer.cancel()
    sim.at(20, lambda: fired.append("yes"))
    sim.run()
    assert fired == ["yes"]


def test_cancel_from_within_callback():
    sim = Simulator()
    fired = []
    later = sim.at(20, lambda: fired.append("later"))
    sim.at(10, later.cancel)
    sim.run()
    assert fired == []


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(50, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    sim.at(10, lambda: (fired.append(10), sim.stop()))
    sim.at(20, lambda: fired.append(20))
    sim.run()
    assert fired == [10]
    sim.run()
    assert fired == [10, 20]


def test_peek_skips_cancelled():
    sim = Simulator()
    t1 = sim.at(10, lambda: None)
    sim.at(20, lambda: None)
    t1.cancel()
    assert sim.peek() == 20


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.at(i * MSEC, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_periodic_rescheduling_pattern():
    sim = Simulator()
    ticks = []

    def tick():
        ticks.append(sim.now)
        if len(ticks) < 4:
            sim.after(MSEC, tick)

    sim.after(MSEC, tick)
    sim.run()
    assert ticks == [MSEC, 2 * MSEC, 3 * MSEC, 4 * MSEC]
