"""The connection-cluster partition (``repro.sim.cluster``).

The lookahead dispatcher's soundness rests on three properties pinned
here: the partition is *monotone* (merge-only, never splits), cluster
identity is *deterministic* (smallest member wins regardless of merge
order), and timer ownership resolves through the ``cluster_addr``
protocol exactly as documented (partial chain -> bound instance ->
attribute), with everything else falling to the global lane.
"""

from functools import partial

import pytest

from repro.sim.cluster import ClusterMap, components_of, owner_addr


class TestComponentsOf:
    def test_singletons(self):
        assert components_of({3: (), 1: (), 2: ()}) == [(1,), (2,), (3,)]

    def test_chain_is_one_component(self):
        adj = {1: (2,), 2: (1, 3), 3: (2,)}
        assert components_of(adj) == [(1, 2, 3)]

    def test_two_components_sorted_by_smallest_member(self):
        adj = {5: (7,), 7: (5,), 2: (4,), 4: (2,)}
        assert components_of(adj) == [(2, 4), (5, 7)]

    def test_asymmetric_adjacency_still_connects(self):
        # neighbor sets from a spatial index are symmetric in practice,
        # but a one-directional entry must still merge the component
        assert components_of({1: (2,), 2: ()}) == [(1, 2)]

    def test_empty(self):
        assert components_of({}) == []


class TestClusterMap:
    def test_seeded_from_components(self):
        cm = ClusterMap([(1, 2), (5,), (3, 4)])
        assert cm.roots() == [1, 3, 5]
        assert cm.clusters() == {1: (1, 2), 3: (3, 4), 5: (5,)}

    def test_merge_is_order_independent(self):
        a = ClusterMap([(1,), (2,), (3,)])
        b = ClusterMap([(1,), (2,), (3,)])
        a.merge(1, 3)
        a.merge(3, 2)
        b.merge(2, 3)
        b.merge(3, 1)
        assert a.clusters() == b.clusters() == {1: (1, 2, 3)}

    def test_smallest_member_is_root(self):
        cm = ClusterMap([(7, 9), (2, 4)])
        assert cm.merge(9, 4) == 2
        assert cm.root(7) == 2

    def test_merge_only_never_splits(self):
        cm = ClusterMap([(1, 2)])
        assert cm.same_cluster(1, 2)
        # there is deliberately no split/remove API
        assert not hasattr(cm, "split")
        assert not hasattr(cm, "remove")

    def test_version_bumps_on_structural_change_only(self):
        cm = ClusterMap([(1,), (2,)])
        v0 = cm.version
        cm.merge(1, 2)
        assert cm.version == v0 + 1
        cm.merge(1, 2)  # already merged: no structural change
        assert cm.version == v0 + 1
        cm.add(1)  # idempotent add: no structural change
        assert cm.version == v0 + 1
        cm.root(2)  # path compression must not bump either
        assert cm.version == v0 + 1
        cm.add(3)
        assert cm.version == v0 + 2

    def test_unknown_addr_auto_registers_as_singleton(self):
        cm = ClusterMap([(1, 2)])
        assert cm.root(99) == 99  # late churn arrival: no KeyError
        assert 99 in cm
        assert cm.roots() == [1, 99]

    def test_note_edge_merges(self):
        cm = ClusterMap([(1,), (2,)])
        cm.note_edge(1, 2)
        assert cm.same_cluster(1, 2)

    def test_note_mobility_merges_all_neighbors(self):
        cm = ClusterMap([(1,), (2,), (3,), (4,)])
        cm.note_mobility(4, (1, 3))
        assert cm.same_cluster(4, 1) and cm.same_cluster(4, 3)
        assert not cm.same_cluster(4, 2)

    def test_note_alias_registers_and_merges(self):
        cm = ClusterMap([(1, 2)])
        cm.note_alias(2, 77)  # RPA rotation: 77 is the same physical node
        assert cm.same_cluster(1, 77)

    def test_len_and_contains(self):
        cm = ClusterMap([(1, 2, 3)])
        assert len(cm) == 3
        assert 2 in cm and 9 not in cm


class _Owned:
    def __init__(self, addr):
        self.cluster_addr = addr

    def tick(self):
        pass


class _Unowned:
    def tick(self):
        pass


class TestOwnerAddr:
    def test_bound_method_with_cluster_addr(self):
        assert owner_addr(_Owned(5).tick) == 5

    def test_partial_chain_unwraps_to_bound_method(self):
        cb = partial(partial(_Owned(9).tick))
        assert owner_addr(cb) == 9

    def test_object_without_protocol_is_global(self):
        assert owner_addr(_Unowned().tick) is None

    def test_cluster_addr_none_is_global(self):
        # objects opt out dynamically by carrying None (e.g. TrickleTimer
        # before its RPL node binds it)
        assert owner_addr(_Owned(None).tick) is None

    def test_plain_function_and_lambda_are_global(self):
        def f():
            pass

        assert owner_addr(f) is None
        assert owner_addr(lambda: None) is None
        assert owner_addr(print) is None

    def test_addr_coerced_to_int(self):
        assert owner_addr(_Owned(True).tick) == 1
        assert isinstance(owner_addr(_Owned(7).tick), int)

    @pytest.mark.parametrize("addr", (0, 1, 2**48 - 1))
    def test_addr_zero_is_a_valid_owner(self, addr):
        # address 0 must not be confused with "no owner"
        assert owner_addr(_Owned(addr).tick) == addr
