"""Determinism properties the parallel engine's cacheability rests on.

The result cache replays a run's output without re-executing it, which is
only sound if the kernel is strictly deterministic: same seed, same
schedule, same callback firing order -- including ties, where several
timers share one timestamp.  These are property-style tests over randomized
schedules, plus the seed-derivation non-collision guarantee from
``repro.exp.repeat``.
"""

import random

import pytest

from repro.exp.repeat import SEED_STRIDE, derive_seed
from repro.sim.kernel import Simulator


def _random_schedule_trace(seed: int) -> list:
    """Build a randomized schedule (with deliberate timestamp ties and
    nested scheduling) on a fresh kernel and return the firing trace."""
    rng = random.Random(seed)
    sim = Simulator()
    trace = []

    def fire(tag):
        trace.append((sim.now, tag))
        # some callbacks schedule more work, sometimes at the *same* time
        if rng.random() < 0.3:
            sim.after(rng.choice([0, 5, 10]), fire, f"{tag}/child")

    # cluster timers on few distinct timestamps to force heavy tie-breaking
    timestamps = [rng.randrange(0, 50) * 10 for _ in range(40)]
    for i, when in enumerate(timestamps):
        sim.at(when, fire, f"t{i}")
    sim.run(until=10_000)
    return trace


class TestTieBreakDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_identical_seeds_fire_in_identical_order(self, seed):
        assert _random_schedule_trace(seed) == _random_schedule_trace(seed)

    def test_same_timestamp_timers_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for i in range(20):
            sim.at(1000, order.append, i)
        sim.run()
        assert order == list(range(20))

    def test_interleaved_same_timestamp_scheduling(self):
        """Timers scheduled from inside a callback at the current timestamp
        run after already-queued same-timestamp timers (seq order)."""
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.after(0, order.append, "nested")

        sim.at(500, first)
        sim.at(500, order.append, "second")
        sim.run()
        assert order == ["first", "second", "nested"]

    def test_cancellation_does_not_disturb_order(self):
        sim = Simulator()
        order = []
        timers = [sim.at(100, order.append, i) for i in range(10)]
        timers[3].cancel()
        timers[7].cancel()
        sim.run()
        assert order == [0, 1, 2, 4, 5, 6, 8, 9]


class TestSeedDerivation:
    def test_five_seed_sets_never_collide_across_base_seeds(self):
        """The paper's 5-repetition sets must be disjoint for every pair of
        distinct base seeds (this is what makes cached runs addressable by
        config alone)."""
        all_derived = {}
        for base in range(1, 200):
            for k in range(5):
                seed = derive_seed(base, k)
                assert seed not in all_derived, (
                    f"seed {seed} collides: base {base}/rep {k} vs "
                    f"{all_derived[seed]}"
                )
                all_derived[seed] = (base, k)

    def test_derivation_is_disjoint_up_to_stride(self):
        a = {derive_seed(1, k) for k in range(SEED_STRIDE)}
        b = {derive_seed(2, k) for k in range(SEED_STRIDE)}
        assert not a & b

    def test_out_of_range_repetition_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(1, SEED_STRIDE)
        with pytest.raises(ValueError):
            derive_seed(1, -1)

    def test_derivation_matches_repeat_configs(self):
        from repro.exp import ExperimentConfig
        from repro.exp.repeat import repetition_configs

        base = ExperimentConfig(seed=9)
        seeds = [c.seed for c in repetition_configs(base, 5)]
        assert seeds == [derive_seed(9, k) for k in range(5)]
        assert len(set(seeds)) == 5
