"""Timer-wheel kernel vs a reference heap kernel: identical dispatch.

The hierarchical wheel only changes *where* a timer waits, never *when* it
fires: dispatch order must stay strictly ``(when, seq)`` -- byte-identical
traces depend on it.  These property-style tests drive the same randomized
schedule/cancel/rearm/run workload through :class:`repro.sim.kernel.
Simulator` and through a deliberately naive single-heap kernel, and assert
the two dispatch logs, clocks, and pending counts never diverge.
"""

import random
from heapq import heappop, heappush

import pytest

from repro.sim.kernel import (
    WHEEL_HORIZON_NS,
    WHEEL_SLOT_NS,
    Simulator,
)


class _RefHandle:
    """Cancellation handle of the reference kernel."""

    __slots__ = ("when", "seq", "callback", "args", "cancelled")

    def __init__(self, when, seq, callback, args):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class ReferenceKernel:
    """The classic all-heap kernel: one binary heap, lazy cancellation.

    Implements just enough of the :class:`Simulator` surface for the
    equivalence workload: ``now``, ``at``, ``after``, ``rearm``, ``run``,
    ``pending``.
    """

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._heap = []

    @property
    def now(self):
        return self._now

    def at(self, when, callback, *args):
        assert when >= self._now
        handle = _RefHandle(int(when), self._seq, callback, args)
        self._seq += 1
        heappush(self._heap, (handle.when, handle.seq, handle))
        return handle

    def after(self, delay, callback, *args):
        return self.at(self._now + int(delay), callback, *args)

    def rearm(self, handle, when):
        # Reference semantics: a rearm is indistinguishable from a fresh at.
        return self.at(when, handle.callback, *handle.args)

    def run(self, until=None):
        executed = 0
        heap = self._heap
        while heap:
            when, _seq, handle = heap[0]
            if handle.cancelled:
                heappop(heap)
                continue
            if until is not None and when >= until:
                break
            heappop(heap)
            self._now = when
            handle.callback(*handle.args)
            executed += 1
        if until is not None and self._now < until:
            self._now = until
        return executed

    def pending(self):
        return sum(1 for _, _, h in self._heap if not h.cancelled)


class _Workload:
    """One deterministic schedule/cancel/rearm workload bound to a kernel.

    All decisions come from a private ``random.Random(seed)``: as long as
    both kernels dispatch in the same order, both harnesses draw the same
    random sequence and therefore issue identical operations.  Any ordering
    divergence desynchronizes the logs, which the test asserts against.
    """

    #: Offsets crossing every placement class: same-tick, same-slot,
    #: near-future wheel slots, exactly one slot, the wheel horizon, and
    #: deep overflow-heap territory.
    OFFSETS = (
        0,
        1,
        1_337,
        WHEEL_SLOT_NS - 1,
        WHEEL_SLOT_NS,
        3 * WHEEL_SLOT_NS + 17,
        WHEEL_HORIZON_NS - 1,
        WHEEL_HORIZON_NS,
        2 * WHEEL_HORIZON_NS + 23,
    )

    def __init__(self, sim, seed, max_items=400):
        self.sim = sim
        self.rng = random.Random(seed)
        self.max_items = max_items
        self.next_id = 0
        self.log = []
        self.live = {}  # id -> handle, scheduled but not fired/cancelled
        self.fired_handles = []  # candidates for rearm

    def schedule(self, when):
        rng = self.rng
        if self.fired_handles and rng.random() < 0.4:
            # Rearm reuses the fired timer object: same callback, same item
            # id, so the entry fires (and logs) again under its old id on
            # both kernels in lockstep.
            self.sim.rearm(self.fired_handles.pop(), when)
            return
        if self.next_id >= self.max_items:
            return
        item_id = self.next_id
        self.next_id += 1
        self.live[item_id] = self.sim.at(when, self.fire, item_id)

    def fire(self, item_id):
        self.log.append((self.sim.now, item_id))
        handle = self.live.pop(item_id, None)
        if handle is not None:
            self.fired_handles.append(handle)
        rng = self.rng
        for _ in range(rng.randrange(3)):
            self.schedule(self.sim.now + rng.choice(self.OFFSETS))
        if self.live and rng.random() < 0.25:
            victim = rng.choice(sorted(self.live))
            self.live.pop(victim).cancel()

    def play(self):
        """Phases of root scheduling and bounded runs, then run to empty."""
        rng = self.rng
        for _ in range(6):
            for _ in range(20):
                self.schedule(self.sim.now + rng.choice(self.OFFSETS))
            self.sim.run(until=self.sim.now + rng.choice(
                (WHEEL_SLOT_NS, WHEEL_HORIZON_NS // 2, WHEEL_HORIZON_NS * 3)
            ))
        self.sim.run()
        return self.log


@pytest.mark.parametrize("seed", range(12))
def test_wheel_matches_reference_heap(seed):
    """Same workload, same dispatch log, clock, and pending count."""
    wheel = _Workload(Simulator(), seed)
    ref = _Workload(ReferenceKernel(), seed)
    wheel_log = wheel.play()
    ref_log = ref.play()
    assert wheel_log == ref_log
    assert wheel.sim.now == ref.sim.now
    assert wheel.sim.pending() == ref.sim.pending()
    assert len(wheel_log) > 100  # the workload must actually exercise things


@pytest.mark.parametrize("seed", range(12, 18))
def test_wheel_matches_reference_under_horizon_runs(seed):
    """Short run horizons that stop inside empty wheel stretches."""
    rng = random.Random(seed)
    sim = Simulator()
    ref = ReferenceKernel()
    log_a, log_b = [], []
    for i in range(150):
        when = rng.randrange(0, 5 * WHEEL_HORIZON_NS)
        sim.at(when, log_a.append, (when, i))
        ref.at(when, log_b.append, (when, i))
    horizon = 0
    while horizon < 5 * WHEEL_HORIZON_NS:
        horizon += rng.randrange(1, WHEEL_HORIZON_NS)
        sim.run(until=horizon)
        ref.run(until=horizon)
        assert sim.now == ref.now
        assert log_a == log_b
    sim.run()
    ref.run()
    assert log_a == log_b
    assert len(log_a) == 150
