"""Timer-wheel kernel vs a reference heap kernel: identical dispatch.

The hierarchical wheel only changes *where* a timer waits, never *when* it
fires: dispatch order must stay strictly ``(when, seq)`` -- byte-identical
traces depend on it.  These property-style tests drive the same randomized
schedule/cancel/rearm/run workload through :class:`repro.sim.kernel.
Simulator` and through a deliberately naive single-heap kernel, and assert
the two dispatch logs, clocks, and pending counts never diverge.

The reference kernel and the workload live in ``tests/support/lockstep.py``
(shared with the spatial-medium differential suite).
"""

import random

import pytest

from repro.sim.kernel import WHEEL_HORIZON_NS, Simulator
from tests.support.lockstep import (
    ReferenceKernel,
    TimerWorkload,
    assert_logs_identical,
)


@pytest.mark.parametrize("seed", range(12))
def test_wheel_matches_reference_heap(seed):
    """Same workload, same dispatch log, clock, and pending count."""
    wheel = TimerWorkload(Simulator(), seed)
    ref = TimerWorkload(ReferenceKernel(), seed)
    wheel_log = wheel.play()
    ref_log = ref.play()
    assert_logs_identical(wheel_log, ref_log, "wheel", "reference")
    assert wheel.sim.now == ref.sim.now
    assert wheel.sim.pending() == ref.sim.pending()
    assert len(wheel_log) > 100  # the workload must actually exercise things


@pytest.mark.parametrize("seed", range(12, 18))
def test_wheel_matches_reference_under_horizon_runs(seed):
    """Short run horizons that stop inside empty wheel stretches."""
    rng = random.Random(seed)
    sim = Simulator()
    ref = ReferenceKernel()
    log_a, log_b = [], []
    for i in range(150):
        when = rng.randrange(0, 5 * WHEEL_HORIZON_NS)
        sim.at(when, log_a.append, (when, i))
        ref.at(when, log_b.append, (when, i))
    horizon = 0
    while horizon < 5 * WHEEL_HORIZON_NS:
        horizon += rng.randrange(1, WHEEL_HORIZON_NS)
        sim.run(until=horizon)
        ref.run(until=horizon)
        assert sim.now == ref.now
        assert_logs_identical(log_a, log_b, "wheel", "reference")
    sim.run()
    ref.run()
    assert_logs_identical(log_a, log_b, "wheel", "reference")
    assert len(log_a) == 150
