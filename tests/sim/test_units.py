"""Tests for time-unit conversions."""

from repro.sim.units import (
    MSEC,
    NSEC,
    SEC,
    USEC,
    ms_to_ns,
    ns_to_ms,
    ns_to_s,
    ns_to_us,
    s_to_ns,
    us_to_ns,
)


def test_constants_relate():
    assert NSEC == 1
    assert USEC == 1000 * NSEC
    assert MSEC == 1000 * USEC
    assert SEC == 1000 * MSEC


def test_ble_constants_exact_in_nanoseconds():
    """The timing quantums the whole simulator relies on are exact."""
    assert 150 * USEC == 150_000           # T_IFS
    assert int(1.25 * MSEC) == 1_250_000   # connection interval unit
    assert 625 * USEC == 625_000           # anchor offset unit


def test_roundtrips():
    assert s_to_ns(ns_to_s(123_456_789)) == 123_456_789
    assert ms_to_ns(1.5) == 1_500_000
    assert us_to_ns(2.5) == 2_500
    assert ns_to_ms(75 * MSEC) == 75.0
    assert ns_to_us(150 * USEC) == 150.0


def test_rounding():
    assert s_to_ns(1e-9) == 1
    assert ms_to_ns(0.0000004) == 0
