"""Unit and property tests for drifting clocks."""

from hypothesis import given, settings, strategies as st

from repro.sim import DriftingClock, Simulator, SEC, USEC


def test_zero_ppm_is_identity():
    sim = Simulator()
    clk = DriftingClock(sim, ppm=0.0)
    for t in (0, 1, 17, SEC, 3600 * SEC):
        assert clk.to_local(t) == t
        assert clk.to_true(t) == t


def test_positive_ppm_runs_fast():
    sim = Simulator()
    clk = DriftingClock(sim, ppm=100.0)
    # after 1 true second, a +100 ppm clock has counted 100 us extra
    assert clk.to_local(SEC) == SEC + 100 * USEC


def test_negative_ppm_runs_slow():
    sim = Simulator()
    clk = DriftingClock(sim, ppm=-100.0)
    assert clk.to_local(SEC) == SEC - 100 * USEC


def test_relative_drift_matches_paper_arithmetic():
    """Two clocks at +3/-3 ppm drift apart 6 us per second (paper §6.2)."""
    sim = Simulator()
    a = DriftingClock(sim, ppm=3.0)
    b = DriftingClock(sim, ppm=-3.0)
    assert a.relative_ppm(b) == 6.0
    drift_after_1s = a.to_local(SEC) - b.to_local(SEC)
    assert drift_after_1s == 6 * USEC


def test_local_now_follows_sim():
    sim = Simulator()
    clk = DriftingClock(sim, ppm=0.0)
    sim.at(5 * SEC, lambda: None)
    sim.run()
    assert clk.local_now() == 5 * SEC


def test_duration_conversions_are_inverse_scaled():
    sim = Simulator()
    clk = DriftingClock(sim, ppm=250.0)  # worst case allowed sleep clock
    local = clk.true_duration_to_local(SEC)
    assert local == SEC + 250 * USEC
    # converting back loses at most a few ns to integer floor
    back = clk.local_duration_to_true(local)
    assert abs(back - SEC) <= 2


@given(
    ppm=st.floats(min_value=-250.0, max_value=250.0, allow_nan=False),
    t=st.integers(min_value=0, max_value=24 * 3600 * SEC),
)
@settings(max_examples=200)
def test_to_local_monotone_and_invertible(ppm, t):
    sim = Simulator()
    clk = DriftingClock(sim, ppm=ppm)
    local = clk.to_local(t)
    # invertible up to integer rounding of the rate fraction
    assert abs(clk.to_true(local) - t) <= 2
    # monotone: one more true ns never decreases local time
    assert clk.to_local(t + 1) >= local


@given(
    ppm=st.floats(min_value=-250.0, max_value=250.0, allow_nan=False),
    dt=st.integers(min_value=1, max_value=3600 * SEC),
)
@settings(max_examples=200)
def test_drift_bounded_by_ppm(ppm, dt):
    """|local - true| over an interval never exceeds |ppm| * 1e-6 * dt (+1ns)."""
    sim = Simulator()
    clk = DriftingClock(sim, ppm=ppm)
    local_dt = clk.true_duration_to_local(dt)
    # the rate fraction is quantized to 1e-12 relative resolution, so allow
    # dt * 5e-13 of quantization slack on top of the ppm bound
    assert abs(local_dt - dt) <= abs(ppm) * 1e-6 * dt + dt * 5e-13 + 1
