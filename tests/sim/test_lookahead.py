"""Lookahead-parallel dispatch vs the serial kernel: lockstep equivalence.

The conservative-lookahead executor (``repro.sim.parallel``) re-implements
the kernel's dispatch loop as windowed, cluster-partitioned lanes.  Its
contract, asserted differentially here with the shared lockstep
scaffolding:

* **single cluster / merged windows**: dispatch is byte-identical to the
  serial kernel -- same log, same clock, same pending count, and (with
  TRACE armed) the same JSONL trace byte-for-byte;
* **multi-cluster uninstrumented windows**: each cluster observes exactly
  its serial subsequence, and global-lane timers cut windows without ever
  losing, duplicating, or reordering a timer;
* the equivalence harness itself has teeth: a deliberately broken window
  merge (mutation) must be caught by the same assertions.

:class:`tests.support.lockstep.ParallelWorkload` pins its offsets to the
lookahead horizon boundary (``horizon - 1`` / ``horizon`` /
``horizon + 1``), the off-by-one territory where a wrong window cut or
in-window lane routing comparison diverges first.
"""

import pytest

import repro.sim.parallel as parallel_mod
from repro.obs.registry import METRICS
from repro.sim.cluster import ClusterMap
from repro.sim.kernel import Simulator, SimulationError
from repro.trace.sinks import RingBufferSink, record_to_jsonl_line
from repro.trace.tracer import TRACE
from tests.support.lockstep import (
    ParallelWorkload,
    TimerWorkload,
    assert_logs_identical,
)

#: Small horizon so runs cross many window boundaries quickly.
HORIZON = 1 << 16
#: Three clusters of unequal size; addresses deliberately non-contiguous.
CLUSTERS = ((1, 2), (10, 11), (20,))


def _lookahead_sim(clusters=CLUSTERS, workers=1, horizon_ns=HORIZON):
    sim = Simulator()
    cm = ClusterMap(clusters) if clusters is not None else None
    sim.configure_dispatch(
        "lookahead", workers=workers, clusters=cm, horizon_ns=horizon_ns
    )
    return sim


class TestConfigure:
    def test_dispatch_property_round_trips(self):
        sim = Simulator()
        assert sim.dispatch == "serial"
        sim.configure_dispatch("lookahead", horizon_ns=HORIZON)
        assert sim.dispatch == "lookahead"
        assert sim._executor is not None
        sim.configure_dispatch("serial")
        assert sim.dispatch == "serial"
        assert sim._executor is None  # executor closed and dropped

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="unknown dispatch mode"):
            Simulator().configure_dispatch("speculative")

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon_ns"):
            Simulator().configure_dispatch("lookahead", horizon_ns=-1)

    def test_reconfigure_while_running_rejected(self):
        sim = _lookahead_sim(clusters=None)
        sim.at(10, lambda: sim.configure_dispatch("serial"))
        with pytest.raises(SimulationError, match="while running"):
            sim.run()


class TestSingleClusterByteIdentity:
    """With one cluster (or none) every window is one merged lane: the
    full randomized timer workload must replay serial dispatch exactly."""

    @pytest.mark.parametrize("seed", range(8))
    def test_no_clusters_matches_serial(self, seed):
        serial = TimerWorkload(Simulator(), seed)
        look = TimerWorkload(_lookahead_sim(clusters=None), seed)
        assert_logs_identical(serial.play(), look.play(), "serial", "lookahead")
        assert serial.sim.now == look.sim.now
        assert serial.sim.pending() == look.sim.pending()
        assert len(serial.log) > 100

    @pytest.mark.parametrize("seed", range(8, 12))
    def test_single_cluster_map_matches_serial(self, seed):
        look = TimerWorkload(_lookahead_sim(clusters=((1, 2, 3),)), seed)
        serial = TimerWorkload(Simulator(), seed)
        assert_logs_identical(serial.play(), look.play(), "serial", "lookahead")

    @pytest.mark.parametrize("seed", (0, 1))
    def test_thread_seam_matches_serial(self, seed):
        look = TimerWorkload(_lookahead_sim(clusters=None, workers=2), seed)
        serial = TimerWorkload(Simulator(), seed)
        try:
            assert_logs_identical(
                serial.play(), look.play(), "serial", "lookahead-w2"
            )
        finally:
            look.sim.configure_dispatch("serial")  # join worker threads


def _play_pair(seed, *, workers=1, global_every=0, horizon=HORIZON):
    """The same ParallelWorkload through both dispatch modes."""
    serial = ParallelWorkload(
        Simulator(), seed, CLUSTERS, horizon, global_every=global_every
    )
    look = ParallelWorkload(
        _lookahead_sim(workers=workers, horizon_ns=horizon),
        seed, CLUSTERS, horizon, global_every=global_every,
    )
    serial.play()
    look.play()
    return serial, look


def _assert_pair_equivalent(serial, look):
    for i, (a, b) in enumerate(zip(serial.cluster_logs(), look.cluster_logs())):
        assert_logs_identical(a, b, f"serial[c{i}]", f"lookahead[c{i}]")
        assert len(a) > 30, "cluster produced too little traffic"
    assert_logs_identical(
        serial.global_log, look.global_log, "serial[g]", "lookahead[g]"
    )
    # cross-lane interleaving may differ, but never the event multiset
    assert sorted(serial.merged_log) == sorted(look.merged_log)
    assert serial.sim.now == look.sim.now
    assert serial.sim.pending() == look.sim.pending() == 0


class TestMultiClusterEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_per_cluster_subsequences_match(self, seed):
        _assert_pair_equivalent(*_play_pair(seed))

    @pytest.mark.parametrize("seed", range(6, 10))
    def test_global_lane_window_cuts(self, seed):
        # an ownerless ticker cuts windows mid-stream; its log and every
        # cluster subsequence must still match serial dispatch
        serial, look = _play_pair(seed, global_every=HORIZON // 3 + 7)
        _assert_pair_equivalent(serial, look)
        assert len(serial.global_log) == 41

    @pytest.mark.parametrize("seed", (2, 5))
    def test_thread_seam_pair(self, seed):
        serial, look = _play_pair(seed, workers=3, global_every=HORIZON // 2)
        try:
            _assert_pair_equivalent(serial, look)
        finally:
            look.sim.configure_dispatch("serial")

    @pytest.mark.parametrize("horizon", (1 << 10, 1 << 20))
    def test_horizon_extremes(self, horizon):
        # tiny windows (every event its own window) and windows spanning
        # the whole workload must both degrade to correct dispatch
        _assert_pair_equivalent(*_play_pair(4, horizon=horizon))


class TestWindowBoundary:
    def test_boundary_offsets_fire_once_in_order(self):
        sim = _lookahead_sim(clusters=((1,), (2,)))
        log = []

        class Node:
            def __init__(self, addr):
                self.cluster_addr = addr

            def fire(self, tag):
                log.append((sim.now, self.cluster_addr, tag))

        offsets = (0, 1, HORIZON - 1, HORIZON, HORIZON + 1, 3 * HORIZON)
        for node in (Node(1), Node(2)):
            for off in offsets:
                sim.at(off, node.fire, off)
        sim.run()
        assert len(log) == 12  # every timer exactly once
        for addr in (1, 2):
            mine = [t for t, a, _tag in log if a == addr]
            assert mine == sorted(mine) == list(offsets)

    def test_until_semantics_match_serial(self):
        sim = _lookahead_sim(clusters=((1,),))
        fired = []

        class Node:
            cluster_addr = 1

            def fire(self):
                fired.append(sim.now)

        node = Node()
        sim.at(100, node.fire)
        assert sim.run(until=100) == 0  # event at exactly `until` stays
        assert sim.now == 100 and fired == []
        assert sim.run() == 1
        assert fired == [100]

    def test_in_window_schedule_routes_into_active_lane(self):
        # a timer scheduled from inside a lane for a time still inside the
        # window must join the active lane heap and fire in-window
        sim = _lookahead_sim(clusters=((1,), (2,)))
        seen = []

        class Node:
            cluster_addr = 1

            def first(self):
                assert sim._lane_heap is not None  # executing inside a lane
                sim.at(sim.now + 1, self.second)

            def second(self):
                seen.append((sim.now, sim._lane_heap is not None))

        class Other:
            cluster_addr = 2

            def noop(self):
                pass

        sim.at(0, Node().first)
        sim.at(5, Other().noop)  # second cluster so windows classify
        sim.run()
        assert seen == [(1, True)]


class TestMidRunInstrumentationToggle:
    """Arming TRACE mid-run bumps the instrumentation version: in-flight
    lanes abort and their leftovers must be re-pushed and replayed merged,
    never lost or duplicated."""

    step = HORIZON // 4

    def _run_arm(self, sim, owned_toggle):
        ring = RingBufferSink()
        log = []

        class Node:
            def __init__(self, addr):
                self.cluster_addr = addr

            def fire(self, k):
                log.append((sim.now, self.cluster_addr, k))

        nodes = [Node(1), Node(2)]

        def arm_trace():
            TRACE.configure(sinks=[ring], sim=sim)

        try:
            for k in range(30):
                for node in nodes:
                    sim.at(k * self.step, node.fire, k)
            if owned_toggle:
                # bound method of a cluster-1 owner: the bump lands mid-lane
                sim.at(10 * self.step + 1, _OwnedToggle(1, arm_trace).fire)
            else:
                # ownerless: rides the global lane and cuts the window
                sim.at(10 * self.step + 1, arm_trace)
            sim.run()
        finally:
            TRACE.reset()
        return log, list(ring.records())

    @pytest.mark.parametrize("workers", (1, 2))
    def test_owned_toggle_aborts_but_preserves_every_timer(self, workers):
        serial_log, serial_recs = self._run_arm(Simulator(), owned_toggle=True)
        sim = _lookahead_sim(clusters=((1,), (2,)), workers=workers)
        try:
            look_log, look_recs = self._run_arm(sim, owned_toggle=True)
        finally:
            sim.configure_dispatch("serial")
        assert len(look_log) == len(serial_log) == 60
        for addr in (1, 2):
            assert [e for e in serial_log if e[1] == addr] == [
                e for e in look_log if e[1] == addr
            ]
        # An *owned* toggle is a cross-cluster interaction (it mutates the
        # process-wide hub), so trace coverage may legitimately start
        # earlier under lookahead: the aborted sibling lane's leftovers
        # replay traced, where serial had already dispatched them dark.
        # Every serially-traced dispatch must still be traced here.
        serial_keys = {(r.time_ns, r.get("timer_seq")) for r in serial_recs}
        look_keys = {(r.time_ns, r.get("timer_seq")) for r in look_recs}
        assert serial_keys, "toggle never armed the tracer"
        assert serial_keys <= look_keys

    def test_global_toggle_cuts_window_and_stays_byte_identical(self):
        # the sanctioned way to toggle hubs mid-run: an ownerless callback,
        # which barriers the window -- the post-toggle trace is then
        # byte-identical between dispatch modes
        serial_log, serial_recs = self._run_arm(Simulator(), owned_toggle=False)
        look_log, look_recs = self._run_arm(
            _lookahead_sim(clusters=((1,), (2,))), owned_toggle=False
        )
        assert len(look_log) == len(serial_log) == 60
        serial_lines = [record_to_jsonl_line(r) for r in serial_recs]
        look_lines = [record_to_jsonl_line(r) for r in look_recs]
        assert serial_lines, "toggle never armed the tracer"
        assert_logs_identical(serial_lines, look_lines, "serial", "lookahead")


class _OwnedToggle:
    """Cluster-owned object whose timer callback flips a global hub."""

    def __init__(self, addr, arm):
        self.cluster_addr = addr
        self.arm = arm

    def fire(self):
        self.arm()


class TestMergedInstrumentedByteIdentity:
    @pytest.mark.parametrize("seed", (0, 3))
    def test_traced_run_is_byte_identical(self, seed):
        def run_arm(sim):
            ring = RingBufferSink()
            TRACE.configure(sinks=[ring], sim=sim)
            try:
                wl = ParallelWorkload(sim, seed, CLUSTERS, HORIZON,
                                      global_every=HORIZON)
                wl.play()
            finally:
                TRACE.reset()
            return wl, [record_to_jsonl_line(r) for r in ring.records()]

        serial_wl, serial_lines = run_arm(Simulator())
        look_wl, look_lines = run_arm(_lookahead_sim())
        assert len(serial_lines) > 300
        assert_logs_identical(serial_lines, look_lines, "serial", "lookahead")
        # merged windows execute in exact global order: even the
        # interleaved workload log matches entry-for-entry
        assert_logs_identical(
            serial_wl.merged_log, look_wl.merged_log, "serial", "lookahead"
        )

    def test_metrics_run_counts_every_dispatch(self):
        def run_arm(sim):
            METRICS.configure()
            try:
                wl = ParallelWorkload(sim, 7, CLUSTERS, HORIZON)
                wl.play()
                snap = METRICS.snapshot()
            finally:
                METRICS.reset()
            return wl, snap

        serial_wl, serial_snap = run_arm(Simulator())
        look_wl, look_snap = run_arm(_lookahead_sim())
        assert serial_snap == look_snap
        dispatched = serial_snap["sim"]["counters"]["kernel.events_dispatched"]
        assert dispatched == len(serial_wl.merged_log)
        assert_logs_identical(
            serial_wl.merged_log, look_wl.merged_log, "serial", "lookahead"
        )


class TestProfilerDispatchAttribution:
    def test_lookahead_run_populates_dispatch_section(self):
        """Barrier stalls land in ``kernel.barrier``; lane attribution
        covers every executed event (satellite of the profiler suite)."""
        from repro.obs.profiler import BARRIER_BUCKET, PROFILER

        sim = _lookahead_sim()
        PROFILER.configure()
        try:
            wl = ParallelWorkload(sim, 1, CLUSTERS, HORIZON,
                                  global_every=HORIZON)
            wl.play()
            report = PROFILER.report()
        finally:
            PROFILER.reset()
        dispatch = report["dispatch"]
        assert dispatch["windows"] > 0
        assert dispatch["parallelism"]["max"] >= 2  # multi-lane windows ran
        # one barrier record per window, in the dedicated bucket -- never
        # smeared into the last callback's subsystem
        barrier = report["subsystems"][BARRIER_BUCKET]
        assert barrier["events"] == dispatch["windows"]
        assert dispatch["barrier_stall"]["count"] == dispatch["windows"]
        # per-lane attribution covers every executed event exactly once
        assert sum(dispatch["lane_events"].values()) == (
            len(wl.merged_log) + len(wl.global_log)
        )
        assert any(k.startswith("cluster") for k in dispatch["lane_events"])
        assert "global" in dispatch["lane_events"]

    def test_serial_run_has_no_dispatch_section(self):
        from repro.obs.profiler import PROFILER

        sim = Simulator()
        PROFILER.configure()
        try:
            TimerWorkload(sim, 0).play()
            report = PROFILER.report()
        finally:
            PROFILER.reset()
        assert "dispatch" not in report


class TestMutation:
    def test_broken_window_merge_is_caught(self, monkeypatch):
        """The differential harness has teeth: reversing the drained batch
        (a deliberately broken (when, seq) merge) must diverge loudly."""
        serial = ParallelWorkload(Simulator(), 3, CLUSTERS, HORIZON)
        serial.play()

        true_drain = parallel_mod.LookaheadExecutor._drain

        def broken_drain(self, sim, end, classify, cut_on_global):
            batch, roots, cut = true_drain(self, sim, end, classify, cut_on_global)
            if len(batch) > 1:
                batch = list(reversed(batch))
                roots = list(reversed(roots))
            return batch, roots, cut

        monkeypatch.setattr(
            parallel_mod.LookaheadExecutor, "_drain", broken_drain
        )
        look = ParallelWorkload(_lookahead_sim(), 3, CLUSTERS, HORIZON)
        diverged = False
        try:
            look.play()
            for a, b in zip(serial.cluster_logs(), look.cluster_logs()):
                assert_logs_identical(a, b)
        except (AssertionError, SimulationError):
            diverged = True
        assert diverged, "differential failed to catch a broken window merge"
