"""Unit tests for the timer-wheel kernel's bookkeeping.

Covers the PR-introduced surfaces: O(1) :meth:`pending`, compaction once
cancelled timers dominate, :meth:`rearm` object reuse, the Timer free list,
and placement across the wheel's three storage classes.
"""

import pytest

from repro.sim.kernel import (
    COMPACT_MIN_CANCELLED,
    WHEEL_HORIZON_NS,
    WHEEL_SLOT_NS,
    SimulationError,
    Simulator,
)


def test_pending_is_live_count():
    sim = Simulator()
    handles = [sim.at(i * 1000, lambda: None) for i in range(10)]
    assert sim.pending() == 10
    assert sim.queue_depth() == 10
    for handle in handles[:4]:
        handle.cancel()
    assert sim.pending() == 6
    assert sim.queue_depth() == 10  # lazily deleted, still resident
    handles[0].cancel()  # double-cancel must not double-count
    assert sim.pending() == 6


def test_compaction_reclaims_cancelled_timers():
    sim = Simulator()
    n = 3 * COMPACT_MIN_CANCELLED
    # Spread across current slot, wheel, and overflow so every structure
    # gets compacted.
    handles = [
        sim.at((i % 7) * WHEEL_SLOT_NS * 3 + i, lambda: None) for i in range(n)
    ]
    keep = handles[:: 3]
    for handle in handles:
        if handle not in keep:
            handle.cancel()
    # Cancelled (2n/3) outnumber live (n/3): compaction must have fired at
    # least once, dropping resident count well below the scheduled total
    # (post-compaction cancels may lazily re-accumulate below threshold).
    assert sim.pending() == len(keep)
    assert sim.queue_depth() < n
    assert sim.queue_depth() - sim.pending() < COMPACT_MIN_CANCELLED * 2
    fired = []
    for handle in keep:
        handle.callback = fired.append
        handle.args = (handle.seq,)
    sim.run()
    assert sorted(fired) == sorted(h.seq for h in keep)


def test_rearm_reuses_timer_object():
    sim = Simulator()
    fired = []
    timer = sim.at(100, fired.append, "a")
    sim.run(until=200)
    assert fired == ["a"]
    again = sim.rearm(timer, 300)
    assert again is timer  # same object, no allocation
    sim.run(until=400)
    assert fired == ["a", "a"]


def test_rearm_in_past_raises():
    sim = Simulator()
    timer = sim.at(100, lambda: None)
    sim.run(until=500)
    with pytest.raises(SimulationError):
        sim.rearm(timer, 400)


def test_rearm_of_queued_timer_falls_back_to_fresh_schedule():
    sim = Simulator()
    fired = []
    timer = sim.at(100, fired.append, "x")
    # Still queued: rearm must not corrupt the queued entry.
    clone = sim.rearm(timer, 200)
    assert clone is not timer
    sim.run()
    assert fired == ["x", "x"]


def test_cancelled_timers_are_recycled_through_free_list():
    sim = Simulator()
    first = sim.at(50, lambda: None)
    first.cancel()
    sim.run(until=100)  # pops the cancelled timer into the free list
    second = sim.at(200, lambda: None)
    assert second is first  # recycled object
    assert not second.cancelled


def test_fired_timers_are_not_recycled():
    """A fired handle stays the caller's (for rearm); only cancelled-popped
    timers feed the free list."""
    sim = Simulator()
    fired = []
    timer = sim.at(50, fired.append, 1)
    sim.run(until=100)
    replacement = sim.at(200, fired.append, 2)
    assert replacement is not timer
    sim.run()
    assert fired == [1, 2]


def test_placement_spans_slot_wheel_and_overflow():
    """Timers land correctly wherever their horizon puts them."""
    sim = Simulator()
    fired = []
    whens = [
        0,                          # current slot
        WHEEL_SLOT_NS // 2,         # current slot (same bucket as cursor)
        WHEEL_SLOT_NS + 3,          # near-future wheel bucket
        WHEEL_HORIZON_NS - 1,       # last wheel bucket
        WHEEL_HORIZON_NS + 5,       # overflow heap
        9 * WHEEL_HORIZON_NS,       # deep overflow
    ]
    for when in whens:
        sim.at(when, fired.append, when)
    sim.run()
    assert fired == sorted(whens)
    assert sim.pending() == 0


def test_cancel_inside_wheel_bucket_before_slot_loads():
    sim = Simulator()
    fired = []
    victim = sim.at(5 * WHEEL_SLOT_NS, fired.append, "victim")
    sim.at(5 * WHEEL_SLOT_NS + 1, fired.append, "kept")
    victim.cancel()
    sim.run()
    assert fired == ["kept"]


def test_schedule_behind_cursor_slot_between_runs():
    """After run(until=...) parks now mid-slot, an ``at`` for the same slot
    must still fire (the delta<=0 heap path)."""
    sim = Simulator()
    fired = []
    sim.at(10 * WHEEL_SLOT_NS, fired.append, "first")
    sim.run(until=10 * WHEEL_SLOT_NS + 10)
    sim.at(10 * WHEEL_SLOT_NS + 20, fired.append, "same-slot")
    sim.run()
    assert fired == ["first", "same-slot"]
