"""Tests for the producer/consumer workload."""

import pytest

from repro.sim.units import MSEC, SEC
from repro.testbed.topology import BleNetwork
from repro.testbed.traffic import Consumer, Producer, TrafficConfig


def make_net():
    net = BleNetwork(2, seed=31, ppms=[0.0, 0.0])
    net.apply_edges([(0, 1)])
    return net


def test_producer_interval_with_jitter_bounds():
    net = make_net()
    Consumer(net.nodes[0])
    producer = Producer(
        net.nodes[1],
        net.nodes[0].mesh_local,
        config=TrafficConfig(interval_ns=1 * SEC, jitter_ns=500 * MSEC),
    )
    producer.start()
    net.run(30 * SEC)
    times = producer.request_times
    gaps = [(b - a) / SEC for a, b in zip(times, times[1:])]
    assert gaps, "producer must have produced"
    assert all(0.5 <= g <= 1.5 for g in gaps), f"jitter out of ±0.5 s: {gaps}"
    # jitter actually varies the gaps
    assert max(gaps) - min(gaps) > 0.1


def test_zero_jitter_is_periodic():
    net = make_net()
    Consumer(net.nodes[0])
    producer = Producer(
        net.nodes[1],
        net.nodes[0].mesh_local,
        config=TrafficConfig(interval_ns=1 * SEC, jitter_ns=0),
    )
    producer.start()
    net.run(10 * SEC)
    times = producer.request_times
    gaps = {b - a for a, b in zip(times, times[1:])}
    assert gaps == {1 * SEC}


def test_stop_halts_production():
    net = make_net()
    Consumer(net.nodes[0])
    producer = Producer(net.nodes[1], net.nodes[0].mesh_local)
    producer.start()
    net.sim.at(5 * SEC, producer.stop)
    net.run(15 * SEC)
    assert all(t <= 5 * SEC for t in producer.request_times)


def test_payload_length_reaches_consumer():
    seen = []
    net = make_net()
    consumer = Consumer(net.nodes[0])
    original = consumer._serve

    def spy(payload, src):
        seen.append(len(payload))
        return original(payload, src)

    consumer.endpoint._resources["sense"] = spy
    producer = Producer(
        net.nodes[1],
        net.nodes[0].mesh_local,
        config=TrafficConfig(payload_len=39),
    )
    producer.start()
    net.run(5 * SEC)
    assert seen and all(n == 39 for n in seen)


def test_consumer_counts_per_producer():
    net = BleNetwork(3, seed=32, ppms=[0.0] * 3)
    net.apply_edges([(0, 1), (0, 2)])
    consumer = Consumer(net.nodes[0])
    p1 = Producer(net.nodes[1], net.nodes[0].mesh_local)
    p2 = Producer(net.nodes[2], net.nodes[0].mesh_local)
    p1.start()
    p2.start()
    net.run(10 * SEC)
    assert consumer.requests_by_producer[1] == p1.acks_received
    assert consumer.requests_by_producer[2] == p2.acks_received
    assert consumer.total_requests == p1.acks_received + p2.acks_received


def test_pdr_defaults_to_one():
    net = make_net()
    producer = Producer(net.nodes[1], net.nodes[0].mesh_local)
    assert producer.pdr == 1.0


def test_rtt_samples_match_ack_count():
    net = make_net()
    Consumer(net.nodes[0])
    producer = Producer(net.nodes[1], net.nodes[0].mesh_local)
    producer.start()
    net.run(10 * SEC)
    assert len(producer.rtt_samples) == producer.acks_received
    assert all(rtt > 0 for _, rtt in producer.rtt_samples)
