"""Tests for the FIT IoT-LAB presets."""

from repro.sim.units import SEC
from repro.testbed.iotlab import (
    IOTLAB_NODE_COUNT,
    JAMMED_CHANNEL,
    iotlab_interference,
    iotlab_network,
)
from repro.testbed.topology import tree_topology_edges


def test_fleet_size_matches_paper():
    net = iotlab_network(seed=1)
    assert len(net.nodes) == IOTLAB_NODE_COUNT == 15


def test_channel_22_jammed_on_medium():
    net = iotlab_network(seed=1)
    assert JAMMED_CHANNEL in net.medium.interference.jammed_channels
    assert net.medium.interference.packet_error_rate(22, 100, 0) == 1.0


def test_channel_maps_exclude_jammed_by_default():
    net = iotlab_network(seed=1)
    for node in net.nodes:
        assert not node.controller.config.chan_map.is_used(JAMMED_CHANNEL)


def test_jammed_channel_can_be_exposed():
    net = iotlab_network(seed=1, exclude_jammed_channel=False)
    assert net.nodes[0].controller.config.chan_map.is_used(JAMMED_CHANNEL)


def test_drift_spread_is_paper_like():
    net = iotlab_network(seed=3)
    ppms = [node.clock.ppm for node in net.nodes]
    assert all(-3.0 <= p <= 3.0 for p in ppms)
    assert len(set(ppms)) > 1  # boards differ


def test_network_with_exclusion_runs_clean():
    """With the exclusion, the jamming never bites: traffic flows."""
    from repro.testbed.traffic import Consumer, Producer

    net = iotlab_network(seed=4)
    net.apply_edges(tree_topology_edges())
    Consumer(net.nodes[0])
    producer = Producer(net.nodes[14], net.nodes[0].mesh_local)
    producer.start(delay_ns=2 * SEC)
    net.run(10 * SEC)
    assert producer.acks_received > 0


def test_without_exclusion_jamming_costs_packets():
    """1/37 of connection events land on the dead channel and abort."""
    from repro.testbed.traffic import Consumer, Producer

    net = iotlab_network(seed=4, exclude_jammed_channel=False)
    net.apply_edges(tree_topology_edges())
    Consumer(net.nodes[0])
    producer = Producer(net.nodes[14], net.nodes[0].mesh_local)
    producer.start(delay_ns=2 * SEC)
    net.run(20 * SEC)
    aborts = sum(
        conn.coord.stats.events_crc_abort + conn.sub.stats.events_crc_abort
        for node in net.nodes
        for conn in node.controller.connections
        if conn.coord.controller is node.controller
    )
    assert aborts > 0


def test_interference_factory():
    model = iotlab_interference(base_ber=0.0)
    assert model.packet_error_rate(22, 10, 0) == 1.0
    assert model.packet_error_rate(21, 10, 0) == 0.0
