"""Tests for topology construction."""

import pytest

from repro.testbed.topology import (
    BleNetwork,
    line_topology_edges,
    star_topology_edges,
    tree_topology_edges,
)


class TestEdgeSets:
    def test_tree_shape_matches_paper(self):
        """15 nodes, root with 3 children, max 3 hops, mean 2.14 (§5.1)."""
        edges = tree_topology_edges()
        assert len(edges) == 14
        net = BleNetwork(15, seed=1, ppms=[0.0] * 15)
        for parent, child in edges:
            net._parent_of[child] = parent
        hops = [net.hop_count(n) for n in range(1, 15)]
        assert max(hops) == 3
        assert sum(hops) / len(hops) == pytest.approx(2.14, abs=0.005)
        root_children = [c for p, c in edges if p == 0]
        assert len(root_children) == 3

    def test_line_shape_matches_paper(self):
        """14 hops end to end, mean producer distance 7.5 (§5.1)."""
        edges = line_topology_edges()
        net = BleNetwork(15, seed=1, ppms=[0.0] * 15)
        for parent, child in edges:
            net._parent_of[child] = parent
        hops = [net.hop_count(n) for n in range(1, 15)]
        assert max(hops) == 14
        assert sum(hops) / len(hops) == 7.5

    def test_star_edges(self):
        edges = star_topology_edges(5)
        assert edges == [(0, 1), (0, 2), (0, 3), (0, 4)]

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_topology_edges(10)
        with pytest.raises(ValueError):
            line_topology_edges(1)
        with pytest.raises(ValueError):
            star_topology_edges(1)


class TestRouteInstallation:
    def test_default_routes_point_at_parents(self):
        from repro.sixlowpan.ipv6 import Ipv6Address

        net = BleNetwork(15, seed=1, ppms=[0.0] * 15)
        net.apply_edges(tree_topology_edges())
        # node 10's parent is 4; its default route must say so
        assert net.nodes[10].ip.fib.lookup(
            Ipv6Address.mesh_local(0)
        ) == Ipv6Address.mesh_local(4)

    def test_downstream_host_routes(self):
        from repro.sixlowpan.ipv6 import Ipv6Address

        net = BleNetwork(15, seed=1, ppms=[0.0] * 15)
        net.apply_edges(tree_topology_edges())
        # the root reaches node 10 via child 1 (1 -> 4 -> 10)
        assert net.nodes[0].ip.fib.lookup(
            Ipv6Address.mesh_local(10)
        ) == Ipv6Address.mesh_local(1)
        # node 1 reaches node 10 via child 4
        assert net.nodes[1].ip.fib.lookup(
            Ipv6Address.mesh_local(10)
        ) == Ipv6Address.mesh_local(4)

    def test_hop_count_errors_on_disconnected(self):
        net = BleNetwork(3, seed=1, ppms=[0.0] * 3)
        net.apply_edges([(0, 1)])
        with pytest.raises(ValueError):
            net.hop_count(2)

    def test_ppm_list_length_validated(self):
        with pytest.raises(ValueError):
            BleNetwork(3, ppms=[0.0])
