"""Tests for the IPv6 stack and UDP layer using a fake in-memory netif."""

import pytest

from repro.net.ip import Ipv6Stack
from repro.net.udp import UdpStack
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet, PROTO_UDP


class FakeNetif:
    """Loopback-ish interface recording whatever IP hands it."""

    def __init__(self, up=True):
        self.sent = []
        self.up = up
        self.ip = None

    def send(self, packet, next_hop_ll):
        if not self.up:
            return False
        self.sent.append((packet, next_hop_ll))
        return True


def make_stack(node_id=1):
    ip = Ipv6Stack(node_id)
    netif = FakeNetif()
    ip.add_netif(netif)
    return ip, netif


class TestIpForwarding:
    def test_local_delivery(self):
        ip, _ = make_stack(1)
        got = []
        ip.register_protocol(PROTO_UDP, got.append)
        pkt = Ipv6Packet(src=Ipv6Address.mesh_local(2), dst=ip.mesh_local)
        ip.receive(pkt, None)
        assert got == [pkt]
        assert ip.delivered == 1

    def test_forwarding_decrements_hop_limit(self):
        ip, netif = make_stack(1)
        ip.neighbor_up(3, netif)
        ip.fib.set_default_route(Ipv6Address.mesh_local(3))
        pkt = Ipv6Packet(
            src=Ipv6Address.mesh_local(2),
            dst=Ipv6Address.mesh_local(9),
            hop_limit=10,
        )
        ip.receive(pkt, None)
        assert ip.forwarded == 1
        sent_pkt, ll = netif.sent[0]
        assert ll == 3
        assert sent_pkt.hop_limit == 9

    def test_hop_limit_exhaustion_drops(self):
        ip, netif = make_stack(1)
        ip.neighbor_up(3, netif)
        ip.fib.set_default_route(Ipv6Address.mesh_local(3))
        pkt = Ipv6Packet(
            src=Ipv6Address.mesh_local(2),
            dst=Ipv6Address.mesh_local(9),
            hop_limit=1,
        )
        ip.receive(pkt, None)
        assert ip.drops_hop_limit == 1
        assert netif.sent == []

    def test_direct_neighbor_beats_routes(self):
        ip, netif = make_stack(1)
        ip.neighbor_up(9, netif)
        ip.fib.set_default_route(Ipv6Address.mesh_local(3))
        pkt = Ipv6Packet(
            src=ip.mesh_local, dst=Ipv6Address.mesh_local(9), hop_limit=64
        )
        ip.send(pkt)
        assert netif.sent[0][1] == 9

    def test_no_route_drop(self):
        ip, _ = make_stack(1)
        pkt = Ipv6Packet(src=ip.mesh_local, dst=Ipv6Address.mesh_local(9))
        assert not ip.send(pkt)
        assert ip.drops_no_route == 1

    def test_route_without_neighbor_drop(self):
        ip, _ = make_stack(1)
        ip.fib.set_default_route(Ipv6Address.mesh_local(3))
        pkt = Ipv6Packet(src=ip.mesh_local, dst=Ipv6Address.mesh_local(9))
        assert not ip.send(pkt)
        assert ip.drops_no_neighbor == 1

    def test_link_send_failure_counted(self):
        ip, netif = make_stack(1)
        netif.up = False
        ip.neighbor_up(3, netif)
        pkt = Ipv6Packet(src=ip.mesh_local, dst=Ipv6Address.mesh_local(3))
        assert not ip.send(pkt)
        assert ip.drops_link == 1

    def test_send_to_self_delivers_locally(self):
        ip, _ = make_stack(1)
        got = []
        ip.register_protocol(PROTO_UDP, got.append)
        pkt = Ipv6Packet(src=ip.mesh_local, dst=ip.link_local)
        assert ip.send(pkt)
        assert len(got) == 1

    def test_neighbor_down_withdraws(self):
        ip, netif = make_stack(1)
        ip.neighbor_up(3, netif)
        ip.neighbor_down(3)
        assert ip.nib.resolve(Ipv6Address.mesh_local(3)) is None

    def test_unknown_protocol_dropped(self):
        ip, _ = make_stack(1)
        pkt = Ipv6Packet(
            src=Ipv6Address.mesh_local(2), dst=ip.mesh_local, next_header=58
        )
        ip.receive(pkt, None)
        assert ip.drops_no_handler == 1


class TestUdp:
    def make(self):
        ip, netif = make_stack(1)
        udp = UdpStack(ip)
        return ip, netif, udp

    def test_local_udp_roundtrip(self):
        ip, _, udp = self.make()
        got = []
        udp.bind(7777, lambda payload, src, sport: got.append((payload, sport)))
        udp.sendto(b"ping", ip.mesh_local, 7777, 1234)
        assert got == [(b"ping", 1234)]
        assert udp.rx_datagrams == 1

    def test_unbound_port_counted(self):
        ip, _, udp = self.make()
        udp.sendto(b"x", ip.mesh_local, 9999, 1)
        assert udp.rx_no_port == 1

    def test_double_bind_rejected(self):
        _, _, udp = self.make()
        udp.bind(5683, lambda *a: None)
        with pytest.raises(ValueError):
            udp.bind(5683, lambda *a: None)

    def test_unbind_idempotent(self):
        _, _, udp = self.make()
        udp.bind(5683, lambda *a: None)
        udp.unbind(5683)
        udp.unbind(5683)

    def test_checksum_error_counted(self):
        ip, _, udp = self.make()
        udp.bind(5, lambda *a: None)
        from repro.sixlowpan.ipv6 import UdpDatagram

        src = Ipv6Address.mesh_local(2)
        raw = bytearray(UdpDatagram(1, 5, b"data").encode(src, ip.mesh_local))
        raw[-1] ^= 0xFF
        pkt = Ipv6Packet(src=src, dst=ip.mesh_local, payload=bytes(raw))
        ip.receive(pkt, None)
        assert udp.rx_checksum_errors == 1
