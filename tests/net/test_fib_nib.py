"""Tests for the forwarding table and neighbour cache."""

from repro.net.fib import ForwardingTable
from repro.net.nib import NeighborCache
from repro.sixlowpan.ipv6 import Ipv6Address

import pytest


A1 = Ipv6Address.mesh_local(1)
A2 = Ipv6Address.mesh_local(2)
A3 = Ipv6Address.mesh_local(3)


class TestFib:
    def test_host_route_wins(self):
        fib = ForwardingTable()
        fib.set_default_route(A3)
        fib.add_host_route(A1, A2)
        assert fib.lookup(A1) == A2
        assert fib.lookup(A2) == A3

    def test_prefix_route(self):
        fib = ForwardingTable()
        fib.add_prefix_route(Ipv6Address.MESH_PREFIX, A2)
        assert fib.lookup(A1) == A2
        assert fib.lookup(Ipv6Address.link_local(9)) is None

    def test_prefix_length_enforced(self):
        fib = ForwardingTable()
        with pytest.raises(ValueError):
            fib.add_prefix_route(b"\x00" * 4, A2)

    def test_no_match_returns_none(self):
        assert ForwardingTable().lookup(A1) is None

    def test_remove_host_route(self):
        fib = ForwardingTable()
        fib.add_host_route(A1, A2)
        fib.remove_host_route(A1)
        fib.remove_host_route(A1)  # idempotent
        assert fib.lookup(A1) is None

    def test_len(self):
        fib = ForwardingTable()
        fib.add_host_route(A1, A2)
        fib.set_default_route(A3)
        assert len(fib) == 2


class TestNib:
    def test_resolve(self):
        nib = NeighborCache()
        nib.add(A1, 1, "iface")
        assert nib.resolve(A1) == (1, "iface")
        assert nib.resolve(A2) is None

    def test_capacity_limit(self):
        nib = NeighborCache(max_entries=2)
        assert nib.add(A1, 1, None)
        assert nib.add(A2, 2, None)
        assert not nib.add(A3, 3, None)
        assert nib.full_rejections == 1
        # refreshing an existing entry is always allowed
        assert nib.add(A1, 9, None)
        assert nib.resolve(A1) == (9, None)

    def test_remove_ll_clears_all_addresses(self):
        nib = NeighborCache()
        nib.add(Ipv6Address.link_local(5), 5, None)
        nib.add(Ipv6Address.mesh_local(5), 5, None)
        nib.add(A1, 1, None)
        nib.remove_ll(5)
        assert len(nib) == 1
        assert A1 in nib

    def test_paper_configuration_holds_full_fleet(self):
        """§4.2: the NIB is raised to 32 entries to reach all 15 nodes
        (each neighbour needs a link-local and a mesh entry)."""
        nib = NeighborCache(max_entries=32)
        for peer in range(1, 15):
            assert nib.add(Ipv6Address.link_local(peer), peer, None)
            assert nib.add(Ipv6Address.mesh_local(peer), peer, None)
        assert len(nib) == 28
