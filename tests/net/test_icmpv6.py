"""Tests for ICMPv6 (echo + demux)."""

import pytest

from repro.net.icmpv6 import (
    ECHO_REQUEST,
    Icmpv6Message,
    RPL_CONTROL,
)
from repro.sim.units import SEC
from repro.sixlowpan.ipv6 import Ipv6Address
from repro.testbed.topology import BleNetwork, line_topology_edges


def linked_net(n=2, seed=61):
    net = BleNetwork(n, seed=seed, ppms=[0.0] * n)
    net.apply_edges(line_topology_edges(n))
    net.run(2 * SEC)
    assert net.all_links_up()
    return net


SRC = Ipv6Address.mesh_local(1)
DST = Ipv6Address.mesh_local(2)


class TestCodec:
    def test_roundtrip_with_checksum(self):
        msg = Icmpv6Message(ECHO_REQUEST, 0, b"ping-body")
        wire = msg.encode(SRC, DST)
        back = Icmpv6Message.decode(wire, SRC, DST)
        assert back == Icmpv6Message(ECHO_REQUEST, 0, b"ping-body")

    def test_corruption_detected(self):
        wire = bytearray(Icmpv6Message(ECHO_REQUEST, 0, b"x").encode(SRC, DST))
        wire[-1] ^= 0xFF
        with pytest.raises(ValueError):
            Icmpv6Message.decode(bytes(wire), SRC, DST)

    def test_truncated(self):
        with pytest.raises(ValueError):
            Icmpv6Message.decode(b"\x80")


class TestPing:
    def test_single_hop_ping(self):
        net = linked_net()
        rtts = []
        assert net.nodes[1].icmp.ping(
            net.nodes[0].mesh_local, b"abc", on_reply=rtts.append
        )
        net.run(4 * SEC)
        assert len(rtts) == 1
        assert rtts[0] > 0
        assert net.nodes[0].icmp.echo_requests_served == 1

    def test_multi_hop_ping(self):
        net = linked_net(4, seed=62)
        rtts = []
        net.nodes[3].icmp.ping(net.nodes[0].mesh_local, on_reply=rtts.append)
        net.run(6 * SEC)
        assert len(rtts) == 1
        # 3 hops each way at 75 ms intervals
        assert rtts[0] > 100_000_000

    def test_ping_to_unreachable_gets_no_reply(self):
        net = linked_net()
        rtts = []
        # routes towards the root exist, but node 42 does not: the request
        # dies at the root's FIB and no reply ever comes
        net.nodes[1].icmp.ping(Ipv6Address.mesh_local(42), on_reply=rtts.append)
        net.run(6 * SEC)
        assert rtts == []
        assert net.nodes[0].ip.drops_no_route == 1

    def test_duplicate_reply_ignored(self):
        net = linked_net()
        rtts = []
        net.nodes[1].icmp.ping(net.nodes[0].mesh_local, on_reply=rtts.append)
        net.run(4 * SEC)
        # re-deliver a forged identical reply: no pending entry remains
        assert len(rtts) == 1


class TestDemux:
    def test_registered_handler_called(self):
        net = linked_net()
        got = []
        net.nodes[0].icmp.register(
            RPL_CONTROL, lambda msg, src: got.append((msg.code, src))
        )
        net.nodes[1].icmp.send(
            net.nodes[0].mesh_local, Icmpv6Message(RPL_CONTROL, 1, b"\x00" * 24)
        )
        net.run(4 * SEC)
        assert got == [(1, net.nodes[1].mesh_local)]

    def test_unhandled_type_counted(self):
        net = linked_net()
        net.nodes[1].icmp.send(
            net.nodes[0].mesh_local, Icmpv6Message(200, 0, b"")
        )
        net.run(4 * SEC)
        assert net.nodes[0].icmp.rx_unhandled == 1


class TestMulticast:
    def test_link_multicast_fans_out_to_all_neighbors(self):
        net = BleNetwork(3, seed=63, ppms=[0.0] * 3)
        net.apply_edges([(0, 1), (0, 2)])
        net.run(2 * SEC)
        got = []
        for peer in (1, 2):
            net.nodes[peer].icmp.register(
                RPL_CONTROL, lambda msg, src, p=peer: got.append(p)
            )
        net.nodes[0].icmp.send(
            Ipv6Address.from_string("ff02::1a"),
            Icmpv6Message(RPL_CONTROL, 1, b"\x00" * 24),
            hop_limit=255,
        )
        net.run(4 * SEC)
        assert sorted(got) == [1, 2]

    def test_multicast_is_not_forwarded(self):
        """Link-scope multicast stays one hop (ff02::/16)."""
        net = linked_net(3, seed=64)
        got = []
        net.nodes[2].icmp.register(RPL_CONTROL, lambda m, s: got.append(2))
        net.nodes[0].icmp.send(
            Ipv6Address.from_string("ff02::1a"),
            Icmpv6Message(RPL_CONTROL, 1, b"\x00" * 24),
        )
        net.run(4 * SEC)
        assert got == []  # node 2 is two hops away
