"""Tests for the BLE network interface (nimble_netif equivalent)."""

from repro.sim.units import MSEC, SEC
from repro.sixlowpan.ipv6 import Ipv6Address, Ipv6Packet, UdpDatagram
from repro.testbed.topology import BleNetwork


def linked_net():
    net = BleNetwork(2, seed=51, ppms=[0.0, 0.0])
    net.apply_edges([(0, 1)])
    net.run(2 * SEC)
    assert net.all_links_up()
    return net


def make_packet(src_id, dst_id, payload_len=60):
    src = Ipv6Address.mesh_local(src_id)
    dst = Ipv6Address.mesh_local(dst_id)
    dgram = UdpDatagram(5683, 5683, bytes(payload_len - 8))
    return Ipv6Packet(src=src, dst=dst, payload=dgram.encode(src, dst))


def test_send_compresses_and_delivers():
    net = linked_net()
    got = []
    net.nodes[0].udp.bind(5683, lambda p, src, sport: got.append(p))
    assert net.nodes[1].netif.send(make_packet(1, 0), next_hop_ll=0)
    net.run(3 * SEC)
    assert len(got) == 1
    assert net.nodes[1].netif.tx_packets == 1
    assert net.nodes[0].netif.rx_packets == 1


def test_send_without_link_counted():
    net = BleNetwork(2, seed=52, ppms=[0.0, 0.0])  # no edges configured
    assert not net.nodes[1].netif.send(make_packet(1, 0), next_hop_ll=0)
    assert net.nodes[1].netif.drops_no_link == 1


def test_pktbuf_charged_until_ll_ack():
    net = linked_net()
    netif = net.nodes[1].netif
    used_before = net.nodes[1].pktbuf.used
    assert netif.send(make_packet(1, 0), next_hop_ll=0)
    assert net.nodes[1].pktbuf.used > used_before  # held while in flight
    net.run(3 * SEC)
    assert net.nodes[1].pktbuf.used == used_before  # released on LL ack


def test_pktbuf_exhaustion_drops():
    net = BleNetwork(2, seed=53, ppms=[0.0, 0.0], pktbuf_capacity=128)
    net.apply_edges([(0, 1)])
    net.run(2 * SEC)
    netif = net.nodes[1].netif
    sent = sum(netif.send(make_packet(1, 0), next_hop_ll=0) for _ in range(5))
    assert sent < 5
    assert netif.drops_pktbuf > 0


def test_conn_close_releases_held_bytes():
    from repro.ble.conn import DisconnectReason

    net = linked_net()
    netif = net.nodes[1].netif
    # queue packets, then kill the link before they can be acknowledged
    for _ in range(3):
        assert netif.send(make_packet(1, 0), next_hop_ll=0)
    assert net.nodes[1].pktbuf.used > 0
    conn = net.nodes[1].controller.connection_to(0)
    conn.close(DisconnectReason.SUPERVISION_TIMEOUT)
    assert net.nodes[1].pktbuf.used == 0


def test_neighbor_entries_follow_link_state():
    from repro.ble.conn import DisconnectReason

    net = linked_net()
    addr = Ipv6Address.mesh_local(0)
    assert net.nodes[1].ip.nib.resolve(addr) is not None
    conn = net.nodes[1].controller.connection_to(0)
    conn.close(DisconnectReason.SUPERVISION_TIMEOUT)
    assert net.nodes[1].ip.nib.resolve(addr) is None
    # statconn re-establishes; the neighbour comes back
    net.run(net.sim.now + 2 * SEC)
    assert net.nodes[1].ip.nib.resolve(addr) is not None


def test_rx_decode_errors_counted():
    net = linked_net()
    conn = net.nodes[1].controller.connection_to(0)
    from repro.net.netif import coc_of

    coc = coc_of(conn)
    coc.send(net.nodes[1].controller, b"\x00\x00garbage-not-iphc")
    net.run(3 * SEC)
    assert net.nodes[0].netif.rx_decode_errors == 1


def test_compression_stats_accumulate():
    net = linked_net()
    netif = net.nodes[1].netif
    netif.send(make_packet(1, 0), next_hop_ll=0)
    assert netif.adaptation.packets_down == 1
    assert netif.adaptation.bytes_in == 100
    assert netif.adaptation.bytes_out < 100  # IPHC saves a few bytes
