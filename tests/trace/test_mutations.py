"""Mutation smoke tests: prove the invariant checkers actually fire.

A checker suite that never fires on a healthy simulator proves little by
itself -- these tests break the stack on purpose (mis-schedule an anchor,
corrupt the acknowledgement state, fake a supervision close) and assert
the matching checker reports exactly that defect.
"""

import pytest

from repro.ble.conn import DisconnectReason
from repro.sim.units import MSEC, SEC
from repro.testbed.topology import BleNetwork
from repro.trace.invariants import CheckerSink
from repro.trace.sinks import RingBufferSink
from repro.trace.tracer import TRACE


@pytest.fixture(autouse=True)
def _clean_singleton():
    TRACE.reset()
    yield
    TRACE.reset()


def _traced_pair(seed=5):
    """A 2-node network with the tracer armed (checkers + ring)."""
    checkers = CheckerSink()
    ring = RingBufferSink()
    TRACE.configure(sinks=[ring, checkers])
    net = BleNetwork(2, seed=seed, ppms=[0.0, 0.0])
    TRACE.attach_sim(net.sim)
    net.apply_edges([(0, 1)])
    net.run(2 * SEC)
    assert net.all_links_up()
    conn = net.nodes[1].controller.connection_to(0)
    assert conn is not None
    return net, conn, checkers


def _violations(checkers, name):
    checkers.finish()
    return [v for v in checkers.violations if v.checker == name]


def test_healthy_run_is_silent():
    net, conn, checkers = _traced_pair()
    net.run(6 * SEC)
    checkers.finish()
    assert checkers.violations == []
    assert TRACE.records_emitted > 0


def test_misscheduled_anchor_trips_the_spacing_checker():
    net, conn, checkers = _traced_pair()

    def shift_anchor():
        conn.anchor_true += 5 * MSEC  # well past widening + drift tolerance

    net.sim.at(net.sim.now + SEC, shift_anchor)
    net.run(net.sim.now + 3 * SEC)
    found = _violations(checkers, "anchor-spacing")
    assert found, "5 ms anchor shift went undetected"
    assert "anchor spacing" in found[0].message


def test_corrupted_sn_trips_the_seq_ack_checker():
    net, conn, checkers = _traced_pair()

    def corrupt_sn():
        # flip the coordinator's SN outside any acknowledged handshake;
        # only meaningful while no PDU is in flight (otherwise the flip
        # mimics a legal ack-advance)
        if conn.coord._outstanding is None:
            conn.coord.sn ^= 1

    net.sim.at(net.sim.now + SEC, corrupt_sn)
    net.run(net.sim.now + 3 * SEC)
    found = _violations(checkers, "seq-ack")
    assert found, "SN corruption went undetected"


def test_corrupted_nesn_trips_the_seq_ack_checker():
    net, conn, checkers = _traced_pair()

    def corrupt_nesn():
        # an uncaused NESN toggle is illegal whatever is in flight: NESN
        # may only move after accepting a new-SN PDU, which the checker
        # sees (or doesn't) in the ll_rx stream
        conn.sub.nesn ^= 1

    net.sim.at(net.sim.now + SEC, corrupt_nesn)
    net.run(net.sim.now + 3 * SEC)
    assert _violations(checkers, "seq-ack"), "NESN corruption went undetected"


def test_fake_supervision_close_trips_the_supervision_checker():
    net, conn, checkers = _traced_pair()

    def fake_timeout_close():
        # the link is perfectly healthy: a supervision close here violates
        # the "fires iff silent for the timeout window" contract
        conn.close(DisconnectReason.SUPERVISION_TIMEOUT)

    net.sim.at(net.sim.now + SEC, fake_timeout_close)
    net.run(net.sim.now + 2 * SEC)
    found = _violations(checkers, "supervision")
    assert found, "fake supervision close went undetected"
    assert "without a timeout-sized silence" in found[0].message
