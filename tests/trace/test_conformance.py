"""Trace-driven conformance: the simulator upholds spec invariants.

Full experiment scenarios (different topologies, loss regimes, and the
802.15.4 link layer for the fragmentation path) run with tracing on; the
complete record stream then flows through the default checker suite, and
a healthy simulator must produce zero violations.  This is the
behavioural complement of the unit tests: every BLE connection event,
acknowledgement, supervision window, and reassembly in these runs is
checked against the spec-level model.
"""

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.runner import run_experiment
from repro.trace.invariants import check_records

SHORT = dict(duration_s=8.0, warmup_s=3.0, drain_s=1.0, trace=True)

SCENARIOS = [
    ExperimentConfig(name="conf-2node", topology="line", n_nodes=2,
                     seed=21, **SHORT),
    ExperimentConfig(name="conf-line4", topology="line", n_nodes=4,
                     seed=22, producer_interval_s=0.5, **SHORT),
    ExperimentConfig(name="conf-star5", topology="star", n_nodes=5,
                     seed=23, **SHORT),
    # the paper's full 15-node tree: multi-hop + shared-radio relays
    ExperimentConfig(name="conf-tree15", topology="tree", n_nodes=15,
                     seed=27, **SHORT),
    # lossy regime: CRC errors force retransmissions and event aborts, the
    # hardest case for the SN/NESN and supervision models
    ExperimentConfig(name="conf-lossy", topology="line", n_nodes=3,
                     seed=24, base_ber=4e-4, **SHORT),
    # randomized-interval policy (§6.3) changes anchor/widening behaviour
    ExperimentConfig(name="conf-random-iv", topology="line", n_nodes=3,
                     seed=25, conn_interval="[65:85]", **SHORT),
    # 802.15.4: exercises the fragmentation/reassembly checker (the BLE
    # path has no 6LoWPAN fragmentation, RFC 7668)
    ExperimentConfig(name="conf-154", topology="line", n_nodes=4,
                     seed=26, link_layer="802154", payload_len=256, **SHORT),
]


@pytest.mark.parametrize(
    "config", SCENARIOS, ids=[c.name for c in SCENARIOS]
)
def test_scenario_upholds_all_invariants(config):
    result = run_experiment(config)
    assert result.trace_records, "traced run produced no records"
    violations = check_records(result.trace_records)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_lossy_scenario_actually_exercised_retransmissions():
    """The loss regime is real: retransmitted PDUs and CRC losses appear,
    so the zero-violation verdicts above were earned on the hard path."""
    config = ExperimentConfig(name="conf-lossy-probe", topology="line",
                              n_nodes=3, seed=24, base_ber=4e-4, **SHORT)
    result = run_experiment(config)
    kinds = {}
    for record in result.trace_records:
        kinds[record.key] = kinds.get(record.key, 0) + 1
    assert kinds.get("ble.crc_loss", 0) > 0
    retx = sum(
        1 for r in result.trace_records
        if r.key == "ble.ll_tx" and r.get("retx")
    )
    assert retx > 0


def test_154_scenario_actually_fragmented():
    config = ExperimentConfig(name="conf-154-probe", topology="line",
                              n_nodes=4, seed=26, link_layer="802154",
                              payload_len=256, **SHORT)
    result = run_experiment(config)
    kinds = {r.key for r in result.trace_records}
    assert "sixlo.frag_tx" in kinds
    assert "sixlo.reassembled" in kinds
