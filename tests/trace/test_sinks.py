"""Sink round-trips: ring buffer, JSONL, binary packet dump."""

import json

import pytest

from repro.trace.record import SCHEMAS, TraceRecord
from repro.trace.sinks import (
    JSONL_FORMAT_VERSION,
    JsonlSink,
    PacketDumpSink,
    RingBufferSink,
    jsonl_header,
    read_jsonl,
    read_packet_dump,
    record_to_json,
    records_to_jsonl,
)


def _record(seq=0, t=100, layer="ble", kind="ll_tx", **fields):
    return TraceRecord(t, layer, kind, seq, tuple(fields.items()))


class TestRingBuffer:
    def test_unbounded_by_default(self):
        ring = RingBufferSink()
        for i in range(1000):
            ring.accept(_record(seq=i))
        assert len(ring) == 1000
        assert ring.dropped == 0

    def test_bounded_keeps_newest_and_counts_drops(self):
        ring = RingBufferSink(capacity=10)
        for i in range(25):
            ring.accept(_record(seq=i))
        assert len(ring) == 10
        assert ring.dropped == 15
        assert [r.seq for r in ring.records()] == list(range(15, 25))

    def test_close_is_a_no_op(self):
        ring = RingBufferSink()
        ring.accept(_record())
        ring.close()
        assert len(ring) == 1


class TestJsonl:
    def test_record_to_json_preserves_field_order_and_hexes_bytes(self):
        record = _record(conn=1, data=b"\x01\xff", sn=0)
        obj = record_to_json(record)
        assert list(obj) == ["t", "layer", "kind", "seq", "v", "conn", "data", "sn"]
        assert obj["data"] == "01ff"
        assert obj["v"] == SCHEMAS["ble.ll_tx"]

    def test_header_identifies_format(self):
        header = json.loads(jsonl_header())
        assert header == {"trace": "repro.trace", "format": JSONL_FORMAT_VERSION}

    def test_sink_writes_header_then_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.accept(_record(seq=0, sn=1))
        sink.accept(_record(seq=1, sn=0))
        sink.close()
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["trace"] == "repro.trace"
        assert len(lines) == 3
        assert sink.records_written == 2

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_read_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.accept(_record(seq=0, conn=0, sn=1, nesn=0))
        sink.close()
        records = read_jsonl(path)
        assert len(records) == 1
        assert records[0]["sn"] == 1
        assert records[0]["layer"] == "ble"

    def test_read_jsonl_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not":"a trace"}\n')
        with pytest.raises(ValueError, match="not a repro.trace"):
            read_jsonl(path)

    def test_read_jsonl_rejects_future_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace":"repro.trace","format":999}\n')
        with pytest.raises(ValueError, match="unsupported trace format"):
            read_jsonl(path)

    def test_read_jsonl_rejects_schema_mismatch(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        line = json.dumps(
            {"t": 1, "layer": "ble", "kind": "ll_tx", "seq": 0, "v": 999}
        )
        path.write_text(jsonl_header() + "\n" + line + "\n")
        with pytest.raises(ValueError, match="schema mismatch"):
            read_jsonl(path)

    def test_records_to_jsonl_document(self):
        doc = records_to_jsonl([_record(seq=0), _record(seq=1)])
        lines = doc.splitlines()
        assert len(lines) == 3
        assert doc.endswith("\n")


class TestPacketDump:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.pdump"
        sink = PacketDumpSink(path)
        sink.accept(
            _record(t=42, layer="sixlo", kind="tx", node=1, data=b"\xaa\xbb\xcc")
        )
        sink.accept(_record(t=43, layer="sixlo", kind="rx", data=b""))
        sink.close()
        packets = list(read_packet_dump(path))
        assert packets == [
            (42, "sixlo", "tx", b"\xaa\xbb\xcc"),
            (43, "sixlo", "rx", b""),
        ]

    def test_records_without_data_are_skipped(self, tmp_path):
        path = tmp_path / "t.pdump"
        sink = PacketDumpSink(path)
        sink.accept(_record(kind="conn_open", conn=0))
        sink.close()
        assert sink.packets_written == 0
        assert list(read_packet_dump(path)) == []

    def test_hex_string_data_is_decoded(self, tmp_path):
        """Records replayed from JSONL carry pre-hexed data strings."""
        path = tmp_path / "t.pdump"
        sink = PacketDumpSink(path)
        sink.accept(_record(t=1, layer="sixlo", kind="tx", data="0aff"))
        sink.close()
        assert list(read_packet_dump(path)) == [(1, "sixlo", "tx", b"\x0a\xff")]

    def test_rejects_foreign_magic(self, tmp_path):
        path = tmp_path / "bad.pdump"
        path.write_bytes(b"XXXX\x01\x00\x00\x00")
        with pytest.raises(ValueError, match="not a repro.trace packet dump"):
            list(read_packet_dump(path))

    def test_rejects_truncated_body(self, tmp_path):
        path = tmp_path / "t.pdump"
        sink = PacketDumpSink(path)
        sink.accept(_record(t=1, layer="sixlo", kind="tx", data=b"\x01" * 40))
        sink.close()
        truncated = path.read_bytes()[:-10]
        path.write_bytes(truncated)
        with pytest.raises(ValueError, match="truncated"):
            list(read_packet_dump(path))
