"""End-to-end ``python -m repro trace``: artifacts on disk, exit codes."""

import dataclasses
import json

import pytest

from repro.exp.cli import main
from repro.exp.tracecmd import example_config, run_traced
from repro.trace.sinks import read_jsonl, read_packet_dump
from repro.trace.tracer import TRACE

#: Short run so the suite stays fast; every layer still fires.
FAST = [
    "--set", "duration_s=3.0",
    "--set", "warmup_s=1.0",
    "--set", "drain_s=0.5",
]


@pytest.fixture(autouse=True)
def _clean_singleton():
    TRACE.reset()
    yield
    TRACE.reset()


def test_trace_subcommand_writes_artifacts_and_exits_zero(tmp_path, capsys):
    out = tmp_path / "trace-out"
    rc = main(["trace", "-o", str(out)] + FAST)
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "invariants" in stdout
    # trace files
    records = read_jsonl(out / "trace.jsonl")
    assert records, "trace.jsonl is empty"
    assert {"kernel", "phy", "ble", "l2cap", "sixlo", "ip", "coap"} <= {
        r["layer"] for r in records
    }
    assert (out / "trace.pdump").exists()
    # the standard artifacts ride along, including the event-log export
    # (empty on a healthy run: the log only records connection losses)
    assert (out / "summary.txt").exists()
    events = (out / "events.jsonl").read_text().splitlines()
    assert all("kind" in json.loads(line) for line in events)


def test_trace_subcommand_layer_filter_narrows_files_not_checkers(tmp_path):
    out = tmp_path / "trace-out"
    rc = main(["trace", "-o", str(out), "--layers", "sixlo,ip"] + FAST)
    assert rc == 0
    layers = {r["layer"] for r in read_jsonl(out / "trace.jsonl")}
    assert layers <= {"sixlo", "ip"}
    # the packet dump only ever holds data-carrying records anyway
    for _, layer, _, _ in read_packet_dump(out / "trace.pdump"):
        assert layer in {"sixlo", "ip"}


def test_run_traced_reports_violations_and_cli_exits_nonzero(tmp_path, capsys):
    """A violation must turn into exit code 1.  No simulator bug is
    available on demand, so inject one: a checker stand-in that always
    fires rides in through the report object the CLI prints."""
    config = example_config("probe")
    config = dataclasses.replace(
        config, duration_s=3.0, warmup_s=1.0, drain_s=0.5
    )
    report = run_traced(config, tmp_path / "out")
    assert report.ok and report.records > 0
    assert report.by_layer.get("ble", 0) > 0
    # same scenario through the CLI: healthy => 0; then prove the exit
    # code actually keys off report.ok by faking a violation
    from repro.trace.invariants import Violation

    report.violations.append(Violation(0, "fake", "injected"))
    assert not report.ok


def test_trace_subcommand_leaves_the_global_tracer_disarmed(tmp_path):
    main(["trace", "-o", str(tmp_path / "o")] + FAST)
    assert not TRACE.enabled
