"""TraceRecord and schema-registry unit tests."""

import functools

from repro.trace.record import (
    SCHEMAS,
    TraceRecord,
    callback_name,
    schema_version,
)


class TestSchemas:
    def test_every_key_is_layer_dot_kind(self):
        for key in SCHEMAS:
            layer, _, kind = key.partition(".")
            assert layer and kind, f"malformed schema key {key!r}"

    def test_versions_are_positive_ints(self):
        assert all(
            isinstance(v, int) and v >= 1 for v in SCHEMAS.values()
        )

    def test_schema_version_lookup(self):
        assert schema_version("ble", "conn_open") == SCHEMAS["ble.conn_open"]

    def test_unregistered_kind_is_version_zero(self):
        assert schema_version("ble", "no-such-kind") == 0
        assert schema_version("nope", "conn_open") == 0

    def test_registry_covers_the_paper_stack(self):
        """Every layer the tentpole promises has at least one schema."""
        layers = {key.split(".")[0] for key in SCHEMAS}
        assert {"kernel", "phy", "ble", "l2cap", "sixlo", "ip", "coap"} <= layers


class TestCallbackName:
    def test_bound_method_has_no_address(self):
        class Thing:
            def tick(self):
                pass

        name = callback_name(Thing().tick)
        assert "tick" in name
        assert "0x" not in name  # repr() would leak the object address

    def test_same_method_of_two_instances_is_identical(self):
        class Thing:
            def tick(self):
                pass

        assert callback_name(Thing().tick) == callback_name(Thing().tick)

    def test_partial_unwraps_to_the_wrapped_function(self):
        def fire(a, b):
            pass

        assert "fire" in callback_name(functools.partial(fire, 1))

    def test_plain_function(self):
        def fire():
            pass

        assert "fire" in callback_name(fire)


class TestTraceRecord:
    def test_key_and_version(self):
        record = TraceRecord(5, "ble", "conn_open", 0, (("conn", 1),))
        assert record.key == "ble.conn_open"
        assert record.version == SCHEMAS["ble.conn_open"]

    def test_get_returns_field_or_default(self):
        record = TraceRecord(5, "ble", "ll_tx", 0, (("sn", 1), ("nesn", 0)))
        assert record.get("sn") == 1
        assert record.get("nesn") == 0
        assert record.get("missing") is None
        assert record.get("missing", 7) == 7

    def test_records_are_immutable_and_hashable(self):
        record = TraceRecord(5, "ble", "ll_tx", 0, (("sn", 1),))
        assert record == TraceRecord(5, "ble", "ll_tx", 0, (("sn", 1),))
        assert hash(record) == hash(TraceRecord(5, "ble", "ll_tx", 0, (("sn", 1),)))
