"""Golden cross-layer traces.

The serialized JSONL trace of two pinned scenarios is committed under
``tests/trace/golden/``; any byte of difference means the simulator's
observable behaviour changed -- timer order, channel hopping, ack timing,
forwarding -- and must be a deliberate decision (regenerate with
``REPRO_REGEN_GOLDEN=1 pytest tests/trace/test_golden.py``).

The same scenarios double as the worker-determinism proof: the trace a
config produces must be byte-identical whether the run happened inline
(``max_workers=1``), in forked workers (``max_workers=4``), or in this
warm test process after hundreds of other simulations (the tracer's
conn-id normalization is what makes that hold).
"""

import os
from pathlib import Path

import pytest

from repro.exp.config import ExperimentConfig
from repro.exp.parallel import ParallelEngine
from repro.exp.runner import run_experiment
from repro.trace.sinks import records_to_jsonl

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Layers pinned in the goldens.  kernel/phy are deliberately excluded:
#: their records are an order of magnitude bulkier and every behavioural
#: change in them surfaces in the BLE/L2CAP records anyway.
TWO_NODE = ExperimentConfig(
    name="golden-2node",
    topology="line",
    n_nodes=2,
    duration_s=2.0,
    warmup_s=1.0,
    drain_s=0.5,
    producer_interval_s=0.5,
    seed=7,
    drift_ppms=(0.0, 0.5),
    trace=True,
    trace_layers="ble,l2cap,sixlo,ip,coap",
)

THREE_HOP = ExperimentConfig(
    name="golden-3hop",
    topology="line",
    n_nodes=4,
    duration_s=2.0,
    warmup_s=1.0,
    drain_s=0.5,
    producer_interval_s=0.5,
    seed=11,
    drift_ppms=(0.0, 1.5, -2.0, 0.5),
    trace=True,
    trace_layers="sixlo,ip,coap",
)

#: The scale tier's pinned fixture: 100 nodes on a seeded random-geometric
#: layout, statconn links along the BFS tree of the radio graph, delivery
#: gated by the spatial grid index.  Traced at ip/coap only -- the layer
#: pair that witnesses end-to-end multi-hop forwarding -- to keep the
#: fixture well under 500 KB.
SCALE_100 = ExperimentConfig(
    name="golden-scale100",
    topology="rgg",
    n_nodes=100,
    duration_s=2.0,
    warmup_s=5.0,
    drain_s=0.5,
    producer_interval_s=1.0,
    seed=13,
    trace=True,
    trace_layers="ip,coap",
)

#: The workload tier's pinned fixture: a 25-node dynamic mesh on a seeded
#: random-geometric layout under Poisson churn (graceful + fail-stop mix),
#: random-waypoint mobility, and compressed MAC rotation.  Traced at
#: ip/coap (end-to-end forwarding witness) plus the workload layer itself
#: (departures, arrivals, re-attaches, rotations, moves), so any drift in
#: scenario dynamics -- schedule draws, mobility steps, rotation timing --
#: is a byte-level diff here.
CHURN_25 = ExperimentConfig(
    name="golden-churn25",
    topology="dynamic",
    n_nodes=25,
    conn_interval="[65:85]",
    duration_s=10.0,
    warmup_s=30.0,
    drain_s=5.0,
    producer_interval_s=1.0,
    seed=17,
    geometry="rgg",
    trace=True,
    trace_layers="ip,coap,workload",
    churn={"mean_up_s": 20.0, "mean_down_s": 6.0},
    mobility={"step_s": 1.0},
    mac_rotation={"period_s": 15.0, "jitter_s": 3.0},
)

SCENARIOS = {
    "trace_2node.jsonl": TWO_NODE,
    "trace_3hop.jsonl": THREE_HOP,
    "trace_scale100.jsonl": SCALE_100,
    "trace_churn.jsonl": CHURN_25,
}


def _trace_jsonl(config: ExperimentConfig) -> str:
    result = run_experiment(config)
    assert result.trace_records, "trace-enabled run produced no records"
    return records_to_jsonl(result.trace_records)


@pytest.mark.parametrize("filename", sorted(SCENARIOS))
def test_trace_matches_golden(filename):
    config = SCENARIOS[filename]
    document = _trace_jsonl(config)
    path = GOLDEN_DIR / filename
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(document)
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden trace {path} missing; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = path.read_text()
    assert document == golden, (
        f"trace of {config.name!r} diverged from {filename}; if the "
        f"behaviour change is intended, regenerate with REPRO_REGEN_GOLDEN=1"
    )


def test_trace_is_stable_across_repeated_runs():
    """Same config, same process, twice: byte-identical traces."""
    assert _trace_jsonl(TWO_NODE) == _trace_jsonl(TWO_NODE)


@pytest.mark.parametrize("filename", sorted(SCENARIOS))
def test_trace_survives_worker_shipping_byte_identical(filename):
    """PortableResult carries the trace through the worker pipe unchanged:
    max_workers=1 executes inline in this process, max_workers=4 forks --
    the serialized traces must match each other and the golden."""
    config = SCENARIOS[filename]
    inline = ParallelEngine(max_workers=1).run([config])
    forked = ParallelEngine(max_workers=4).run([config])
    assert inline[0].ok and forked[0].ok
    doc_inline = records_to_jsonl(inline[0].result.trace_records)
    doc_forked = records_to_jsonl(forked[0].result.trace_records)
    assert doc_inline == doc_forked
    path = GOLDEN_DIR / filename
    if path.exists() and not os.environ.get("REPRO_REGEN_GOLDEN"):
        assert doc_inline == path.read_text()


def test_golden_traces_have_layer_coverage():
    """The pinned 2-node scenario exercises every layer it claims to."""
    result = run_experiment(TWO_NODE)
    layers = {r.layer for r in result.trace_records}
    assert layers == {"ble", "l2cap", "sixlo", "ip", "coap"}


def test_trace_records_pickle_through_portable():
    import pickle

    result = run_experiment(TWO_NODE)
    portable = result.to_portable()
    clone = pickle.loads(pickle.dumps(portable))
    assert clone.trace_records == portable.trace_records
    assert records_to_jsonl(clone.trace_records) == records_to_jsonl(
        result.trace_records
    )
