"""Tracer singleton semantics: gating, filtering, normalization, overhead."""

import time

import pytest

from repro.sim.kernel import Simulator
from repro.trace.sinks import RingBufferSink
from repro.trace.tracer import TRACE, Tracer


@pytest.fixture(autouse=True)
def _clean_singleton():
    """Every test leaves the process-wide tracer disarmed."""
    TRACE.reset()
    yield
    TRACE.reset()


class TestGating:
    def test_disabled_by_default(self):
        assert Tracer().enabled is False

    def test_emit_while_disabled_is_a_no_op(self):
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.emit(1, "ble", "ll_tx", sn=0)
        assert tracer.records_emitted == 0
        assert len(ring) == 0

    def test_configure_enables_and_reset_disables(self):
        tracer = Tracer()
        tracer.configure(sinks=[RingBufferSink()])
        assert tracer.enabled
        tracer.reset()
        assert not tracer.enabled

    def test_reset_drops_sinks_but_does_not_close_them(self):
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring])
        tracer.emit(1, "ble", "ll_tx", sn=0)
        tracer.reset()
        assert ring.records()  # contents survive the reset

    def test_configure_resets_per_run_state(self):
        tracer = Tracer()
        tracer.configure(sinks=[RingBufferSink()])
        tracer.emit(1, "ble", "ll_tx", conn=900)
        assert tracer.records_emitted == 1
        tracer.configure(sinks=[RingBufferSink()])
        assert tracer.records_emitted == 0
        ring = RingBufferSink()
        tracer.configure(sinks=[ring])
        tracer.emit(1, "ble", "ll_tx", conn=901)
        # a fresh run maps its first-seen conn to 0 again
        assert ring.records()[0].get("conn") == 0


class TestEmission:
    def test_records_carry_dense_seq(self):
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring])
        for i in range(5):
            tracer.emit(i, "ble", "ll_tx", sn=i & 1)
        assert [r.seq for r in ring.records()] == list(range(5))

    def test_explicit_time_is_used(self):
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring])
        tracer.emit(1234, "phy", "packet", channel=3)
        assert ring.records()[0].time_ns == 1234

    def test_none_time_reads_the_attached_sim(self):
        sim = Simulator()
        sim.at(500, lambda: None)
        sim.run()
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring])
        tracer.attach_sim(sim)
        tracer.emit(None, "ip", "originate", node=1)
        assert ring.records()[0].time_ns == sim.now

    def test_none_time_without_sim_is_zero(self):
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring])
        tracer.emit(None, "ip", "originate", node=1)
        assert ring.records()[0].time_ns == 0

    def test_fan_out_to_all_sinks(self):
        rings = [RingBufferSink(), RingBufferSink()]
        tracer = Tracer()
        tracer.configure(sinks=rings)
        tracer.emit(1, "ble", "ll_tx", sn=0)
        assert len(rings[0]) == len(rings[1]) == 1


class TestLayerFilter:
    def test_filtered_layers_are_suppressed(self):
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring], layers={"ble"})
        tracer.emit(1, "ble", "ll_tx", sn=0)
        tracer.emit(2, "phy", "packet", channel=1)
        tracer.emit(3, "ble", "ll_rx", sn=0)
        assert [r.layer for r in ring.records()] == ["ble", "ble"]

    def test_seq_stays_dense_under_filtering(self):
        """The filter runs before seq allocation, so a filtered golden
        trace has gapless sequence numbers."""
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring], layers={"ble"})
        tracer.emit(1, "phy", "packet", channel=1)
        tracer.emit(2, "ble", "ll_tx", sn=0)
        tracer.emit(3, "phy", "packet", channel=2)
        tracer.emit(4, "ble", "ll_rx", sn=0)
        assert [r.seq for r in ring.records()] == [0, 1]

    def test_no_filter_means_all_layers(self):
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring])
        tracer.emit(1, "anything", "goes", x=1)
        assert len(ring) == 1


class TestConnNormalization:
    def test_conn_ids_are_first_seen_dense(self):
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring])
        # raw ids from a warm process-global counter
        tracer.emit(1, "ble", "ll_tx", conn=4711)
        tracer.emit(2, "ble", "ll_tx", conn=4712)
        tracer.emit(3, "ble", "ll_tx", conn=4711)
        assert [r.get("conn") for r in ring.records()] == [0, 1, 0]

    def test_non_conn_fields_are_untouched(self):
        ring = RingBufferSink()
        tracer = Tracer()
        tracer.configure(sinks=[ring])
        tracer.emit(1, "ble", "radio_claim", node="node7", start=10, end=20)
        record = ring.records()[0]
        assert record.get("node") == "node7"
        assert record.get("start") == 10


class TestDisabledOverhead:
    def test_disabled_guard_is_cheap(self):
        """The disabled hot path (attribute load + branch) must cost no
        more than a small multiple of an attribute access -- a coarse
        regression guard for the near-zero-overhead requirement; the
        <5 % end-to-end bound is checked by the benchmark suite."""
        tracer = Tracer()
        n = 200_000
        t0 = time.perf_counter()
        for _ in range(n):
            if tracer.enabled:
                tracer.emit(0, "ble", "ll_tx", sn=0)
        guard_cost = time.perf_counter() - t0
        assert tracer.records_emitted == 0
        # generous absolute bound: ~microsecond-scale per check would mean
        # the guard grew real work; 200k checks should take well under 0.5 s
        assert guard_cost < 0.5
