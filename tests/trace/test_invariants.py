"""Invariant-checker unit tests over synthetic record streams.

Each checker gets a minimal legal stream (must stay silent) and a minimal
illegal one (must produce exactly the expected violation) -- the streams
are hand-built `TraceRecord`s, so these tests pin the checker semantics
independently of the simulator.
"""

from repro.trace.invariants import (
    AnchorSpacingChecker,
    CheckerSink,
    FragmentReassemblyChecker,
    RadioExclusiveChecker,
    ReattachChecker,
    SeqAckChecker,
    SupervisionChecker,
    check_records,
    default_checkers,
)
from repro.trace.record import TraceRecord

MS = 1_000_000


def rec(t, layer, kind, **fields):
    return TraceRecord(t, layer, kind, 0, tuple(fields.items()))


class TestRadioExclusive:
    def test_sequential_claims_pass(self):
        checker = RadioExclusiveChecker()
        checker.observe(rec(0, "ble", "radio_claim", node="a", start=0, end=10))
        checker.observe(rec(10, "ble", "radio_claim", node="a", start=10, end=20))
        assert checker.violations == []

    def test_overlap_fails(self):
        checker = RadioExclusiveChecker()
        checker.observe(rec(0, "ble", "radio_claim", node="a", start=0, end=10))
        checker.observe(rec(5, "ble", "radio_claim", node="a", start=5, end=15))
        assert len(checker.violations) == 1
        assert "overlaps" in checker.violations[0].message

    def test_different_nodes_never_conflict(self):
        checker = RadioExclusiveChecker()
        checker.observe(rec(0, "ble", "radio_claim", node="a", start=0, end=10))
        checker.observe(rec(0, "ble", "radio_claim", node="b", start=0, end=10))
        assert checker.violations == []

    def test_negative_claim_fails(self):
        checker = RadioExclusiveChecker()
        checker.observe(rec(0, "ble", "radio_claim", node="a", start=10, end=5))
        assert any("negative" in v.message for v in checker.violations)


def _event(t, conn, event, anchor, interval=75 * MS, widening=32000):
    return rec(
        t, "ble", "conn_event",
        conn=conn, event=event, anchor=anchor, channel=0,
        interval_ns=interval, widening=widening,
        window_hit=True, coord_runs=True, sub_listens=True,
    )


class TestAnchorSpacing:
    def test_exact_interval_passes(self):
        checker = AnchorSpacingChecker()
        checker.observe(_event(0, 0, 0, 0))
        checker.observe(_event(75 * MS, 0, 1, 75 * MS))
        assert checker.violations == []

    def test_drift_within_widening_passes(self):
        checker = AnchorSpacingChecker()
        checker.observe(_event(0, 0, 0, 0))
        checker.observe(_event(75 * MS, 0, 1, 75 * MS + 30_000))
        assert checker.violations == []

    def test_gross_misplacement_fails(self):
        checker = AnchorSpacingChecker()
        checker.observe(_event(0, 0, 0, 0))
        checker.observe(_event(80 * MS, 0, 1, 80 * MS))  # 5 ms late
        assert len(checker.violations) == 1
        assert "anchor spacing" in checker.violations[0].message

    def test_event_counter_jump_fails(self):
        checker = AnchorSpacingChecker()
        checker.observe(_event(0, 0, 0, 0))
        checker.observe(_event(150 * MS, 0, 2, 150 * MS))
        assert any("jumped" in v.message for v in checker.violations)

    def test_interval_change_uses_current_records_interval(self):
        """A param update changes the negotiated interval; the new record
        carries it, so the checker follows without special-casing."""
        checker = AnchorSpacingChecker()
        checker.observe(_event(0, 0, 0, 0))
        checker.observe(_event(100 * MS, 0, 1, 100 * MS, interval=100 * MS))
        assert checker.violations == []

    def test_close_resets_per_conn_state(self):
        checker = AnchorSpacingChecker()
        checker.observe(_event(0, 0, 7, 0))
        checker.observe(rec(10 * MS, "ble", "conn_close", conn=0, reason="local"))
        # a new connection reusing the normalized id restarts cleanly
        checker.observe(_event(500 * MS, 0, 0, 500 * MS))
        assert checker.violations == []


def _open(t, conn):
    return rec(
        t, "ble", "conn_open",
        conn=conn, coordinator="a", subordinate="b",
        interval_ns=75 * MS, anchor0=t, timeout_ns=450 * MS,
    )


def _tx(t, conn, role, sn, nesn):
    return rec(t, "ble", "ll_tx", conn=conn, role=role, sn=sn, nesn=nesn,
               len=0, retx=False)


def _rx(t, conn, role, sn, nesn, my_sn, my_nesn):
    return rec(t, "ble", "ll_rx", conn=conn, role=role, sn=sn, nesn=nesn,
               len=0, my_sn=my_sn, my_nesn=my_nesn)


class TestSeqAck:
    def test_clean_exchange_passes(self):
        checker = SeqAckChecker()
        checker.observe(_open(0, 0))
        # event: coordinator sends SN0/NESN0, sub receives and replies
        checker.observe(_tx(1, 0, "coordinator", 0, 0))
        checker.observe(_rx(2, 0, "subordinate", 0, 0, 0, 0))
        checker.observe(_tx(3, 0, "subordinate", 0, 1))
        checker.observe(_rx(4, 0, "coordinator", 0, 1, 0, 0))
        # next event: coordinator advanced SN (acked) and NESN (accepted)
        checker.observe(_tx(5, 0, "coordinator", 1, 1))
        assert checker.violations == []

    def test_sn_skip_fails(self):
        checker = SeqAckChecker()
        checker.observe(_open(0, 0))
        checker.observe(_tx(1, 0, "coordinator", 1, 0))  # SN jumped with no ack
        assert len(checker.violations) == 1
        assert "SN advanced without an ack" in checker.violations[0].message

    def test_nesn_skip_fails(self):
        checker = SeqAckChecker()
        checker.observe(_open(0, 0))
        checker.observe(_tx(1, 0, "coordinator", 0, 1))  # NESN moved, no PDU
        assert any("NESN moved" in v.message for v in checker.violations)

    def test_retransmission_keeps_sn(self):
        """An unacked PDU is retransmitted with the same SN -- legal."""
        checker = SeqAckChecker()
        checker.observe(_open(0, 0))
        checker.observe(_tx(1, 0, "coordinator", 0, 0))
        checker.observe(_tx(2, 0, "coordinator", 0, 0))  # lost, resent
        assert checker.violations == []

    def test_receiver_divergence_fails(self):
        checker = SeqAckChecker()
        checker.observe(_open(0, 0))
        checker.observe(_rx(1, 0, "subordinate", 0, 0, 1, 0))  # my_sn wrong
        assert any("diverged" in v.message for v in checker.violations)

    def test_close_clears_state(self):
        checker = SeqAckChecker()
        checker.observe(_open(0, 0))
        checker.observe(_tx(1, 0, "coordinator", 0, 0))
        checker.observe(rec(2, "ble", "conn_close", conn=0, reason="local"))
        checker.observe(_open(3, 0))
        checker.observe(_tx(4, 0, "coordinator", 0, 0))
        assert checker.violations == []


def _event_end(t, conn, now, timeout=450 * MS):
    return rec(t, "ble", "conn_event_end", conn=conn, event=0, end=t,
               now=now, timeout_ns=timeout)


class TestSupervision:
    def test_live_connection_passes(self):
        checker = SupervisionChecker()
        checker.observe(_open(0, 0))
        checker.observe(_rx(75 * MS, 0, "coordinator", 0, 0, 0, 0))
        checker.observe(_rx(75 * MS, 0, "subordinate", 0, 0, 0, 0))
        checker.observe(_event_end(75 * MS, 0, now=75 * MS))
        checker.observe(_event(150 * MS, 0, 1, 150 * MS))
        assert checker.violations == []

    def test_timeout_then_close_passes(self):
        checker = SupervisionChecker()
        checker.observe(_open(0, 0))
        checker.observe(_event_end(460 * MS, 0, now=460 * MS))  # silent > 450ms
        checker.observe(
            rec(460 * MS, "ble", "conn_close", conn=0,
                reason="supervision-timeout")
        )
        assert checker.violations == []

    def test_timeout_without_close_fails(self):
        checker = SupervisionChecker()
        checker.observe(_open(0, 0))
        checker.observe(_event_end(460 * MS, 0, now=460 * MS))
        checker.observe(_event(535 * MS, 0, 1, 535 * MS))  # kept running!
        assert len(checker.violations) == 1
        assert "although the supervision timeout expired" in (
            checker.violations[0].message
        )

    def test_close_without_silence_fails(self):
        checker = SupervisionChecker()
        checker.observe(_open(0, 0))
        checker.observe(_rx(75 * MS, 0, "coordinator", 0, 0, 0, 0))
        checker.observe(_rx(75 * MS, 0, "subordinate", 0, 0, 0, 0))
        checker.observe(
            rec(80 * MS, "ble", "conn_close", conn=0,
                reason="supervision-timeout")
        )
        assert len(checker.violations) == 1
        assert "without a timeout-sized silence" in checker.violations[0].message

    def test_local_close_is_never_checked(self):
        checker = SupervisionChecker()
        checker.observe(_open(0, 0))
        checker.observe(rec(10 * MS, "ble", "conn_close", conn=0, reason="local"))
        assert checker.violations == []


class TestFragmentReassembly:
    def test_matching_digest_passes(self):
        checker = FragmentReassemblyChecker()
        checker.observe(rec(0, "sixlo", "frag_tx", tag=1, size=200,
                            n_frags=3, digest="aabbccdd"))
        checker.observe(rec(5, "sixlo", "reassembled", sender=2, tag=1,
                            size=200, digest="aabbccdd"))
        assert checker.violations == []

    def test_corrupted_reassembly_fails(self):
        checker = FragmentReassemblyChecker()
        checker.observe(rec(0, "sixlo", "frag_tx", tag=1, size=200,
                            n_frags=3, digest="aabbccdd"))
        checker.observe(rec(5, "sixlo", "reassembled", sender=2, tag=1,
                            size=200, digest="00000000"))
        assert len(checker.violations) == 1
        assert "matches no fragmented original" in checker.violations[0].message

    def test_unknown_tag_is_skipped(self):
        checker = FragmentReassemblyChecker()
        checker.observe(rec(5, "sixlo", "reassembled", sender=2, tag=99,
                            size=200, digest="aabbccdd"))
        assert checker.violations == []


def _depart(t, node):
    return rec(t, "workload", "depart", node=f"n{node}", id=node, fail=True)


def _arrive(t, node):
    return rec(t, "workload", "arrive", node=f"n{node}", id=node)


def _rotate(t, node, old, new):
    return rec(t, "workload", "rotate", node=f"n{node}", id=node, old=old, new=new)


def _resolve(t, observer, identity, old, new):
    return rec(t, "ble", "rpa_resolve", node=observer, identity=identity,
               old=old, new=new)


def _sixlo_rx(t, node):
    return rec(t, "sixlo", "rx", node=node, peer=0, len=10, data=b"")


class TestReattach:
    def test_clean_churn_cycle_is_silent(self):
        checker = ReattachChecker()
        checker.observe(_depart(0, 2))
        checker.observe(_sixlo_rx(1, 3))  # others keep receiving: fine
        checker.observe(_arrive(2, 2))
        checker.observe(_sixlo_rx(3, 2))  # back, may receive again
        assert checker.violations == []

    def test_delivery_to_departed_node_fails(self):
        checker = ReattachChecker()
        checker.observe(_depart(0, 2))
        checker.observe(_sixlo_rx(1, 2))
        assert len(checker.violations) == 1
        assert "while departed" in checker.violations[0].message

    def test_delivery_after_return_is_legal_again(self):
        checker = ReattachChecker()
        checker.observe(_depart(0, 2))
        checker.observe(_arrive(1, 2))
        checker.observe(_sixlo_rx(2, 2))
        assert checker.violations == []

    def test_resolution_must_match_an_assigned_address(self):
        checker = ReattachChecker()
        checker.observe(_rotate(0, 2, old=2, new=0x100000))
        checker.observe(_resolve(1, "n0", identity=2, old=2, new=0x999999))
        assert len(checker.violations) == 1
        assert "no rotation ever assigned" in checker.violations[0].message

    def test_each_observer_resolves_each_rotation_once(self):
        checker = ReattachChecker()
        checker.observe(_rotate(0, 2, old=2, new=0x100000))
        checker.observe(_resolve(1, "n0", identity=2, old=2, new=0x100000))
        checker.observe(_resolve(1, "n3", identity=2, old=2, new=0x100000))
        assert checker.violations == []  # distinct observers: one each
        checker.observe(_resolve(2, "n0", identity=2, old=2, new=0x100000))
        assert len(checker.violations) == 1
        assert "resolved twice" in checker.violations[0].message

    def test_successive_rotations_resolve_cleanly(self):
        checker = ReattachChecker()
        checker.observe(_rotate(0, 2, old=2, new=0x100000))
        checker.observe(_resolve(1, "n0", identity=2, old=2, new=0x100000))
        checker.observe(_rotate(2, 2, old=0x100000, new=0x100001))
        checker.observe(_resolve(3, "n0", identity=2, old=0x100000,
                                 new=0x100001))
        assert checker.violations == []

    def test_unseen_rotations_disarm_the_assignment_check(self):
        """With the workload layer filtered out of the trace, resolutions
        cannot be matched to assignments -- the checker must stay quiet
        rather than false-positive."""
        checker = ReattachChecker()
        checker.observe(_resolve(0, "n0", identity=2, old=2, new=0x100000))
        assert checker.violations == []


class TestCheckerSink:
    def test_dispatch_routes_only_consumed_kinds(self):
        sink = CheckerSink([RadioExclusiveChecker()])
        sink.accept(rec(0, "ble", "radio_claim", node="a", start=0, end=10))
        sink.accept(rec(1, "phy", "packet", channel=0, nbytes=10, lost=False))
        assert sink.checkers[0].records_seen == 1

    def test_violations_are_time_sorted_across_checkers(self):
        sink = CheckerSink()
        sink.accept(rec(10 * MS, "ble", "conn_close", conn=0,
                        reason="supervision-timeout"))
        sink.accept(rec(0, "ble", "radio_claim", node="a", start=10, end=5))
        sink.finish()
        times = [v.time_ns for v in sink.violations]
        assert times == sorted(times)
        assert len(times) == 2

    def test_check_records_convenience(self):
        records = [
            rec(0, "ble", "radio_claim", node="a", start=0, end=10),
            rec(5, "ble", "radio_claim", node="a", start=5, end=15),
        ]
        violations = check_records(records)
        assert len(violations) == 1

    def test_default_suite_is_complete(self):
        names = {type(c).__name__ for c in default_checkers()}
        assert names == {
            "RadioExclusiveChecker",
            "AnchorSpacingChecker",
            "SeqAckChecker",
            "SupervisionChecker",
            "FragmentReassemblyChecker",
            "ReattachChecker",
        }
