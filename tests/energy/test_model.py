"""Tests for the energy model against the paper's §5.4 numbers."""

import pytest

from repro.ble.conn import Role
from repro.energy import EnergyModel, PAPER_CALIBRATION
from repro.sim.units import MSEC, SEC


model = EnergyModel()


class TestClosedForm:
    def test_idle_connection_currents_match_paper(self):
        """2.3 uC / 2.6 uC at 75 ms -> 30.7 uA / 34.7 uA (§5.4)."""
        coord = model.idle_connection_current_ua(0.075, Role.COORDINATOR)
        sub = model.idle_connection_current_ua(0.075, Role.SUBORDINATE)
        assert coord == pytest.approx(30.7, abs=0.05)
        assert sub == pytest.approx(34.7, abs=0.05)

    def test_beacon_current_matches_paper(self):
        """A 1 s beacon adds 12 uA over idle (§5.4)."""
        assert model.beacon_current_ua(1.0) == pytest.approx(12.0)

    def test_forwarder_coin_cell_life_matches_paper(self):
        """123 uA forwarder + 15 uA idle on 230 mAh -> ~69 days (§5.4)."""
        life = model.forwarder_battery_life_coin_cell(123.0)
        assert life.days == pytest.approx(69, abs=1.0)

    def test_forwarder_li_ion_life_matches_paper(self):
        """Same load on a 2500 mAh 18650 -> a little over 2 years (§5.4)."""
        life = model.forwarder_battery_life_li_ion(123.0)
        assert 2.0 < life.years < 2.2

    def test_longer_interval_cheaper(self):
        fast = model.idle_connection_current_ua(0.025, Role.COORDINATOR)
        slow = model.idle_connection_current_ua(0.5, Role.COORDINATOR)
        assert slow < fast

    def test_event_charge_grows_with_duration(self):
        idle = model.event_charge_uc(Role.COORDINATOR, 310_000)
        busy = model.event_charge_uc(Role.COORDINATOR, 2_000_000)
        assert idle == pytest.approx(PAPER_CALIBRATION.charge_per_event_coord_uc)
        assert busy > idle

    def test_validation(self):
        with pytest.raises(ValueError):
            model.idle_connection_current_ua(0, Role.COORDINATOR)
        with pytest.raises(ValueError):
            model.beacon_current_ua(-1)
        with pytest.raises(ValueError):
            model.battery_life(0, 230)
        with pytest.raises(ValueError):
            model.controller_current_ua(None, 0)


class TestSimulationDriven:
    def test_idle_connection_current_from_sim_matches_closed_form(self):
        """Run an idle connection for 60 s; the counters must reproduce the
        paper's 30.7 / 34.7 uA closed-form currents."""
        import sys, os

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from ble.conftest import BlePlane
        from repro.ble.config import ConnParams

        plane = BlePlane()
        plane.connect(0, 1, params=ConnParams(interval_ns=75 * MSEC), anchor0=MSEC)
        plane.sim.run(until=60 * SEC)
        coord_ua = model.controller_current_ua(plane.nodes[0], 60.0)
        sub_ua = model.controller_current_ua(plane.nodes[1], 60.0)
        assert coord_ua == pytest.approx(30.7, rel=0.02)
        assert sub_ua == pytest.approx(34.7, rel=0.02)

    def test_traffic_increases_current(self):
        import sys, os

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from ble.conftest import BlePlane
        from repro.ble.config import ConnParams

        def run(traffic: bool) -> float:
            plane = BlePlane()
            conn = plane.connect(
                0, 1, params=ConnParams(interval_ns=75 * MSEC), anchor0=MSEC
            )
            if traffic:
                def sender():
                    conn.send(plane.nodes[0], b"x" * 100)
                    plane.sim.after(SEC, sender)

                plane.sim.after(SEC, sender)
            plane.sim.run(until=30 * SEC)
            return model.controller_current_ua(plane.nodes[0], 30.0)

        assert run(traffic=True) > run(traffic=False)

    def test_advertising_charge_counted(self):
        import sys, os

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from ble.conftest import BlePlane

        plane = BlePlane()
        plane.nodes[0].advertise(payload_len=31)
        plane.sim.run(until=10 * SEC)
        ua = model.controller_current_ua(plane.nodes[0], 10.0)
        # ~11 events/s at 90 ms + advDelay: close to the paper's 12 uA for 1 s
        # scaled by the event rate (x10 faster here)
        assert ua == pytest.approx(10 * 12.0, rel=0.25)

    def test_include_idle_board(self):
        import sys, os

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from ble.conftest import BlePlane

        plane = BlePlane()
        with_idle = model.controller_current_ua(
            plane.nodes[0], 1.0, include_idle_board=True
        )
        assert with_idle == pytest.approx(15.0)
