"""Tests for the RPL-lite router over static BLE links.

BLE links come from statconn (so the link layer is known-good); routes come
exclusively from RPL -- DIOs downward, DAOs upward, storing-mode host
routes.  The resulting forwarding state must match what the paper
configures statically (§4.3).
"""

import pytest

from repro.rpl import INFINITE_RANK, RplConfig, RplInstance
from repro.sim.units import SEC
from repro.sixlowpan.ipv6 import Ipv6Address
from repro.testbed.topology import BleNetwork, line_topology_edges, tree_topology_edges


def rpl_network(edges, n, seed=71, config=None):
    net = BleNetwork(n, seed=seed, ppms=[0.0] * n)
    net.apply_edges(edges, install_routes=False)
    rpls = [
        RplInstance(node, is_root=(node.node_id == 0), config=config or RplConfig())
        for node in net.nodes
    ]
    for rpl in rpls:
        rpl.start()
    return net, rpls


class TestJoin:
    def test_line_converges(self):
        net, rpls = rpl_network(line_topology_edges(4), 4)
        net.run(30 * SEC)
        for node_id, rpl in enumerate(rpls):
            assert rpl.joined, f"node {node_id} never joined"
            assert rpl.hops_to_root() == node_id

    def test_tree_converges_with_paper_depths(self):
        net, rpls = rpl_network(tree_topology_edges(), 15)
        net.run(60 * SEC)
        for node_id, rpl in enumerate(rpls):
            assert rpl.joined, f"node {node_id} never joined"
            assert rpl.hops_to_root() == net.hop_count(node_id), (
                f"node {node_id}: RPL depth != link depth"
            )

    def test_parents_follow_links(self):
        net, rpls = rpl_network(line_topology_edges(4), 4)
        net.run(30 * SEC)
        for node_id in range(1, 4):
            assert rpls[node_id].parent == Ipv6Address.mesh_local(node_id - 1)

    def test_root_never_reparents(self):
        net, rpls = rpl_network(line_topology_edges(3), 3)
        net.run(30 * SEC)
        assert rpls[0].parent is None
        assert rpls[0].rank == rpls[0].config.min_hop_rank_increase


class TestRoutes:
    def test_default_routes_point_to_parent(self):
        net, rpls = rpl_network(line_topology_edges(4), 4)
        net.run(30 * SEC)
        for node_id in range(1, 4):
            assert net.nodes[node_id].ip.fib.lookup(
                Ipv6Address.mesh_local(0)
            ) == Ipv6Address.mesh_local(node_id - 1)

    def test_dao_routes_reach_down_the_tree(self):
        net, rpls = rpl_network(tree_topology_edges(), 15)
        net.run(60 * SEC)
        # the root must know a downstream route to every node; interior
        # nodes to every descendant (the paper's manual configuration)
        for target in range(1, 15):
            hop = net.nodes[0].ip.fib.lookup(Ipv6Address.mesh_local(target))
            assert hop is not None, f"root lacks a route to {target}"
        # node 1's subtree: 4, 5, 10, 11, 12
        for target in (4, 5, 10, 11, 12):
            assert net.nodes[1].ip.fib.lookup(
                Ipv6Address.mesh_local(target)
            ) is not None

    def test_end_to_end_traffic_over_rpl_routes(self):
        from repro.testbed.traffic import Consumer, Producer

        net, rpls = rpl_network(tree_topology_edges(), 15)
        net.run(60 * SEC)
        consumer = Consumer(net.nodes[0])
        producer = Producer(net.nodes[10], net.nodes[0].mesh_local)
        producer.start()
        net.run(80 * SEC)
        assert producer.acks_received > 0
        assert producer.pdr > 0.9


class TestRepair:
    def test_parent_loss_detaches_and_poisons_subtree(self):
        from repro.ble.conn import DisconnectReason

        net, rpls = rpl_network(line_topology_edges(4), 4)
        net.run(30 * SEC)
        # cut the 0-1 link: 1 loses its parent; 2 and 3 hear the poison
        conn = net.nodes[1].controller.connection_to(0)
        conn.close(DisconnectReason.SUPERVISION_TIMEOUT)
        # the BLE link is back within ~100 ms (statconn), but the re-join
        # waits for the root's next Trickle-paced DIO (interval has grown
        # to tens of seconds by now)
        net.run(90 * SEC)
        for node_id, rpl in enumerate(rpls):
            assert rpl.joined, f"node {node_id} did not recover"
        assert rpls[1].detaches >= 1

    def test_child_loss_withdraws_dao_routes(self):
        from repro.ble.conn import DisconnectReason

        net, rpls = rpl_network(line_topology_edges(3), 3)
        net.run(30 * SEC)
        assert net.nodes[1].ip.fib.lookup(
            Ipv6Address.mesh_local(2)
        ) == Ipv6Address.mesh_local(2)
        conn = net.nodes[2].controller.connection_to(1)
        conn.close(DisconnectReason.SUPERVISION_TIMEOUT)
        # immediately after the loss the *host* route is gone: lookups now
        # fall through to the default route (towards the root)
        assert net.nodes[1].ip.fib.lookup(
            Ipv6Address.mesh_local(2)
        ) == Ipv6Address.mesh_local(0)
        net.run(120 * SEC)
        # and it comes back after statconn + RPL heal
        assert net.nodes[1].ip.fib.lookup(
            Ipv6Address.mesh_local(2)
        ) is not None


class TestProtocolDetails:
    def test_trickle_slows_down_when_consistent(self):
        net, rpls = rpl_network(line_topology_edges(3), 3)
        net.run(120 * SEC)
        for rpl in rpls:
            assert rpl.trickle.interval_ns > rpl.config.trickle_imin_ns

    def test_infinite_rank_constant(self):
        assert INFINITE_RANK == 0xFFFF

    def test_foreign_instance_ignored(self):
        net, rpls = rpl_network(line_topology_edges(2), 2,
                                config=RplConfig(instance_id=1))
        # node 1 runs instance 7 instead
        rpls[1].config = RplConfig(instance_id=7)
        net.run(20 * SEC)
        assert not rpls[1].joined


class TestSolicitation:
    def test_unjoined_nodes_send_dis(self):
        """Detached routers poll with DIS instead of waiting for Trickle."""
        net, rpls = rpl_network(line_topology_edges(3), 3)
        net.run(30 * SEC)
        # everyone joined quickly, but the non-roots solicited at least once
        assert all(r.dis_sent >= 1 for r in rpls[1:])
        assert rpls[0].dis_sent == 0  # the root never solicits

    def test_dis_makes_healing_fast(self):
        """Re-joining after a loss beats the grown Trickle interval."""
        from repro.ble.conn import DisconnectReason

        net, rpls = rpl_network(line_topology_edges(3), 3)
        net.run(60 * SEC)  # trickle intervals have grown well past Imin
        assert rpls[1].trickle.interval_ns > 10 * SEC
        conn = net.nodes[1].controller.connection_to(0)
        conn.close(DisconnectReason.SUPERVISION_TIMEOUT)
        cut_at = net.sim.now
        while not all(r.joined for r in rpls) and net.sim.now < cut_at + 120 * SEC:
            net.run(net.sim.now + 1 * SEC)
        healing_s = (net.sim.now - cut_at) / SEC
        assert all(r.joined for r in rpls)
        # DIS-triggered Trickle resets keep healing near the DIS cadence,
        # far below the ~30-60 s a silent wait would have cost
        assert healing_s <= 15, f"healing took {healing_s:.0f}s"
