"""Tests for the Trickle timer (RFC 6206)."""

import random

import pytest

from repro.rpl.trickle import TrickleTimer
from repro.sim import Simulator
from repro.sim.units import MSEC, SEC


def make(sim=None, imin_ms=100, doublings=4, k=2, seed=1):
    sim = sim or Simulator()
    fires = []
    timer = TrickleTimer(
        sim,
        random.Random(seed),
        on_transmit=lambda: fires.append(sim.now),
        imin_ns=imin_ms * MSEC,
        imax_doublings=doublings,
        k=k,
    )
    return sim, timer, fires


def test_first_transmission_in_second_half_of_imin():
    sim, timer, fires = make()
    timer.start()
    sim.run(until=100 * MSEC)
    assert len(fires) == 1
    assert 50 * MSEC <= fires[0] < 100 * MSEC


def test_interval_doubles_and_caps():
    sim, timer, fires = make(imin_ms=100, doublings=3)
    timer.start()
    sim.run(until=100 * SEC)
    assert timer.interval_ns == 800 * MSEC  # 100 << 3
    # steady state: ~one transmission per capped interval
    assert len(fires) > 50


def test_suppression_when_enough_consistent_heard():
    sim, timer, fires = make(k=2)
    timer.start()

    def chatter():
        timer.hear_consistent()
        timer.hear_consistent()
        timer.hear_consistent()
        sim.after(20 * MSEC, chatter)

    sim.after(1, chatter)
    sim.run(until=5 * SEC)
    assert fires == []
    assert timer.suppressions > 0


def test_reset_shrinks_interval():
    sim, timer, fires = make(imin_ms=100, doublings=5)
    timer.start()
    sim.run(until=20 * SEC)
    assert timer.interval_ns > 100 * MSEC
    timer.reset()
    assert timer.interval_ns == 100 * MSEC
    assert timer.resets == 1


def test_reset_at_imin_does_not_restart_interval():
    sim, timer, fires = make(imin_ms=100)
    timer.start()
    sim.run(until=10 * MSEC)
    timer.reset()  # interval already Imin: keep running (RFC 6206 §4.2/6)
    sim.run(until=100 * MSEC)
    assert len(fires) == 1


def test_stop_halts_everything():
    sim, timer, fires = make()
    timer.start()
    sim.run(until=60 * MSEC)
    timer.stop()
    count = len(fires)
    sim.run(until=10 * SEC)
    assert len(fires) == count


def test_start_is_idempotent():
    sim, timer, fires = make()
    timer.start()
    timer.start()
    sim.run(until=100 * MSEC)
    assert len(fires) == 1


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        TrickleTimer(sim, random.Random(1), lambda: None, imin_ns=0)
    with pytest.raises(ValueError):
        TrickleTimer(sim, random.Random(1), lambda: None, imin_ns=1, k=0)


def test_transmissions_spread_across_interval_halves():
    """t is re-drawn each interval: firing offsets must vary."""
    sim, timer, fires = make(imin_ms=100, doublings=0, seed=9)
    timer.start()
    sim.run(until=30 * SEC)
    offsets = {t % (100 * MSEC) for t in fires}
    assert len(offsets) > 10
