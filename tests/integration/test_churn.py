"""Failure-injection / churn properties of the self-healing stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ble.conn import DisconnectReason, Role
from repro.sim.units import SEC
from repro.testbed.dynamic import DynamicBleNetwork
from repro.testbed.topology import BleNetwork, tree_topology_edges


@given(
    seed=st.integers(0, 50),
    kills=st.lists(st.integers(0, 10 ** 6), min_size=1, max_size=4),
)
@settings(max_examples=10, deadline=None)
def test_dynamic_mesh_always_heals_after_random_kills(seed, kills):
    """Property: whatever uplinks die, the mesh re-forms completely."""
    net = DynamicBleNetwork(8, seed=seed)
    net.start()
    net.run(60 * SEC)
    assert net.fully_joined()
    for kill in kills:
        conns = [
            conn
            for node in net.nodes
            for conn in node.controller.connections
            if conn.coord.controller is node.controller
        ]
        victim = conns[kill % len(conns)]
        victim.close(DisconnectReason.SUPERVISION_TIMEOUT)
        net.run(net.sim.now + 60 * SEC)
    deadline = net.sim.now + 300 * SEC
    while not net.fully_joined() and net.sim.now < deadline:
        net.run(net.sim.now + 5 * SEC)
    assert net.fully_joined(), "mesh failed to heal after churn"
    # structural invariants after healing
    for node, dynconn, rpl in zip(net.nodes, net.dynconns, net.rpls):
        intervals = node.controller.used_intervals_ns()
        assert len(set(intervals)) == len(intervals), "interval collision"
        assert dynconn.child_count() <= dynconn.config.max_children
        if not rpl.is_root:
            assert rpl.parent is not None


@given(seed=st.integers(0, 30), kill_index=st.integers(0, 13))
@settings(max_examples=8, deadline=None)
def test_statconn_always_restores_the_configured_tree(seed, kill_index):
    """Property: statconn re-establishes any killed configured link."""
    net = BleNetwork(15, seed=seed, ppms=[0.0] * 15)
    edges = tree_topology_edges()
    net.apply_edges(edges)
    net.run(5 * SEC)
    assert net.all_links_up()
    parent, child = edges[kill_index]
    conn = net.nodes[child].controller.connection_to(parent)
    conn.close(DisconnectReason.SUPERVISION_TIMEOUT)
    net.run(net.sim.now + 3 * SEC)
    assert net.all_links_up()
    new_conn = net.nodes[child].controller.connection_to(parent)
    assert new_conn is not None and new_conn is not conn
    assert net.nodes[child].controller.role_of(new_conn) is Role.COORDINATOR
