"""End-to-end integration: CoAP over UDP over IPv6 over L2CAP over BLE.

Small networks, short runs -- these validate that the whole Figure 5 stack
composes, forwards multi-hop, and recovers from link loss.  The paper-scale
experiments live in ``benchmarks/``.
"""

import pytest

from repro.ble.conn import DisconnectReason
from repro.sim.units import MSEC, SEC
from repro.testbed.topology import BleNetwork, line_topology_edges
from repro.testbed.traffic import Consumer, Producer, TrafficConfig


def linear_net(n, seed=4, **kwargs):
    net = BleNetwork(n, seed=seed, ppms=[0.0] * n, **kwargs)
    net.apply_edges(line_topology_edges(n))
    return net


def test_single_hop_request_response():
    net = linear_net(2)
    consumer = Consumer(net.nodes[0])
    producer = Producer(net.nodes[1], net.nodes[0].mesh_local)
    producer.start()
    net.run(10 * SEC)
    assert producer.requests_sent >= 8
    assert producer.pdr == 1.0
    assert consumer.total_requests == producer.requests_sent


def test_three_hop_forwarding():
    net = linear_net(4)
    consumer = Consumer(net.nodes[0])
    producer = Producer(net.nodes[3], net.nodes[0].mesh_local)
    producer.start()
    net.run(15 * SEC)
    assert producer.pdr == 1.0
    # intermediate nodes actually forwarded (request and response legs)
    assert net.nodes[1].ip.forwarded >= 2 * producer.requests_sent
    assert net.nodes[2].ip.forwarded >= 2 * producer.requests_sent


def test_rtt_scales_with_hops_and_interval():
    """§5.1: RTT is dominated by per-hop connection-interval quantization."""
    rtts = {}
    for n in (2, 5):
        net = linear_net(n)
        Consumer(net.nodes[0])
        producer = Producer(net.nodes[n - 1], net.nodes[0].mesh_local)
        producer.start(delay_ns=2 * SEC)  # let links establish first
        net.run(40 * SEC)
        assert producer.pdr == 1.0
        samples = [rtt for _, rtt in producer.rtt_samples]
        rtts[n] = sum(samples) / len(samples)
    # 1 hop vs 4 hops: the RTT must grow roughly with the hop count
    assert rtts[5] > 2.5 * rtts[2]
    # and a single hop's RTT stays below ~2 connection intervals (75 ms)
    assert rtts[2] < 2 * 75 * MSEC


def test_multiple_producers_tree():
    from repro.testbed.topology import tree_topology_edges

    net = BleNetwork(15, seed=9, ppms=[0.0] * 15)
    net.apply_edges(tree_topology_edges())
    consumer = Consumer(net.nodes[0])
    producers = [
        Producer(net.nodes[i], net.nodes[0].mesh_local) for i in range(1, 15)
    ]
    for producer in producers:
        producer.start(delay_ns=3 * SEC)
    net.run(20 * SEC)
    assert net.all_links_up()
    for producer in producers:
        assert producer.requests_sent > 0
        assert producer.pdr == 1.0, f"producer {producer.node.node_id}"


def test_traffic_survives_connection_loss():
    """statconn reconnects; only packets in the gap are lost."""
    net = linear_net(3)
    Consumer(net.nodes[0])
    producer = Producer(
        net.nodes[2],
        net.nodes[0].mesh_local,
        config=TrafficConfig(interval_ns=200 * MSEC, jitter_ns=50 * MSEC),
    )
    producer.start(delay_ns=2 * SEC)

    def kill_link():
        conn = net.nodes[1].controller.connection_to(0)
        if conn:
            conn.close(DisconnectReason.SUPERVISION_TIMEOUT)

    net.sim.at(10 * SEC, kill_link)
    net.run(30 * SEC)
    assert net.all_links_up()
    assert producer.acks_received > 0
    # loss window is ~tens of ms; at 200 ms spacing nearly everything lands
    assert producer.pdr > 0.95


def test_pktbuf_exhaustion_drops_but_recovers():
    """Overload fills the GNRC pktbuf; drops are counted there (§5.2)."""
    net = linear_net(3, pktbuf_capacity=600)
    Consumer(net.nodes[0])
    producer = Producer(
        net.nodes[2],
        net.nodes[0].mesh_local,
        config=TrafficConfig(interval_ns=8 * MSEC, jitter_ns=2 * MSEC),
    )
    producer.start(delay_ns=2 * SEC)
    net.run(12 * SEC)
    drops = (
        net.nodes[2].netif.drops_pktbuf
        + net.nodes[1].netif.drops_pktbuf
    )
    assert drops > 0
    assert producer.pdr < 1.0
    assert producer.acks_received > 0  # but the network did not collapse


def test_forwarding_uses_hop_limit():
    net = linear_net(3)
    Consumer(net.nodes[0])
    producer = Producer(net.nodes[2], net.nodes[0].mesh_local)
    producer.start()
    net.run(8 * SEC)
    # grab any packet mid-flight: originated hop limit is 64, the consumer
    # receives it after 2 hops; verify the forward counters line up instead
    assert net.nodes[1].ip.drops_hop_limit == 0
    assert net.nodes[1].ip.forwarded > 0
