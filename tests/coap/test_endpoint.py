"""Tests for the gcoap-equivalent endpoint (client + server)."""

import pytest

from repro.sim.units import MSEC, SEC
from repro.testbed.topology import BleNetwork
from repro.coap import CoapEndpoint
from repro.coap.message import CoapCode, CoapMessage, CoapType


def linked_pair(seed=21, with_server=True):
    net = BleNetwork(2, seed=seed, ppms=[0.0, 0.0])
    net.apply_edges([(0, 1)])
    server = CoapEndpoint(net.nodes[0]) if with_server else None
    client = CoapEndpoint(net.nodes[1])
    # let statconn establish the link before anyone sends
    net.run(2 * SEC)
    assert net.all_links_up()
    return net, server, client


def test_request_response_roundtrip():
    net, server, client = linked_pair()
    server.add_resource("temp", lambda payload, src: b"23C")
    got = []
    client.request(
        net.nodes[0].mesh_local,
        "temp",
        b"?",
        on_response=lambda msg, rtt: got.append((msg.payload, rtt)),
    )
    net.run(5 * SEC)
    assert len(got) == 1
    payload, rtt = got[0]
    assert payload == b"23C"
    assert rtt > 0
    assert server.requests_served == 1
    assert client.responses_received == 1


def test_empty_ack_for_none_handler():
    """The paper's consumer replies with a plain (empty) CoAP ACK."""
    net, server, client = linked_pair()
    server.add_resource("sense", lambda payload, src: None)
    got = []
    client.request(
        net.nodes[0].mesh_local, "sense", b"x" * 39,
        on_response=lambda msg, rtt: got.append(msg),
    )
    net.run(5 * SEC)
    assert len(got) == 1
    assert got[0].code is CoapCode.EMPTY
    assert got[0].mtype is CoapType.ACK


def test_unknown_resource_gets_404():
    net, server, client = linked_pair()
    got = []
    client.request(
        net.nodes[0].mesh_local, "nope", b"",
        on_response=lambda msg, rtt: got.append(msg.code),
    )
    net.run(5 * SEC)
    assert got == [CoapCode.NOT_FOUND]


def test_con_retransmission_when_peer_is_deaf():
    """CON requests retransmit on the RFC 7252 timers, then give up."""
    # no server endpoint on the peer: datagrams arrive at an unbound port
    net, server, client = linked_pair(with_server=False)
    timeouts = []
    client.request(
        net.nodes[0].mesh_local,
        "sense",
        b"x",
        confirmable=True,
        on_timeout=lambda: timeouts.append(net.sim.now),
    )
    # MAX_RETRANSMIT=4, base timeout 2-3 s doubling: give it plenty
    net.run(130 * SEC)
    assert timeouts, "the CON request must eventually give up"
    assert client.timeouts == 1
    assert client.retransmissions == 4


def test_con_success_cancels_timers():
    net, server, client = linked_pair()
    server.add_resource("sense", lambda payload, src: None)
    got = []
    client.request(
        net.nodes[0].mesh_local, "sense", b"x",
        confirmable=True,
        on_response=lambda msg, rtt: got.append(msg),
    )
    net.run(30 * SEC)
    assert len(got) == 1
    assert client.retransmissions == 0
    assert client.timeouts == 0


def test_mid_and_token_advance_per_request():
    net, server, client = linked_pair()
    server.add_resource("sense", lambda payload, src: None)
    count = [0]
    for _ in range(5):
        client.request(
            net.nodes[0].mesh_local, "sense", b"x",
            on_response=lambda msg, rtt: count.__setitem__(0, count[0] + 1),
        )
    net.run(5 * SEC)
    assert count[0] == 5  # all five matched despite identical paths


def test_decode_error_counted():
    net, server, client = linked_pair()
    net.run(2 * SEC)
    # deliver garbage straight to the server's UDP port
    net.nodes[1].udp.sendto(b"\xff\xff", net.nodes[0].mesh_local, 5683, 5683)
    net.run(6 * SEC)
    assert server.decode_errors == 1


def test_stale_response_ignored():
    net, server, client = linked_pair()
    net.run(2 * SEC)
    # a response nobody asked for
    stray = CoapMessage(CoapType.ACK, CoapCode.EMPTY, mid=0x7777)
    net.nodes[0].udp.sendto(stray.encode(), net.nodes[1].mesh_local, 5683, 5683)
    net.run(6 * SEC)
    assert client.responses_received == 0
