"""Tests for the CoAP codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coap.message import (
    CoapCode,
    CoapDecodeError,
    CoapMessage,
    CoapOption,
    CoapType,
)


def test_request_builder_and_roundtrip():
    msg = CoapMessage.request("sense", b"x" * 39, mid=0x1234, token=b"\xAA\xBB")
    assert msg.mtype is CoapType.NON
    assert msg.uri_path() == "sense"
    back = CoapMessage.decode(msg.encode())
    assert back == msg


def test_paper_framing_size():
    """§4.3 arithmetic: 4 header + 2 token + 6 Uri-Path("sense") + 1 marker
    = 13 bytes of CoAP framing around the 39-byte payload."""
    msg = CoapMessage.request("sense", bytes(39), mid=1, token=b"\x00\x01")
    assert len(msg.encode()) == 52
    assert len(msg.encode()) - len(msg.payload) == 13


def test_empty_ack_is_four_bytes():
    req = CoapMessage.request("sense", b"p", mid=77, token=b"\x01\x02")
    ack = req.make_ack()
    assert ack.mtype is CoapType.ACK
    assert ack.mid == 77
    assert len(ack.encode()) == 4


def test_piggybacked_ack_carries_token():
    req = CoapMessage.request("sense", b"p", mid=77, token=b"\x01\x02")
    ack = req.make_ack(CoapCode.CONTENT, b"reply")
    back = CoapMessage.decode(ack.encode())
    assert back.token == b"\x01\x02"
    assert back.payload == b"reply"
    assert back.code is CoapCode.CONTENT


def test_multi_segment_path():
    msg = CoapMessage.request("a/b/c", mid=1)
    assert CoapMessage.decode(msg.encode()).uri_path() == "a/b/c"


def test_options_sorted_on_encode():
    msg = CoapMessage(
        mtype=CoapType.NON,
        code=CoapCode.GET,
        mid=1,
        options=[(CoapOption.CONTENT_FORMAT, b"\x00"), (CoapOption.URI_PATH, b"x")],
    )
    back = CoapMessage.decode(msg.encode())
    assert [n for n, _ in back.options] == [11, 12]


def test_extended_option_encoding():
    # option number 300 needs the 14-nibble extended delta form
    msg = CoapMessage(
        mtype=CoapType.NON,
        code=CoapCode.GET,
        mid=5,
        options=[(300, b"v" * 20), (65000, b"w" * 300)],
    )
    back = CoapMessage.decode(msg.encode())
    assert back.options == msg.options


def test_code_dotted_form():
    assert CoapCode.CONTENT.dotted == "2.05"
    assert CoapCode.GET.dotted == "0.01"
    assert CoapCode.NOT_FOUND.dotted == "4.04"


class TestValidation:
    def test_mid_range(self):
        with pytest.raises(ValueError):
            CoapMessage(CoapType.NON, CoapCode.GET, mid=70000)

    def test_token_length(self):
        with pytest.raises(ValueError):
            CoapMessage(CoapType.NON, CoapCode.GET, mid=1, token=b"x" * 9)

    def test_decode_short(self):
        with pytest.raises(CoapDecodeError):
            CoapMessage.decode(b"\x40\x01")

    def test_decode_bad_version(self):
        with pytest.raises(CoapDecodeError):
            CoapMessage.decode(b"\x80\x01\x00\x01")

    def test_decode_bad_token_length(self):
        with pytest.raises(CoapDecodeError):
            CoapMessage.decode(b"\x4F\x01\x00\x01" + b"\x00" * 15)

    def test_decode_marker_without_payload(self):
        msg = CoapMessage.request("p", b"x", mid=1)
        wire = msg.encode()[:-1]  # chop the payload, keep the marker
        with pytest.raises(CoapDecodeError):
            CoapMessage.decode(wire)

    def test_decode_truncated_option(self):
        msg = CoapMessage.request("sensor", mid=1)
        with pytest.raises(CoapDecodeError):
            CoapMessage.decode(msg.encode()[:-3])


@given(
    mtype=st.sampled_from(list(CoapType)),
    code=st.sampled_from(list(CoapCode)),
    mid=st.integers(0, 0xFFFF),
    token=st.binary(max_size=8),
    payload=st.binary(min_size=1, max_size=100),
    options=st.lists(
        st.tuples(st.integers(1, 2000), st.binary(max_size=50)),
        max_size=5,
        unique_by=lambda kv: kv[0],
    ),
)
@settings(max_examples=200)
def test_roundtrip_property(mtype, code, mid, token, payload, options):
    msg = CoapMessage(
        mtype=mtype,
        code=code,
        mid=mid,
        token=token,
        options=sorted(options),
        payload=payload,
    )
    assert CoapMessage.decode(msg.encode()) == msg
