#!/bin/sh
# Full reproduction pass: install, test, regenerate every figure/table.
# REPRO_DURATION_SCALE (default 1.0) trades runtime for fidelity.
set -e
cd "$(dirname "$0")/.."
pip install -e . 2>/dev/null || python setup.py develop
pytest tests/ 2>&1 | tee test_output.txt
pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt
