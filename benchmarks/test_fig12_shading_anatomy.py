"""Figure 12: link degradation under connection shading (paper §6.1).

A tree network with static 75 ms intervals and the ALTERNATE overlap policy
(the paper's "choice (ii)": the controller alternates overlapping events
instead of starving one connection).  Clock drifts are set explicitly so
two of the consumer's links slide into overlap *during* the run: the
affected upstream link's layer-2 PDR drops towards ~50 %, the owning
producer's CoAP PDR dips, and the degradation hits all data channels
evenly -- the three panels of Figure 12.

Base duration: 700 s; the ±45 ppm drift pair guarantees one full anchor
wrap (75 ms / 90 us/s = 833 s) so the overlap occurs within the run.
(The paper's boards drift ~6 us/s and shade after hours; the larger drift
is pure acceleration, the geometry is identical.)
"""

import math

from repro.core.shading import detect_degradation_spans
from repro.exp import ExperimentConfig, run_experiment
from repro.exp.asciiplot import render_heat_rows, render_series
from repro.exp.metrics import per_channel_pdr
from repro.exp.report import format_table

from conftest import banner, scaled

#: node 1 and node 2 coordinate the consumer's first two links; ±45 ppm
#: makes their anchors slide 90 us/s against each other.
DRIFTS = (0.0, 45.0, -45.0) + (0.0,) * 12


def run(duration_s: float):
    return run_experiment(
        ExperimentConfig(
            name="fig12",
            conn_interval="75",
            scheduler_policy="alternate",
            drift_ppms=DRIFTS,
            duration_s=duration_s,
            sample_period_s=min(10.0, duration_s / 40),
            seed=12,
        )
    )


def test_fig12_shading_link_degradation(run_once):
    banner("Figure 12: shading-induced link degradation", "paper §6.1, Fig. 12")
    duration = scaled(700, minimum=700)
    result = run_once(run, duration)

    # locate the most-degraded upstream link among the drifting pair
    worst_child, worst_span, worst_min = None, None, 1.0
    series_by_child = {}
    for child in (1, 2):
        series = result.upstream_series(child)
        assert series is not None
        times, pdrs = series.binned_pdr()
        series_by_child[child] = (times, pdrs)
        if pdrs and min(pdrs) < worst_min:
            worst_min = min(pdrs)
            worst_child = child
            worst_span = detect_degradation_spans(times, pdrs, threshold=0.9)

    print(format_table(
        ["link", "overall LL PDR", "min binned LL PDR", "degradation spans"],
        [
            [
                f"node {child} -> consumer",
                f"{result.upstream_series(child).overall_pdr():.3f}",
                f"{min(p) if (p := series_by_child[child][1]) else 1.0:.3f}",
                len(detect_degradation_spans(*series_by_child[child], threshold=0.9)),
            ]
            for child in (1, 2)
        ],
        title="(paper: the shaded link's LL PDR drops to ~50 %)",
    ))

    print("\nFig 12 middle: upstream LL PDR over runtime")
    print(render_series(
        {f"node {c} upstream": series_by_child[c] for c in (1, 2)},
        y_lo=0.4, y_hi=1.0,
    ))

    # per-channel PDR of the degraded link: Figure 12 bottom
    channels = result.link_channels.get(((worst_child, 0), "up"))
    assert channels is not None
    pdrs = per_channel_pdr(channels)
    used = [p for p in pdrs if not math.isnan(p)]
    print("\nFig 12 bottom: per-channel LL PDR of the degraded link")
    print(render_heat_rows({f"node {worst_child} ch 0-36": pdrs}, lo=0.5, hi=1.0))

    # ---- shape assertions ---------------------------------------------------
    assert worst_min < 0.85, (
        f"expected a shading degradation below 0.85 LL PDR, saw {worst_min:.3f}"
    )
    assert worst_span, "a degradation span must be detectable"
    # alternation degrades, it does not (necessarily) kill: the paper's link
    # drops towards ~50 % while the connection stays up
    assert worst_min > 0.25
    # degradation is even across channels (the paper's key diagnostic: not
    # interference but time-domain shading): no channel is an outlier
    assert max(used) - min(used) < 0.45, "per-channel PDRs must degrade evenly"
    # the knock-on CoAP dip: the degraded link's producer loses more than the
    # untouched fleet average (or at least delivery stayed complete thanks to
    # retransmissions -- then latency absorbed the hit, which we accept)
    print(f"\nCoAP PDR of producer {worst_child}: "
          f"{result.coap_pdr_per_producer()[worst_child]:.4f} "
          f"(fleet: {result.coap_pdr():.4f})")
