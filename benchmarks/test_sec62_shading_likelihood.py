"""§6.2: how likely is connection shading?  Closed form vs simulation.

Reproduces the paper's arithmetic -- worst case (7.5 ms interval, 500 us/s
drift -> 240 shading events/hour), typical case (75 ms, 5 us/s -> 0.24/h),
and the 14-link tree extrapolation (~3.4/h, ~80.6/24 h vs 95 observed) --
and then cross-checks the formula against the simulator: a two-connection
node with known drift and a known initial anchor gap must lose a connection
at the predicted overlap time.
"""

import pytest

from repro.ble.config import BleConfig, ConnParams
from repro.ble.conn import Connection, DisconnectReason
from repro.ble.controller import BleController
from repro.core.shading import (
    network_shading_events,
    shading_events_per_hour,
    time_to_overlap_s,
    typical_events_per_hour,
    worst_case_events_per_hour,
)
from repro.exp.report import format_table
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC

from conftest import banner


def measure_loss_rate(rel_drift_ppm: float, hours: float, seed: int = 3) -> float:
    """Losses/hour on a 2-connection node with statconn-style reconnects."""
    import random

    sim = Simulator()
    medium = BleMedium(sim, random.Random(seed), InterferenceModel(base_ber=0.0))
    nodes = [
        BleController(
            sim, medium, addr=i, clock=DriftingClock(sim, ppm=ppm),
            config=BleConfig(), rng=random.Random(seed * 100 + i),
        )
        for i, ppm in ((0, -rel_drift_ppm / 2), (1, 0.0), (2, rel_drift_ppm / 2))
    ]
    params = ConnParams(interval_ns=75 * MSEC)
    losses = [0]
    phase_rng = random.Random(seed + 1)

    def establish(coord, sub, aa, anchor):
        conn = Connection(sim, nodes[coord], nodes[sub], params, aa, anchor)

        def closed(c, reason):
            losses[0] += 1
            # reconnect at a fresh random phase, like statconn would
            establish(
                coord, sub, aa + losses[0],
                sim.now + 50 * MSEC + phase_rng.randrange(0, 75 * MSEC),
            )

        conn.on_closed = closed

    establish(0, 1, 0xA1, MSEC)
    establish(2, 1, 0xB2, 38 * MSEC)
    sim.run(until=int(hours * 3600 * SEC))
    return losses[0] / hours


def simulate_overlap_time(gap_ms: float, rel_drift_ppm: float) -> float:
    """Seconds until a supervision timeout on a 2-connection node."""
    import random

    sim = Simulator()
    medium = BleMedium(sim, random.Random(3), InterferenceModel(base_ber=0.0))
    nodes = [
        BleController(
            sim, medium, addr=i, clock=DriftingClock(sim, ppm=ppm),
            config=BleConfig(), rng=random.Random(20 + i),
        )
        for i, ppm in ((0, -rel_drift_ppm / 2), (1, 0.0), (2, rel_drift_ppm / 2))
    ]
    params = ConnParams(interval_ns=75 * MSEC)
    conn_a = Connection(sim, nodes[0], nodes[1], params, 0xAAAA0001, anchor0_true=MSEC)
    conn_b = Connection(
        sim, nodes[2], nodes[1], params, 0xBBBB0002,
        anchor0_true=MSEC + int(gap_ms * MSEC),
    )
    death = []
    conn_a.on_closed = lambda c, r: death.append(sim.now)
    conn_b.on_closed = lambda c, r: death.append(sim.now)
    sim.run(until=3600 * SEC)
    assert death, "the connections never shaded"
    return death[0] / SEC


def test_sec62_closed_form_and_simulation(run_once):
    banner("§6.2: shading likelihood", "paper §6.2")
    rows = [
        ["worst case (7.5 ms, 500 us/s)", "240 /h",
         f"{worst_case_events_per_hour():.0f} /h"],
        ["typical (75 ms, 5 us/s)", "0.24 /h",
         f"{typical_events_per_hour():.2f} /h"],
        ["time between overlaps (typical)", "4.17 h",
         f"{time_to_overlap_s(0.075, 5.0) / 3600:.2f} h"],
        ["14-link tree, per hour", "3.4", f"{network_shading_events(14, 0.075, 5.0):.1f}"],
        ["14-link tree, per 24 h", "80.6",
         f"{network_shading_events(14, 0.075, 5.0, hours=24):.1f}"],
        ["observed in the paper's 24 h run", "95", "(measured on hardware)"],
    ]
    print(format_table(["quantity", "paper", "this model"], rows))

    # cross-check 1: anchors 20 ms apart closing at 40 us/s -> overlap ~500 s
    gap_ms, drift_ppm = 20.0, 40.0
    predicted_s = gap_ms * 1000.0 / drift_ppm

    # cross-check 2: the loss *rate* formula over multiple wraps with
    # statconn-style random-phase reconnects
    def both():
        measured = simulate_overlap_time(gap_ms, drift_ppm)
        rates = {d: measure_loss_rate(d, hours=4) for d in (10, 20, 40)}
        return measured, rates

    measured_s, rates = run_once(both)
    print(f"\nsimulated overlap: predicted ~{predicted_s:.0f} s, "
          f"connection lost at {measured_s:.0f} s")
    rate_rows = []
    for drift, measured_rate in rates.items():
        predicted_rate = shading_events_per_hour(0.075, drift)
        rate_rows.append(
            [f"{drift} us/s", f"{predicted_rate:.2f}", f"{measured_rate:.2f}",
             f"{measured_rate / predicted_rate:.2f}x"]
        )
    print(format_table(
        ["relative drift", "predicted losses/h", "measured losses/h", "ratio"],
        rate_rows,
        title="\nloss-rate cross-check (paper's own ratio: 95 observed vs "
              "80.6 predicted = 1.18x -- reconnects at random phases cluster "
              "follow-up losses above the wrap-counting formula)",
    ))

    assert worst_case_events_per_hour() == pytest.approx(240.0)
    assert typical_events_per_hour() == pytest.approx(0.24, abs=0.002)
    assert network_shading_events(14, 0.075, 5.0, 24) == pytest.approx(80.6, abs=0.2)
    # the simulator's loss lands at the analytic overlap time (the connection
    # dies shortly after the anchors first collide)
    assert predicted_s * 0.9 <= measured_s <= predicted_s * 1.15, (
        f"simulated shading at {measured_s:.0f}s vs predicted {predicted_s:.0f}s"
    )
    # loss rates: monotone in drift, and within the paper-like inflation band
    measured_rates = [rates[d] for d in (10, 20, 40)]
    assert measured_rates == sorted(measured_rates)
    for drift, measured_rate in rates.items():
        predicted_rate = shading_events_per_hour(0.075, drift)
        assert 0.8 * predicted_rate <= measured_rate <= 2.2 * predicted_rate, (
            f"drift {drift}: measured {measured_rate:.2f}/h vs "
            f"predicted {predicted_rate:.2f}/h"
        )
