"""Figure 13: fixed vs randomized connection intervals, long runs (§6.3).

The paper's 24-hour experiments on tree and line topologies: with a static
75 ms interval the network suffers connection losses (95 over 24 h) and the
corresponding CoAP losses; with intervals randomized in [65:85] ms (unique
per node) *not a single CoAP packet of >1.2 M requests is lost*.  The price
is a slightly lower link-layer PDR (98 % -> 96 % tree) -- randomized
anchors collide transiently all the time, costing retransmissions, but
never persistently.

Base duration: 2400 s per configuration (paper: 86400 s), so the static
runs have room for a few shading events.
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.asciiplot import render_cdf
from repro.exp.metrics import cdf, percentile
from repro.exp.report import format_table

from conftest import banner, scaled

# §6.3's evaluation text quotes the tree AND the star ("decreases the
# overall link layer packet delivery rates ... from 98 % to 96 % in the
# tree and 99 % to 98 % in the star topology"); Fig. 13 plots tree + line.
# We run all three.
CONFIGS = [
    ("tree", "75"),
    ("tree", "[65:85]"),
    ("line", "75"),
    ("line", "[65:85]"),
    ("star", "75"),
    ("star", "[65:85]"),
]


def run_all(duration_s: float):
    out = {}
    for topology, interval in CONFIGS:
        out[(topology, interval)] = run_experiment(
            ExperimentConfig(
                name=f"fig13-{topology}-{interval}",
                topology=topology,
                conn_interval=interval,
                duration_s=duration_s,
                sample_period_s=max(10.0, duration_s / 100),
                seed=1,
            )
        )
    return out


def test_fig13_static_vs_random_intervals(run_once):
    banner("Figure 13: static vs randomized connection intervals", "paper §6.3, Fig. 13")
    duration = scaled(2400)
    results = run_once(run_all, duration)

    rows = []
    for (topology, interval), result in results.items():
        rtts = result.rtts_s()
        rows.append(
            [
                topology,
                interval,
                result.coap_sent(),
                result.coap_losses(),
                result.num_connection_losses(),
                f"{result.link_pdr_overall():.4f}",
                f"{percentile(rtts, 0.99):.3f}",
            ]
        )
    print(format_table(
        ["topology", "interval", "requests", "CoAP losses", "conn losses",
         "LL PDR", "RTT p99 [s]"],
        rows,
        title="(paper 24 h: static loses 95 connections; random loses none "
              "of 1.2 M packets; LL PDR dips 98->96 / 99->98)",
    ))
    print("\nFig 13(c): RTT CDFs")
    print(render_cdf(
        {
            f"{topo} {itvl}": cdf(res.rtts_s())
            for (topo, itvl), res in results.items()
        },
        x_label="RTT [s]",
    ))

    for topology in ("tree", "line", "star"):
        static = results[(topology, "75")]
        randomized = results[(topology, "[65:85]")]
        # the headline: randomization eliminates shading losses
        assert randomized.num_connection_losses() == 0, (
            f"{topology}: randomized intervals must not lose connections"
        )
        assert randomized.coap_losses() == 0, (
            f"{topology}: randomized intervals must deliver every packet"
        )
        # and the static configuration does lose connections over a long run
        # (aggregate across topologies checked below)
        # the LL PDR trade-off: random <= static (more transient collisions)
        assert (
            randomized.link_pdr_overall() <= static.link_pdr_overall() + 0.005
        ), f"{topology}: LL PDR trade-off inverted"
    static_losses = (
        results[("tree", "75")].num_connection_losses()
        + results[("line", "75")].num_connection_losses()
    )
    assert static_losses > 0, "static intervals must show shading losses"
