"""Ablation: the BT-mandated event abort on CRC error (§5.2's burst killer).

The standard closes a connection event on the first CRC error even when
packets still wait.  The paper identifies this as the reason burst traffic
(long connection intervals) collapses: the longer the event, the likelier
an abort, so links never reach their nominal capacity.

This bench runs the Fig. 9(b) burst regime with the rule on (standard) and
off (hypothetical controller) -- turning it off recovers a large part of
the delivery rate, confirming the mechanism.
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.report import format_table

from conftest import banner, scaled


def run_pair(duration_s: float, seeds=(10, 11)):
    out = {}
    for abort in (True, False):
        pdr_sum = 0.0
        aborts = 0
        for seed in seeds:
            result = run_experiment(
                ExperimentConfig(
                    name=f"abort-{abort}",
                    conn_interval="2000",
                    producer_interval_s=1.0,
                    producer_jitter_s=0.5,
                    duration_s=duration_s,
                    warmup_s=25.0,
                    drain_s=15.0,
                    seed=seed,
                    abort_event_on_crc_error=abort,
                )
            )
            pdr_sum += result.coap_pdr()
            aborts += sum(
                ep.stats.events_crc_abort
                for node in result.network.nodes
                for conn in node.controller.connections
                for ep in (conn.coord, conn.sub)
                if conn.coord.controller is node.controller
            )
        out[abort] = (pdr_sum / len(seeds), aborts)
    return out


def test_abl_event_abort(run_once):
    banner("Ablation: event abort on CRC error", "paper §5.2 mechanism check")
    duration = scaled(300)
    outcomes = run_once(run_pair, duration)
    print(format_table(
        ["abort on CRC error", "CoAP PDR (burst regime)", "CRC events"],
        [
            ["on (standard)", f"{outcomes[True][0]:.3f}", outcomes[True][1]],
            ["off (hypothetical)", f"{outcomes[False][0]:.3f}", outcomes[False][1]],
        ],
        title="(2 s connection interval, 1 s producers -- Fig. 9b's regime)",
    ))
    assert outcomes[False][0] > outcomes[True][0] + 0.02, (
        "disabling the abort rule must recover burst-regime delivery"
    )
