"""Figure 8(b): RTT versus producer interval at a fixed 75 ms connection
interval (paper §5.1).

Paper result: the producer interval has *no significant impact* on delay as
long as the offered load stays within capacity; only the overload point
(100 ms producers) shows increased delays.

Base duration: 300 s per configuration (paper: 3600 s each).
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.asciiplot import render_cdf
from repro.exp.metrics import cdf, percentile
from repro.exp.report import format_table

from conftest import banner, scaled

PRODUCER_INTERVALS_S = (0.1, 0.5, 1.0, 5.0, 10.0, 30.0)


def run_sweep(duration_s: float):
    out = {}
    for interval_s in PRODUCER_INTERVALS_S:
        result = run_experiment(
            ExperimentConfig(
                name=f"fig8b-{interval_s}",
                producer_interval_s=interval_s,
                producer_jitter_s=interval_s / 2,
                duration_s=duration_s,
                seed=9,
            )
        )
        out[interval_s] = (result.rtts_s(), result.coap_pdr())
    return out


def test_fig08b_producer_interval_sweep(run_once):
    banner("Figure 8(b): RTT vs producer interval at 75 ms", "paper §5.1, Fig. 8b")
    # 30 s producers need enough runtime for samples: floor at 600 s
    duration = scaled(600, minimum=600)
    data = run_once(run_sweep, duration)

    rows = []
    for interval_s, (samples, pdr) in data.items():
        rows.append(
            [
                interval_s,
                len(samples),
                f"{pdr:.4f}",
                f"{percentile(samples, 0.5) * 1000:.0f}",
                f"{percentile(samples, 0.99) * 1000:.0f}",
            ]
        )
    print(format_table(
        ["producer itvl [s]", "samples", "PDR", "RTT p50 [ms]", "RTT p99 [ms]"],
        rows,
        title="(paper: delay independent of load until capacity is exceeded)",
    ))
    print(render_cdf(
        {f"{i} s": cdf(samples) for i, (samples, _) in data.items()},
        x_label="RTT [s]",
    ))

    # within-capacity loads: medians cluster (factor < 2 spread)
    medians = {
        i: percentile(samples, 0.5)
        for i, (samples, _) in data.items()
        if i >= 0.5
    }
    assert max(medians.values()) / min(medians.values()) < 2.0, (
        f"in-capacity medians spread too far: {medians}"
    )
    # the overload point shows the queueing penalty in the tail
    overload_p99 = percentile(data[0.1][0], 0.99)
    nominal_p99 = percentile(data[1.0][0], 0.99)
    assert overload_p99 > nominal_p99, "overload must inflate the RTT tail"
