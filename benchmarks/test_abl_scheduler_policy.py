"""Ablation: the controller's overlap arbitration policy (§6.1's choices).

The Bluetooth standard does not say what a controller should do when two
connection events overlap.  The paper names the two outcomes: skip one
connection entirely (starvation -> supervision timeout -> random connection
loss) or alternate (halved link capacity).  This bench runs the same
guaranteed-shading micro-topology under both policies and shows the fork in
behaviour.
"""

import random

from repro.ble.config import BleConfig, ConnParams, SchedulerPolicy
from repro.ble.conn import Connection
from repro.ble.controller import BleController
from repro.exp.report import format_table
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC

from conftest import banner, scaled


def run_policy(policy: SchedulerPolicy, duration_s: float):
    sim = Simulator()
    medium = BleMedium(sim, random.Random(5), InterferenceModel(base_ber=0.0))
    nodes = [
        BleController(
            sim, medium, addr=i, clock=DriftingClock(sim, ppm=ppm),
            config=BleConfig(scheduler_policy=policy), rng=random.Random(40 + i),
        )
        for i, ppm in ((0, -30.0), (1, 0.0), (2, 30.0))
    ]
    params = ConnParams(interval_ns=75 * MSEC)
    conn_a = Connection(sim, nodes[0], nodes[1], params, 0xA1, anchor0_true=MSEC)
    conn_b = Connection(
        sim, nodes[2], nodes[1], params, 0xB2, anchor0_true=int(3.5 * MSEC)
    )
    deaths = []
    conn_a.on_closed = lambda c, r: deaths.append((sim.now, "A", r))
    conn_b.on_closed = lambda c, r: deaths.append((sim.now, "B", r))
    sim.run(until=int(duration_s * SEC))
    skips = sum(
        ep.stats.events_skipped_policy + ep.stats.events_skipped_radio
        for conn in (conn_a, conn_b)
        for ep in (conn.coord, conn.sub)
    )
    active = sum(
        conn.coord.stats.events_active for conn in (conn_a, conn_b)
    )
    return deaths, skips, active


def test_abl_scheduler_policy(run_once):
    banner("Ablation: overlap arbitration policy", "paper §6.1, design choice")
    duration = scaled(150, minimum=120)
    outcomes = run_once(
        lambda: {
            policy: run_policy(policy, duration)
            for policy in (SchedulerPolicy.EARLIEST_WINS, SchedulerPolicy.ALTERNATE)
        }
    )
    rows = []
    for policy, (deaths, skips, active) in outcomes.items():
        rows.append(
            [
                policy.value,
                len(deaths),
                f"{deaths[0][0] / SEC:.0f}s" if deaths else "-",
                skips,
                active,
            ]
        )
    print(format_table(
        ["policy", "connection losses", "first loss", "skipped events", "active events"],
        rows,
        title="(the standard's unspecified choice forks the failure mode)",
    ))

    starve_deaths, _, _ = outcomes[SchedulerPolicy.EARLIEST_WINS]
    alt_deaths, alt_skips, _ = outcomes[SchedulerPolicy.ALTERNATE]
    assert starve_deaths, "EARLIEST_WINS must lose a connection to shading"
    assert not alt_deaths, "ALTERNATE must keep both connections alive"
    assert alt_skips > 0, "ALTERNATE pays with skipped (alternated) events"
