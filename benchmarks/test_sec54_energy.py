"""§5.4: energy efficiency -- every number of the section, reproduced.

Closed-form values come straight from the calibrated charge model; the
simulation-driven values run an idle connection / an advertiser / a loaded
forwarder and feed the recorded event counters through the same model.
"""

import random

import pytest

from repro.ble.config import BleConfig, ConnParams
from repro.ble.conn import Connection, Role
from repro.ble.controller import BleController
from repro.energy import EnergyModel
from repro.exp import ExperimentConfig, run_experiment
from repro.exp.report import format_table
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC

from conftest import banner, scaled


def simulate_idle_connection(duration_s: float):
    sim = Simulator()
    medium = BleMedium(sim, random.Random(1), InterferenceModel(base_ber=0.0))
    nodes = [
        BleController(sim, medium, addr=i, clock=DriftingClock(sim),
                      rng=random.Random(i))
        for i in range(2)
    ]
    Connection(sim, nodes[0], nodes[1], ConnParams(interval_ns=75 * MSEC),
               access_address=0xE4E4E4E4, anchor0_true=MSEC)
    sim.run(until=int(duration_s * SEC))
    return nodes


def test_sec54_energy_numbers(run_once):
    banner("§5.4: energy efficiency", "paper §5.4")
    model = EnergyModel()
    duration = scaled(60, minimum=20)

    def measure():
        nodes = simulate_idle_connection(duration)
        coord_ua = model.controller_current_ua(nodes[0], duration)
        sub_ua = model.controller_current_ua(nodes[1], duration)
        forwarder = run_experiment(
            ExperimentConfig(name="e", duration_s=duration, seed=2)
        )
        fwd_node = forwarder.network.nodes[1]  # 3 connections, mid-tree
        fwd_ua = model.controller_current_ua(fwd_node.controller, duration + 8)
        return coord_ua, sub_ua, fwd_ua

    coord_ua, sub_ua, fwd_ua = run_once(measure)

    coin = model.forwarder_battery_life_coin_cell(123.0)
    li_ion = model.forwarder_battery_life_li_ion(123.0)
    rows = [
        ["charge / event, coordinator [uC]", "2.3", "2.3 (calibration)"],
        ["charge / event, subordinate [uC]", "2.6", "2.6 (calibration)"],
        ["idle connection @75 ms, coordinator [uA]", "30.7",
         f"{model.idle_connection_current_ua(0.075, Role.COORDINATOR):.1f} "
         f"(simulated: {coord_ua:.1f})"],
        ["idle connection @75 ms, subordinate [uA]", "34.7",
         f"{model.idle_connection_current_ua(0.075, Role.SUBORDINATE):.1f} "
         f"(simulated: {sub_ua:.1f})"],
        ["loaded 3-connection forwarder [uA]", "123", f"simulated: {fwd_ua:.0f}"],
        ["coin cell (230 mAh) @ 123+15 uA", "69 days", f"{coin.days:.0f} days"],
        ["18650 (2500 mAh) @ 123+15 uA", ">2 years", f"{li_ion.years:.2f} years"],
        ["beacon, 31 B @ 1 s [uA]", "12", f"{model.beacon_current_ua(1.0):.1f}"],
        ["IP-over-BLE CoAP sender @ 1 s [uA]", "16", "16.0 (calibration fit)"],
    ]
    print(format_table(["quantity", "paper", "this model"], rows))

    assert model.idle_connection_current_ua(0.075, Role.COORDINATOR) == pytest.approx(30.7, abs=0.1)
    assert model.idle_connection_current_ua(0.075, Role.SUBORDINATE) == pytest.approx(34.7, abs=0.1)
    assert coord_ua == pytest.approx(30.7, rel=0.03)
    assert sub_ua == pytest.approx(34.7, rel=0.03)
    assert coin.days == pytest.approx(69, abs=1)
    assert 2.0 < li_ion.years < 2.2
    # the simulated forwarder should land in the same decade as the paper's
    # 123 uA (its exact traffic mix differs)
    assert 50 < fwd_ua < 400
