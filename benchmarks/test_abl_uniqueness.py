"""Ablation: §6.3's uniqueness enforcement versus plain randomization.

The paper's mitigation is not *just* "pick a random interval": the
coordinator regenerates until the interval is unique among its own
connections, and the subordinate closes fresh connections that collide with
its existing ones.  With a narrow window, plain randomization still
produces same-interval pairs on a node -- and those shade exactly like the
static configuration.

Narrow [74:76] windows + accelerated drift make the difference visible in
a short run.
"""

from repro.exp import ExperimentConfig, ExperimentRunner
from repro.exp.report import format_table

from conftest import banner, scaled


def run_variant(unique: bool, duration_s: float, seeds=(1, 2, 3)):
    losses = 0
    collisions_present = 0
    for seed in seeds:
        config = ExperimentConfig(
            name=f"uniq-{unique}-{seed}",
            conn_interval="[74:76]",  # three 1.25 ms slots: collisions likely
            duration_s=duration_s,
            seed=seed,
            drift_ppm_span=40.0,  # accelerate anchor wraps into the run
        )
        runner = ExperimentRunner(config)
        if not unique:
            # strip both §6.3 enforcement mechanisms
            original = runner._build_ble

            def build():
                net = original()
                for node in net.nodes:
                    node.statconn.config.interval_policy.unique = False
                    node.statconn.config.reject_interval_collisions = False
                return net

            runner._build_ble = build
        result = runner.run()
        losses += result.num_connection_losses()
        for node in result.network.nodes:
            intervals = node.controller.used_intervals_ns()
            if len(set(intervals)) != len(intervals):
                collisions_present += 1
    return losses, collisions_present


def test_abl_uniqueness_enforcement(run_once):
    banner("Ablation: interval uniqueness enforcement", "paper §6.3 design choice")
    duration = scaled(600)
    with_unique, without_unique = run_once(
        lambda: (run_variant(True, duration), run_variant(False, duration))
    )
    print(format_table(
        ["variant", "connection losses (3 runs)", "nodes with colliding intervals"],
        [
            ["unique + subordinate reject (paper)", with_unique[0], with_unique[1]],
            ["plain random draw", without_unique[0], without_unique[1]],
        ],
        title="(narrow [74:76] ms window, accelerated drift)",
    ))
    assert with_unique[1] == 0, "enforced uniqueness must hold everywhere"
    assert without_unique[1] > 0, "plain draws must collide in a 3-slot window"
    assert without_unique[0] > with_unique[0], (
        "colliding intervals must translate into shading losses"
    )
