"""Ablation: the per-event reservation cap (scheduler calibration knob).

DESIGN.md calls out the one scheduling heuristic we had to calibrate rather
than copy: how much radio time a controller reserves per connection event.
This bench sweeps the cap under the high-load regime, showing the
capacity/fairness trade-off and why 6 ms (at 75 ms intervals) reproduces
the paper's ~75 % Fig. 9a result.
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.report import format_table

from conftest import banner, scaled

CAPS_MS = (3.0, 6.0, 12.0, 0.0)  # 0 = unbounded


def run_sweep(duration_s: float):
    out = {}
    for cap in CAPS_MS:
        result = run_experiment(
            ExperimentConfig(
                name=f"cap-{cap}",
                producer_interval_s=0.1,
                producer_jitter_s=0.05,
                duration_s=duration_s,
                seed=10,
                max_event_len_ms=cap,
            )
        )
        out[cap] = result.coap_pdr()
    return out


def test_abl_event_length_cap(run_once):
    banner("Ablation: per-event reservation cap", "DESIGN.md calibration")
    duration = scaled(240)
    outcomes = run_once(run_sweep, duration)
    rows = [
        ["unbounded" if cap == 0 else f"{cap:g} ms", f"{pdr:.3f}"]
        for cap, pdr in outcomes.items()
    ]
    print(format_table(
        ["event cap", "CoAP PDR under overload"],
        rows,
        title="(paper measures ~75 % here; 6 ms is our calibrated default)",
    ))
    # monotone: a larger reservation can only help under overload
    assert outcomes[3.0] < outcomes[6.0] < outcomes[12.0] <= outcomes[0.0] + 0.02
    # the calibrated default lands in the paper's band
    assert 0.60 < outcomes[6.0] < 0.90
