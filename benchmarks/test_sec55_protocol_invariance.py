"""§5.5: implementation vs protocol impact.

The paper argues the observed connection drops are inherent to the BLE
protocol design, not artefacts of NimBLE/RIOT specifics: "Other
implementations could use different buffer sizes and thread priorities ...
Those specifics do not change our observations that connections drop
randomly."

The simulator can actually run that argument: the guaranteed-shading
micro-topology (two same-interval connections on one node, coordinators
drifting apart) is executed under widely varied *implementation* knobs --
buffer pool size, per-event reservation, channel error rate, CSA variant --
and the connection loss must appear in **every** variant, at the same
drift-predicted time scale.
"""

import random

from repro.ble.config import BleConfig, ConnParams, CsaVariant
from repro.ble.conn import Connection
from repro.ble.controller import BleController
from repro.exp.report import format_table
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC

from conftest import banner, scaled

VARIANTS = {
    "baseline": {},
    "4x buffers": {"buffer_pool_bytes": 26400},
    "tiny buffers": {"buffer_pool_bytes": 1650},
    "3 ms event cap": {"max_event_len_ns": 3 * MSEC},
    "12 ms event cap": {"max_event_len_ns": 12 * MSEC},
    "CSA#1 hopping": {"csa": CsaVariant.CSA1},
    "lossy channel (2%)": {"_ber": 2.2e-5},
    "clean channel": {"_ber": 0.0},
}

#: anchors 25 ms apart closing at 50 us/s: overlap predicted at ~500 s.
GAP_MS = 25.0
DRIFT_PPM = 50.0


def time_to_loss_s(overrides: dict, horizon_s: float) -> float:
    """Seconds until the shading loss under one implementation variant."""
    overrides = dict(overrides)
    ber = overrides.pop("_ber", 2.2e-5)
    sim = Simulator()
    medium = BleMedium(sim, random.Random(9), InterferenceModel(base_ber=ber))
    config = BleConfig(**overrides)
    nodes = [
        BleController(
            sim, medium, addr=i, clock=DriftingClock(sim, ppm=ppm),
            config=config, rng=random.Random(30 + i),
        )
        for i, ppm in ((0, -DRIFT_PPM / 2), (1, 0.0), (2, DRIFT_PPM / 2))
    ]
    params = ConnParams(interval_ns=75 * MSEC)
    deaths = []
    conn_a = Connection(sim, nodes[0], nodes[1], params, 0xA1, anchor0_true=MSEC)
    conn_b = Connection(
        sim, nodes[2], nodes[1], params, 0xB2,
        anchor0_true=MSEC + int(GAP_MS * MSEC),
    )
    conn_a.on_closed = lambda c, r: deaths.append(sim.now)
    conn_b.on_closed = lambda c, r: deaths.append(sim.now)
    sim.run(until=int(horizon_s * SEC))
    return deaths[0] / SEC if deaths else float("inf")


def test_sec55_protocol_invariance(run_once):
    banner("§5.5: the drops are protocol-inherent, not implementation detail",
           "paper §5.5")
    predicted_s = GAP_MS * 1000.0 / DRIFT_PPM
    horizon = max(scaled(900), 2.5 * predicted_s)
    outcomes = run_once(
        lambda: {
            label: time_to_loss_s(overrides, horizon)
            for label, overrides in VARIANTS.items()
        }
    )
    rows = [
        [label, f"{t:.0f} s" if t != float("inf") else "never"]
        for label, t in outcomes.items()
    ]
    print(format_table(
        ["implementation variant", "time to shading loss"],
        rows,
        title=f"(anchors {GAP_MS:.0f} ms apart closing at {DRIFT_PPM:.0f} us/s"
              f" -> drift predicts ~{predicted_s:.0f} s, whatever the knobs)",
    ))
    for label, t in outcomes.items():
        assert t != float("inf"), f"variant {label!r} never lost a connection"
        assert 0.8 * predicted_s <= t <= 1.3 * predicted_s, (
            f"variant {label!r} lost at {t:.0f}s, predicted {predicted_s:.0f}s"
        )
    spread = max(outcomes.values()) - min(outcomes.values())
    print(f"\nspread across all variants: {spread:.0f} s "
          f"({spread / predicted_s:.0%} of the predicted time)")