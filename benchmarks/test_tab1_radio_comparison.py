"""Table 1 + Table 2: qualitative comparisons (paper §1, §7).

Table 1 compares common IoT radios qualitatively; we print the paper's
table and *measure* the two cells our substrate can check -- per-link
throughput and per-packet energy order -- from short simulations.  Table 2
(open-source IP-over-BLE implementations) is reproduced verbatim as
documentation.
"""

import random

from repro.ble.config import BleConfig, ConnParams
from repro.ble.controller import BleController
from repro.exp.report import format_table
from repro.ieee802154.mac import Mac154
from repro.ieee802154.medium154 import CsmaMedium
from repro.l2cap import L2capCoc
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC

from conftest import banner, scaled


def _ble_throughput_kbps(duration_s: float) -> float:
    """Raw one-directional L2CAP goodput on a single BLE link."""
    sim = Simulator()
    medium = BleMedium(sim, random.Random(1), InterferenceModel(base_ber=0.0))
    nodes = [
        BleController(
            sim, medium, addr=i, clock=DriftingClock(sim),
            config=BleConfig(buffer_pool_bytes=20000), rng=random.Random(i),
        )
        for i in range(2)
    ]
    from repro.ble.conn import Connection

    conn = Connection(
        sim, nodes[0], nodes[1], ConnParams(interval_ns=75 * MSEC),
        access_address=0xABCD1234, anchor0_true=MSEC,
    )
    coc = L2capCoc(conn)
    received = [0]
    coc.set_rx_handler(nodes[1], lambda sdu: received.__setitem__(0, received[0] + len(sdu)))
    end = coc.end_of(nodes[0])

    def refill(tag=None):
        while len(end.tx_sdus) < 4:
            coc.send(nodes[0], bytes(1000), tag="refill")

    end.on_sdu_sent = refill
    refill()
    sim.run(until=int(duration_s * SEC))
    return received[0] * 8 / duration_s / 1000


def _154_throughput_kbps(duration_s: float) -> float:
    """Raw one-directional MAC goodput on a single 802.15.4 link."""
    sim = Simulator()
    medium = CsmaMedium(sim, random.Random(1), InterferenceModel(base_ber=0.0))
    a = Mac154(sim, medium, 0, random.Random(2))
    b = Mac154(sim, medium, 1, random.Random(3))
    received = [0]
    b.on_frame = lambda frame: received.__setitem__(0, received[0] + len(frame.payload))

    def refill(frame=None, ok=None):
        while a.queue_depth < 4:
            a.send(1, bytes(100))

    a.on_tx_done = refill
    refill()
    sim.run(until=int(duration_s * SEC))
    return received[0] * 8 / duration_s / 1000


def test_table1_and_table2(run_once):
    banner("Table 1: common IoT radios / Table 2: IoB implementations",
           "paper §1 Table 1, §7 Table 2")
    duration = scaled(20, minimum=5)
    ble_kbps, m154_kbps = run_once(
        lambda: (_ble_throughput_kbps(duration), _154_throughput_kbps(duration))
    )
    print(format_table(
        ["radio", "throughput", "range", "node count", "energy eff.", "availability"],
        [
            ["BLE (mesh)", "high", "high", "high", "high", "high"],
            ["BLE (star)", "high", "low", "low", "high", "high"],
            ["IEEE 802.15.4", "medium", "high", "high", "medium", "medium"],
            ["LoRa", "low", "high", "high", "medium", "low"],
            ["WLAN", "high", "high", "medium", "low", "high"],
        ],
        title="Table 1 (qualitative, as printed in the paper)",
    ))
    print()
    print(format_table(
        ["measured cell", "value"],
        [
            ["BLE single-link L2CAP goodput [kbit/s]", f"{ble_kbps:.0f}"],
            ["802.15.4 single-link MAC goodput [kbit/s]", f"{m154_kbps:.0f}"],
        ],
        title="measured support for the throughput column",
    ))
    print()
    print(format_table(
        ["implementation", "hw portability", "GATT service", "IoB single-hop", "IoB multi-hop"],
        [
            ["RIOT + NimBLE (the paper's)", "yes", "yes", "yes", "yes"],
            ["BLEach (Contiki)", "limited", "no", "yes", "no"],
            ["Zephyr", "yes", "yes", "yes", "no"],
            ["this reproduction (simulated)", "n/a", "yes (IPSS)", "yes", "yes"],
        ],
        title="Table 2 (open source IP over BLE implementations)",
    ))
    # the qualitative ordering the paper's Table 1 encodes
    assert ble_kbps > m154_kbps, "BLE must out-rate 802.15.4 per link"
    assert ble_kbps > 300, "BLE goodput should be in the hundreds of kbit/s"
    assert m154_kbps < 250, "802.15.4 tops out below its 250 kbit/s PHY rate"
