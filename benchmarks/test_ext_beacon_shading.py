"""Extension bench: shading beyond BLE -- beacon-enabled 802.15.4 (§7/§8).

§8 claims "connection shading is not unique to BLE and can be observed in
other time-slotted networks", pointing at Feeney & Fodor's co-located
beacon-enabled 802.15.4 PANs (§7 [16]).  Two PANs with the *same* beacon
interval on one channel drift into overlap at the relative clock rate;
while the superframes overlap, beacons and bursts collide -- the same
geometry as BLE connection shading, with the same closed-form timing:

* overlap onset  = initial gap / relative drift,
* overlap length = 2 x active period / relative drift.
"""

import random

from repro.exp.asciiplot import render_series
from repro.exp.report import format_table
from repro.ieee802154.beacon import BeaconedPan
from repro.ieee802154.medium154 import CsmaMedium
from repro.phy.medium import InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC

from conftest import banner, scaled

BEACON_INTERVAL = 983 * MSEC  # BO=6-ish
GAP_MS = 60.0
DRIFT_PPM = 50.0  # relative, split across the two coordinators


def run_pans(horizon_s: float, same_interval: bool):
    sim = Simulator()
    medium = CsmaMedium(sim, random.Random(4), InterferenceModel(base_ber=0.0))
    interval_b = BEACON_INTERVAL if same_interval else BEACON_INTERVAL + 30 * MSEC
    pan_a = BeaconedPan(
        sim, medium, DriftingClock(sim, ppm=-DRIFT_PPM / 2),
        BEACON_INTERVAL, offset_ns=MSEC,
    )
    pan_b = BeaconedPan(
        sim, medium, DriftingClock(sim, ppm=DRIFT_PPM / 2),
        interval_b, offset_ns=int(GAP_MS * MSEC),
    )
    pan_a.start()
    pan_b.start()
    sim.run(until=int(horizon_s * SEC))
    return pan_a, pan_b


def windowed_beacon_pdr(pan, window_s: float = 60.0):
    """(window centre times [s], beacon success rate per window)."""
    times, pdrs = [], []
    if not pan.beacon_log:
        return times, pdrs
    window_ns = int(window_s * SEC)
    start = 0
    log = pan.beacon_log
    i = 0
    while i < len(log):
        end = start + window_ns
        ok = total = 0
        while i < len(log) and log[i][0] < end:
            total += 1
            ok += bool(log[i][1])
            i += 1
        if total:
            times.append((start + window_ns // 2) / SEC)
            pdrs.append(ok / total)
        start = end
    return times, pdrs


def test_ext_beacon_enabled_802154_shading(run_once):
    banner("Extension: shading in beacon-enabled 802.15.4", "paper §7 [16] / §8")
    predicted_onset_s = GAP_MS * 1000.0 / DRIFT_PPM  # 1200 s
    horizon = max(scaled(2400), 2 * predicted_onset_s)
    pan_a, pan_b = run_once(run_pans, horizon, True)
    active_ms = pan_a.active_period_ns() / MSEC
    predicted_len_s = 2 * pan_a.active_period_ns() / 1000.0 / DRIFT_PPM

    times, pdrs = windowed_beacon_pdr(pan_a)
    degraded = [t for t, p in zip(times, pdrs) if p < 0.5]
    print(format_table(
        ["quantity", "predicted", "measured"],
        [
            ["overlap onset [s]", f"{predicted_onset_s:.0f}",
             f"{degraded[0]:.0f}" if degraded else "none"],
            ["overlap length [s]", f"{predicted_len_s:.0f}",
             f"{degraded[-1] - degraded[0] + 60:.0f}" if degraded else "0"],
            ["active period [ms]", "-", f"{active_ms:.1f}"],
        ],
        title="(two co-located PANs, same beacon interval, drifting 50 us/s)",
    ))
    print("\nPAN A beacon success rate over time (the BLE Fig. 12 analogue):")
    print(render_series({"PAN A": (times, pdrs)}, y_lo=0.0, y_hi=1.0))

    assert degraded, "the PANs never shaded"
    onset = degraded[0]
    assert 0.8 * predicted_onset_s <= onset <= 1.2 * predicted_onset_s, (
        f"degradation onset {onset:.0f}s vs predicted {predicted_onset_s:.0f}s"
    )
    length = degraded[-1] - degraded[0] + 60
    assert 0.5 * predicted_len_s <= length <= 2.0 * predicted_len_s, (
        f"degradation length {length:.0f}s vs predicted {predicted_len_s:.0f}s"
    )
    # before the overlap, the PANs coexist cleanly
    clean_before = [p for t, p in zip(times, pdrs) if t < 0.7 * predicted_onset_s]
    assert min(clean_before) > 0.99

    # the §6.3 analogue: distinct beacon intervals never shade persistently
    # (run outside the benchmark timing; it is the control, not the subject)
    pan_a2, _ = run_pans(horizon, False)
    times2, pdrs2 = windowed_beacon_pdr(pan_a2)
    assert min(pdrs2) > 0.5, (
        "distinct intervals must avoid persistent superframe shading"
    )
    print(f"\ndistinct intervals: worst 60 s beacon PDR = {min(pdrs2):.3f} "
          "(transient collisions only, like BLE's randomized intervals)")