"""Figure 7: reliability and latency under moderate load (paper §5.1).

Tree and line topologies, 75 ms connection interval, 1 s ±0.5 s producers.
Paper result: PDRs of 99.949 % / 99.960 % with every loss attributable to a
BLE connection loss, and RTT CDFs whose medians scale with the topologies'
mean hop counts (7.5 vs 2.14 hops -> factor ~3.5).

Base duration: 900 s (paper: 3600 s), scaled by REPRO_DURATION_SCALE.
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.asciiplot import render_cdf, render_series
from repro.exp.metrics import aggregate_binned_pdr, cdf, percentile, summarize_rtt
from repro.exp.report import format_table

from conftest import banner, scaled


def run_pair(duration_s: float):
    results = {}
    for topology in ("tree", "line"):
        results[topology] = run_experiment(
            ExperimentConfig(
                name=f"fig7-{topology}",
                topology=topology,
                duration_s=duration_s,
                seed=7,
            )
        )
    return results


def test_fig07_moderate_load(run_once):
    banner("Figure 7: moderate load, tree vs line", "paper §5.1, Fig. 7")
    duration = scaled(900)
    results = run_once(run_pair, duration)

    rows = []
    for topology, result in results.items():
        rtt = summarize_rtt(result.rtts_s())
        rows.append(
            [
                topology,
                result.coap_sent(),
                f"{result.coap_pdr():.5f}",
                result.num_connection_losses(),
                f"{rtt['p50'] * 1000:.0f}",
                f"{rtt['p99'] * 1000:.0f}",
            ]
        )
    print(format_table(
        ["topology", "requests", "CoAP PDR", "conn losses", "RTT p50 [ms]", "RTT p99 [ms]"],
        rows,
        title="(paper: tree 99.949 %, line 99.960 %, RTT ratio ~3.5)",
    ))

    # Fig 7(a): PDR over runtime
    end_s = results["tree"].config.total_runtime_s
    series = {
        topo: aggregate_binned_pdr(res.producers, bin_s=max(10.0, duration / 60), t_end_s=end_s)
        for topo, res in results.items()
    }
    print("\nFig 7(a): CoAP PDR over experiment runtime")
    print(render_series(series, y_lo=0.5, y_hi=1.0))

    # Fig 7(b): RTT CDFs
    print("\nFig 7(b): RTT CDFs")
    print(render_cdf({t: cdf(r.rtts_s()) for t, r in results.items()}, x_label="RTT [s]"))

    tree, line = results["tree"], results["line"]
    assert tree.coap_pdr() > 0.999, "tree moderate load must be near-lossless"
    assert line.coap_pdr() > 0.995, "line moderate load must be near-lossless"
    # losses (if any) must be attributable to connection losses: with zero
    # connection losses the delivery must be perfect
    for result in (tree, line):
        if result.num_connection_losses() == 0:
            assert result.coap_pdr() == 1.0
    # hop-count scaling: the paper reports a factor ~3.5 between the medians
    ratio = percentile(line.rtts_s(), 0.5) / percentile(tree.rtts_s(), 0.5)
    assert 2.0 < ratio < 5.5, f"line/tree median RTT ratio {ratio:.2f} off-shape"
    # a small tail (<3 %) may stretch to multiples of the connection interval
    tree_rtts = tree.rtts_s()
    slow = sum(1 for r in tree_rtts if r > 4 * 2.14 * 0.075) / len(tree_rtts)
    assert slow < 0.05, f"{slow:.1%} of tree RTTs beyond 4 intervals/hop"
