"""Ablation: window widening (§6.1's drift-compensation mechanism).

The standard makes subordinates widen their receive window with the
accumulated clock uncertainty, which keeps a *single* connection alive
despite drift (and, per the paper, is also what lets co-located connections
collide for longer).  This bench removes the widening: with realistic
drift, even an isolated, perfectly healthy connection desynchronizes and
dies.
"""

import random

from repro.ble.config import BleConfig, ConnParams
from repro.ble.conn import Connection, DisconnectReason
from repro.ble.controller import BleController
from repro.exp.report import format_table
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC, USEC

from conftest import banner, scaled


def run_variant(declared_sca_ppm: float, base_ns: int, duration_s: float):
    sim = Simulator()
    medium = BleMedium(sim, random.Random(9), InterferenceModel(base_ber=0.0))
    config = BleConfig(
        declared_sca_ppm=declared_sca_ppm, window_widening_base_ns=base_ns
    )
    nodes = [
        BleController(
            sim, medium, addr=i, clock=DriftingClock(sim, ppm=ppm),
            config=config, rng=random.Random(60 + i),
        )
        for i, ppm in ((0, 150.0), (1, -150.0))  # legal but pessimal clocks
    ]
    conn = Connection(
        sim, nodes[0], nodes[1], ConnParams(interval_ns=75 * MSEC),
        access_address=0x3D3D3D3D, anchor0_true=MSEC,
    )
    deaths = []
    conn.on_closed = lambda c, r: deaths.append(sim.now)
    sim.run(until=int(duration_s * SEC))
    return deaths, conn.sub.stats.events_missed_window, conn.sub.stats.events_active


def test_abl_window_widening(run_once):
    banner("Ablation: window widening off", "BT 5.2 Vol 6 B §4.5.7 / paper §6.1")
    duration = scaled(120, minimum=60)
    honest, dishonest = run_once(
        lambda: (
            run_variant(50.0, 32 * USEC, duration),
            run_variant(0.0, 8 * USEC, duration),
        )
    )
    print(format_table(
        ["variant", "connection lost", "missed windows", "active events"],
        [
            ["standard widening", "no" if not honest[0] else "yes", honest[1], honest[2]],
            ["widening disabled", "yes" if dishonest[0] else "no", dishonest[1], dishonest[2]],
        ],
        title="(300 ppm relative drift, a single otherwise-idle connection)",
    ))
    assert not honest[0], "with widening the connection must survive drift"
    assert honest[1] == 0
    assert dishonest[0], "without widening drift must desynchronize the link"
    assert dishonest[1] > 0
