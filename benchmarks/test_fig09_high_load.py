"""Figure 9: high network load and the burst regime (paper §5.2).

Two configurations on the tree:

* (a) producers at 100 ms ±50 ms with a 75 ms connection interval: the
  paper measures ~75 % average CoAP PDR, all losses at overflowing packet
  buffers, an *uneven* PDR across producers (radio capacity is distributed
  unevenly across a node's connections), and occasional PDR jumps after
  beneficial reconnections;
* (b) a 2000 ms connection interval with 1 s producers: traffic turns into
  bursts, CRC errors abort whole connection events, and the PDR collapses
  further.

Base duration: 300 s (paper: 3600 s).
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.asciiplot import render_heat_rows, render_series
from repro.exp.metrics import aggregate_binned_pdr, producer_binned_pdr
from repro.exp.report import format_table

from conftest import banner, scaled


def run_both(duration_s: float):
    high = run_experiment(
        ExperimentConfig(
            name="fig9a",
            producer_interval_s=0.1,
            producer_jitter_s=0.05,
            duration_s=duration_s,
            seed=10,
        )
    )
    burst = run_experiment(
        ExperimentConfig(
            name="fig9b",
            conn_interval="2000",
            producer_interval_s=1.0,
            producer_jitter_s=0.5,
            duration_s=duration_s,
            warmup_s=25.0,
            drain_s=15.0,
            seed=10,
        )
    )
    return high, burst


def test_fig09_high_load(run_once):
    banner("Figure 9: high load & burst regime", "paper §5.2, Fig. 9")
    duration = scaled(300)
    high, burst = run_once(run_both, duration)

    drops_high = sum(n.netif.drops_pktbuf for n in high.network.nodes)
    print(format_table(
        ["scenario", "CoAP PDR", "pktbuf drops", "conn losses"],
        [
            ["(a) 100 ms producers, 75 ms itvl", f"{high.coap_pdr():.3f}",
             drops_high, high.num_connection_losses()],
            ["(b) 1 s producers, 2000 ms itvl", f"{burst.coap_pdr():.3f}",
             sum(n.netif.drops_pktbuf for n in burst.network.nodes),
             burst.num_connection_losses()],
        ],
        title="(paper: (a) ~75 % with buffer-overflow losses, (b) lower still)",
    ))

    # Fig 9(a) heatmap: per-producer PDR over time
    end_s = high.config.total_runtime_s
    bin_s = max(10.0, duration / 30)
    heat = {}
    for producer in high.producers:
        _, pdrs = producer_binned_pdr(producer, bin_s=bin_s, t_end_s=end_s)
        heat[f"node {producer.node.node_id}"] = pdrs
    print("\nFig 9(a): per-producer CoAP PDR heat rows (time -->)")
    print(render_heat_rows(heat))

    times, pdrs = aggregate_binned_pdr(high.producers, bin_s=bin_s, t_end_s=end_s)
    print("\nFig 9(a) bottom: average CoAP PDR over runtime")
    print(render_series({"avg PDR": (times, pdrs)}, y_lo=0.0, y_hi=1.0))

    # ---- shape assertions -------------------------------------------------
    # (a): overload loses packets at the buffers, but far from collapse
    assert 0.5 < high.coap_pdr() < 0.97, f"high-load PDR {high.coap_pdr():.3f}"
    assert drops_high > 0, "losses must be attributable to packet buffers"
    # (a): PDR unevenly distributed across producers
    per_producer = list(high.coap_pdr_per_producer().values())
    assert max(per_producer) - min(per_producer) > 0.10, (
        "per-producer PDR must spread (uneven radio capacity)"
    )
    # (b): the burst regime is worse than the constant-rate overload
    assert burst.coap_pdr() < high.coap_pdr(), (
        "2 s intervals + bursts must underperform constant-rate overload"
    )
