"""Figure 10: BLE versus IEEE 802.15.4 (paper §5.3).

The same tree and the same 1 s ±0.5 s CoAP workload on three stacks:
802.15.4 CSMA/CA, BLE at 25 ms, and BLE at 75 ms.  Paper result: the
802.15.4 network operates at its capacity limit (83.3 % PDR -- contention
losses after macMaxFrameRetries) while BLE delivers >99 %; 802.15.4's
delays are backoff-sized and hence much smaller than BLE's
interval-quantized ones.

Base duration: 300 s per stack (paper: 3600 s).
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.asciiplot import render_cdf, render_series
from repro.exp.metrics import aggregate_binned_pdr, cdf, percentile
from repro.exp.report import format_table

from conftest import banner, scaled

SCENARIOS = (
    ("IEEE 802.15.4", dict(link_layer="802154")),
    ("BLE 25 ms", dict(link_layer="ble", conn_interval="25")),
    ("BLE 75 ms", dict(link_layer="ble", conn_interval="75")),
)


def run_all(duration_s: float):
    out = {}
    for label, overrides in SCENARIOS:
        out[label] = run_experiment(
            ExperimentConfig(
                name=label, duration_s=duration_s, seed=11, **overrides
            )
        )
    return out


def test_fig10_ble_vs_802154(run_once):
    banner("Figure 10: BLE vs IEEE 802.15.4", "paper §5.3, Fig. 10")
    duration = scaled(300)
    results = run_once(run_all, duration)

    rows = []
    for label, result in results.items():
        rtts = result.rtts_s()
        rows.append(
            [
                label,
                f"{result.coap_pdr():.4f}",
                f"{percentile(rtts, 0.5) * 1000:.0f}",
                f"{percentile(rtts, 0.99) * 1000:.0f}",
            ]
        )
    print(format_table(
        ["stack", "CoAP PDR", "RTT p50 [ms]", "RTT p99 [ms]"],
        rows,
        title="(paper: 802.15.4 83.3 % but fast; BLE >99 % but interval-bound)",
    ))

    end_s = results["BLE 75 ms"].config.total_runtime_s
    print("\nFig 10(a): PDR over runtime")
    print(render_series(
        {
            label: aggregate_binned_pdr(res.producers, bin_s=max(10.0, duration / 30), t_end_s=end_s)
            for label, res in results.items()
        },
        y_lo=0.5,
        y_hi=1.0,
    ))
    print("\nFig 10(b): RTT CDFs")
    print(render_cdf(
        {label: cdf(res.rtts_s()) for label, res in results.items()},
        x_label="RTT [s]",
    ))

    m154 = results["IEEE 802.15.4"]
    ble25 = results["BLE 25 ms"]
    ble75 = results["BLE 75 ms"]
    # who wins on reliability: BLE, because 802.15.4 drops after retries
    assert m154.coap_pdr() < min(ble25.coap_pdr(), ble75.coap_pdr())
    assert ble75.coap_pdr() > 0.99
    assert m154.coap_pdr() < 0.99
    drops = sum(n.netif.drops_mac for n in m154.network.nodes)
    assert drops > 0, "802.15.4 losses must come from MAC retry exhaustion"
    # who wins on latency: 802.15.4, by a wide margin against BLE 75 ms
    assert percentile(m154.rtts_s(), 0.5) < percentile(ble75.rtts_s(), 0.5) / 2
    # and the BLE interval ordering holds
    assert percentile(ble25.rtts_s(), 0.5) < percentile(ble75.rtts_s(), 0.5)
