"""§4.2: the statconn reconnect delay.

With a 90 ms advertising interval and continuous scanning (100 ms interval
== window), the paper reports an average loss-to-reconnect delay in the
10-100 ms band.  We force losses on an established link and measure the
statconn-recorded reconnect delays.
"""

import statistics

from repro.ble.conn import DisconnectReason, Role
from repro.exp.report import format_table
from repro.sim.units import MSEC, SEC
from repro.testbed.topology import BleNetwork

from conftest import banner, scaled


def measure_delays(n_losses: int):
    net = BleNetwork(2, seed=42, ppms=[0.0, 0.0])
    net.apply_edges([(0, 1)])
    net.run(2 * SEC)
    assert net.all_links_up()

    def kill():
        conn = net.nodes[1].controller.connection_to(0)
        if conn is not None:
            conn.close(DisconnectReason.SUPERVISION_TIMEOUT)

    for k in range(n_losses):
        net.sim.at((3 + 2 * k) * SEC, kill)
    net.run((4 + 2 * n_losses) * SEC)
    return [d / MSEC for d in net.nodes[1].statconn.reconnect_delays_ns]


def test_sec42_reconnect_delay(run_once):
    banner("§4.2: statconn reconnect delay", "paper §4.2")
    n_losses = int(scaled(40, minimum=20))
    delays = run_once(measure_delays, n_losses)

    mean = statistics.mean(delays)
    print(format_table(
        ["quantity", "paper", "this model"],
        [
            ["losses forced", "-", len(delays)],
            ["mean reconnect delay [ms]", "10-100", f"{mean:.1f}"],
            ["min / max [ms]", "-", f"{min(delays):.1f} / {max(delays):.1f}"],
        ],
    ))
    assert len(delays) == n_losses, "every loss must reconnect"
    assert 10 <= mean <= 100, f"mean reconnect delay {mean:.1f} ms out of band"
    assert max(delays) < 250
