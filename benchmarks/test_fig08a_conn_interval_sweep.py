"""Figure 8(a): RTT versus the BLE connection interval (paper §5.1).

Tree topology, 1 s ±0.5 s producers, connection intervals swept over the
paper's set {25, 50, 75, 100, 250, 500, 750} ms.  Paper result: most
packets complete within 1..4 connection intervals (mean hop count 2.14),
so the CDFs shift right roughly proportionally to the interval; larger
intervals push delays into the seconds.

Base duration: 240 s per configuration (paper: 3600 s each).
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.asciiplot import render_cdf
from repro.exp.metrics import cdf, percentile
from repro.exp.report import format_table

from conftest import banner, scaled

INTERVALS_MS = (25, 50, 75, 100, 250, 500, 750)


def run_sweep(duration_s: float):
    out = {}
    for interval in INTERVALS_MS:
        result = run_experiment(
            ExperimentConfig(
                name=f"fig8a-{interval}",
                conn_interval=str(interval),
                duration_s=duration_s,
                warmup_s=10.0,
                drain_s=8.0,
                seed=8,
            )
        )
        out[interval] = result.rtts_s()
    return out


def test_fig08a_interval_sweep(run_once):
    banner("Figure 8(a): RTT CDF vs connection interval", "paper §5.1, Fig. 8a")
    duration = scaled(240)
    rtts = run_once(run_sweep, duration)

    rows = []
    for interval, samples in rtts.items():
        rows.append(
            [
                interval,
                len(samples),
                f"{percentile(samples, 0.5) * 1000:.0f}",
                f"{percentile(samples, 0.9) * 1000:.0f}",
                f"{percentile(samples, 0.99) * 1000:.0f}",
                f"{percentile(samples, 0.5) / (interval / 1000):.1f}",
            ]
        )
    print(format_table(
        ["conn itvl [ms]", "samples", "p50 [ms]", "p90 [ms]", "p99 [ms]", "p50 / interval"],
        rows,
        title="(paper: bulk of packets within 1-4 connection intervals)",
    ))
    print(render_cdf(
        {f"{i} ms": cdf(samples) for i, samples in rtts.items()},
        x_label="RTT [s]",
    ))

    medians = {i: percentile(s, 0.5) for i, s in rtts.items()}
    # medians grow monotonically with the interval
    ordered = [medians[i] for i in INTERVALS_MS]
    assert ordered == sorted(ordered), f"medians not monotone: {medians}"
    # most packets complete within 1..4 intervals (mean hop count 2.14)
    for interval in INTERVALS_MS:
        in_units = medians[interval] / (interval / 1000)
        assert 1.0 <= in_units <= 4.5, (
            f"median at {interval} ms is {in_units:.1f} intervals, off-shape"
        )
    # large intervals reach into seconds -- the §8 warning territory
    assert percentile(rtts[750], 0.9) > 1.0
