"""Extension bench: dynamic topology formation and healing (paper §9).

The paper's future work asks for BLE topology management coupled with IP
routing.  This bench measures the repository's dynconn + RPL-lite answer on
the paper's fleet size:

* formation time from zero configuration to a fully joined 15-node DODAG,
* CoAP delivery over the self-formed routes (vs. the statically configured
  tree of Fig. 7),
* healing time after a mid-tree router loses its uplink.
"""

from repro.ble.conn import DisconnectReason, Role
from repro.exp.report import format_table
from repro.sim.units import SEC
from repro.testbed.dynamic import DynamicBleNetwork
from repro.testbed.traffic import Consumer, Producer

from conftest import banner, scaled


def run_scenario(traffic_s: float, seed: int = 4):
    net = DynamicBleNetwork(15, seed=seed)
    net.start()
    # formation time
    while not net.fully_joined() and net.sim.now < 300 * SEC:
        net.run(net.sim.now + 1 * SEC)
    formation_s = net.sim.now / SEC
    assert net.fully_joined(), "the mesh never formed"

    # the paper's workload over self-formed routes
    Consumer(net.nodes[0])
    producers = [Producer(n, net.nodes[0].mesh_local) for n in net.nodes[1:]]
    for producer in producers:
        producer.start()
    net.run(net.sim.now + int(traffic_s * SEC))
    for producer in producers:
        producer.stop()
    net.run(net.sim.now + 5 * SEC)
    pdr = sum(p.acks_received for p in producers) / sum(
        p.requests_sent for p in producers
    )
    depths = [d for d in net.formation_depths() if d]

    # healing after a router failure
    router = next(
        d for d in net.dynconns if d.child_count() > 0 and not d.rpl.is_root
    )
    uplink = next(
        conn for conn in router.node.controller.connections
        if router.node.controller.role_of(conn) is Role.SUBORDINATE
    )
    uplink.close(DisconnectReason.SUPERVISION_TIMEOUT)
    cut_at = net.sim.now
    while not net.fully_joined() and net.sim.now < cut_at + 600 * SEC:
        net.run(net.sim.now + 1 * SEC)
    healing_s = (net.sim.now - cut_at) / SEC
    assert net.fully_joined(), "the mesh never healed"
    return formation_s, pdr, max(depths), healing_s, router.node.node_id


def test_ext_dynamic_topology(run_once):
    banner("Extension: dynamic topology formation + healing", "paper §9 future work")
    traffic_s = scaled(120)
    formation_s, pdr, max_depth, healing_s, killed = run_once(run_scenario, traffic_s)
    print(format_table(
        ["quantity", "value"],
        [
            ["formation time (15 nodes, zero config)", f"{formation_s:.0f} s"],
            ["max DODAG depth", max_depth],
            ["CoAP PDR over self-formed routes", f"{pdr:.4f}"],
            ["router killed", f"node {killed}"],
            ["healing time (subtree re-join)", f"{healing_s:.0f} s"],
        ],
        title="(no paper baseline: this regenerates the paper's future work)",
    ))
    assert formation_s < 120, "formation must complete within two minutes"
    assert pdr > 0.97, "self-formed routes must carry the paper's workload"
    assert 2 <= max_depth <= 6, "a 15-node, 3-children mesh is 2-4 deep"
    assert healing_s < 180, "healing must be fast thanks to DIS solicitation"
