"""Extension bench: fragmentation fragility vs L2CAP segmentation.

The paper keeps IP packets at 100 bytes so that *neither* link layer
fragments (§4.3 footnote) -- because beyond one frame the two technologies
diverge sharply:

* BLE carries large datagrams in one L2CAP SDU; every lost K-frame is
  retransmitted by the link layer, so loss costs latency, not data;
* 802.15.4 needs RFC 4944 fragmentation, and a single fragment that
  exhausts its MAC retries kills the *whole* datagram (plus a reassembly
  timeout at the receiver).

This bench runs the same CoAP workload with growing payloads over a lossy
channel on both stacks: 802.15.4 delivery must decay with the fragment
count while BLE stays near-lossless.
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.report import format_table

from conftest import banner, scaled

PAYLOADS = (39, 250, 500, 900)
#: Elevated BER (~17 % loss per 120-byte frame): MAC retries still mostly
#: succeed per fragment, but a datagram must win that bet once per fragment.
LOSSY_BER = 2.0e-4


def run_matrix(duration_s: float):
    cells = {}
    for link_layer in ("ble", "802154"):
        for payload in PAYLOADS:
            result = run_experiment(
                ExperimentConfig(
                    name=f"frag-{link_layer}-{payload}",
                    link_layer=link_layer,
                    topology="line",
                    n_nodes=3,
                    payload_len=payload,
                    producer_interval_s=2.0,
                    producer_jitter_s=1.0,
                    duration_s=duration_s,
                    seed=16,
                    base_ber=LOSSY_BER,
                )
            )
            fragmented = 0
            timeouts = 0
            if link_layer == "802154":
                fragmented = sum(
                    n.netif.tx_fragmented_datagrams for n in result.network.nodes
                )
                timeouts = sum(
                    n.netif.reassembler.timeouts for n in result.network.nodes
                )
            losses = (
                result.num_connection_losses() if link_layer == "ble" else 0
            )
            cells[(link_layer, payload)] = (
                result.coap_pdr(), fragmented, timeouts, losses
            )
    return cells


def test_ext_fragmentation_vs_segmentation(run_once):
    banner("Extension: RFC 4944 fragmentation vs L2CAP segmentation",
           "paper §4.3 footnote")
    duration = scaled(300)
    cells = run_once(run_matrix, duration)

    rows = []
    for payload in PAYLOADS:
        ble_pdr, _, _, ble_losses = cells[("ble", payload)]
        pdr_154, fragmented, timeouts, _ = cells[("802154", payload)]
        rows.append(
            [payload, f"{ble_pdr:.4f}", ble_losses, f"{pdr_154:.4f}",
             fragmented, timeouts]
        )
    print(format_table(
        ["CoAP payload [B]", "BLE PDR", "BLE conn losses", "802.15.4 PDR",
         "fragmented datagrams", "reassembly timeouts"],
        rows,
        title=f"(3-node line, BER {LOSSY_BER:g} ~ 17 % frame loss; BLE loses"
              " only via big-PDU-induced connection instability)",
    ))

    # 802.15.4: fragmentation actually happened for the large payloads
    assert cells[("802154", 39)][1] == 0
    assert cells[("802154", 900)][1] > 0
    # ...and it costs delivery, growing with the fragment count, with the
    # reassembly timeouts to prove the mechanism
    pdrs_154 = [cells[("802154", p)][0] for p in PAYLOADS]
    assert pdrs_154[-1] < pdrs_154[0] - 0.03, (
        "fragmented datagrams must lose materially more than single frames"
    )
    timeouts = [cells[("802154", p)][2] for p in PAYLOADS]
    assert timeouts[-1] > timeouts[0]
    # BLE keeps every payload size near-lossless (its losses are the rare
    # connection drops caused by long-PDU CRC storms, not discarded data)
    for payload in PAYLOADS:
        assert cells[("ble", payload)][0] > 0.98, (
            f"BLE at payload {payload} must stay near-lossless"
        )
        assert cells[("ble", payload)][0] >= cells[("802154", payload)][0], (
            f"BLE must not lose more than 802.15.4 at payload {payload}"
        )
    # the headline divergence
    assert (
        cells[("ble", 900)][0] - cells[("802154", 900)][0] > 0.02
    ), "the fragmentation penalty must separate the stacks at 900 B"