"""Extension bench: the LE 2M PHY.

The paper is pinned to LE 1M because the nrf52dk boards cannot do better
(§4.2), and its related work (§7) cites measurements of up to ~1300 kbit/s
for current BLE with the data length extension and 2M mode.  The simulated
radios have no such constraint: this bench runs the single-link saturation
measurement and the moderate-load tree on both PHYs.

Expected shape: ~2x the air rate does *not* double goodput (T_IFS stays
150 us regardless of PHY), landing 2M goodput in the paper-cited ~1.3 Mbit/s
region; multi-hop RTT improves only marginally, because latency is dominated
by the connection interval, not air time -- exactly the paper's point about
interval-quantized delays.
"""

import random

from repro.ble.config import BleConfig, ConnParams
from repro.ble.conn import Connection
from repro.ble.controller import BleController
from repro.exp import ExperimentConfig, ExperimentRunner
from repro.exp.metrics import percentile
from repro.exp.report import format_table
from repro.l2cap import L2capCoc
from repro.phy.frames import BlePhyMode
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC

from conftest import banner, scaled


def saturated_goodput_kbps(phy: BlePhyMode, duration_s: float) -> float:
    sim = Simulator()
    medium = BleMedium(sim, random.Random(1), InterferenceModel(base_ber=0.0))
    config = BleConfig(phy=phy, buffer_pool_bytes=40000)
    nodes = [
        BleController(sim, medium, addr=i, clock=DriftingClock(sim),
                      config=config, rng=random.Random(i))
        for i in range(2)
    ]
    conn = Connection(
        sim, nodes[0], nodes[1], ConnParams(interval_ns=75 * MSEC),
        access_address=0x2B2B2B2B, anchor0_true=MSEC,
    )
    coc = L2capCoc(conn)
    received = [0]
    coc.set_rx_handler(nodes[1], lambda sdu: received.__setitem__(0, received[0] + len(sdu)))
    end = coc.end_of(nodes[0])

    def refill(tag=None):
        while len(end.tx_sdus) < 6:
            coc.send(nodes[0], bytes(1000))

    end.on_sdu_sent = refill
    refill()
    sim.run(until=int(duration_s * SEC))
    return received[0] * 8 / duration_s / 1000


class _PhyRunner(ExperimentRunner):
    def __init__(self, config, phy: BlePhyMode):
        super().__init__(config)
        self.phy = phy

    def _build_ble(self):
        net = super()._build_ble()
        for node in net.nodes:
            node.controller.config.phy = self.phy
        return net


def run_all(duration_s: float):
    out = {}
    for phy in (BlePhyMode.LE_1M, BlePhyMode.LE_2M):
        goodput = saturated_goodput_kbps(phy, max(duration_s / 10, 10))
        tree = _PhyRunner(
            ExperimentConfig(name=f"phy-{phy.value}", duration_s=duration_s, seed=14),
            phy,
        ).run()
        out[phy] = (goodput, tree)
    return out


def test_ext_2m_phy(run_once):
    banner("Extension: LE 2M PHY", "paper §4.2 constraint / §7 citation [10]")
    duration = scaled(240)
    results = run_once(run_all, duration)

    rows = []
    for phy, (goodput, tree) in results.items():
        rtts = tree.rtts_s()
        rows.append(
            [
                phy.value,
                f"{goodput:.0f}",
                f"{tree.coap_pdr():.4f}",
                f"{percentile(rtts, 0.5) * 1000:.0f}",
            ]
        )
    print(format_table(
        ["PHY", "single-link goodput [kbit/s]", "tree CoAP PDR", "tree RTT p50 [ms]"],
        rows,
        title="(paper-cited ceiling for 2M + DLE: ~1300 kbit/s)",
    ))

    g1, tree1 = results[BlePhyMode.LE_1M]
    g2, tree2 = results[BlePhyMode.LE_2M]
    assert g2 > 1.5 * g1, "2M must lift single-link goodput substantially"
    assert g2 < 2.0 * g1, "...but T_IFS overhead keeps it below 2x"
    assert 1000 <= g2 <= 1600, f"2M goodput {g2:.0f} off the cited ~1300 kbit/s"
    # the interval, not the PHY, dominates multi-hop latency: halving the
    # air time moves the median RTT by far less than one connection
    # interval in either direction (anchor phases shift run-to-run)
    p50_1m = percentile(tree1.rtts_s(), 0.5)
    p50_2m = percentile(tree2.rtts_s(), 0.5)
    assert abs(p50_2m - p50_1m) < 0.075, (
        "PHY choice must not move multi-hop RTT by a whole interval"
    )
