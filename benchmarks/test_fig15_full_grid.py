"""Figure 15 (Appendix B): the full 60-configuration grid.

Six producer intervals x ten connection-interval configurations, each run
in the tree topology.  The paper aggregates 5x1 h per cell into four
panels: link-layer PDR, CoAP PDR, CoAP RTT, and connection losses.  We run
one seed x a scaled duration per cell and print the same four grids.

Base duration: 150 s per cell (60 cells; paper: 5 x 3600 s each).  This is
the heaviest bench -- REPRO_DURATION_SCALE trades runtime for fidelity,
and it is the flagship consumer of the parallel engine hookup:
``REPRO_WORKERS=4 REPRO_CACHE_DIR=.repro-cache pytest
benchmarks/test_fig15_full_grid.py`` shards the 60 cells across four
worker processes and replays instantly on a second invocation.
"""

from repro.exp import ExperimentConfig
from repro.exp.metrics import percentile
from repro.exp.parallel import run_grid as engine_run_grid
from repro.exp.report import format_table

from conftest import banner, engine_kwargs, scaled

PRODUCER_INTERVALS_S = (0.1, 0.5, 1.0, 5.0, 10.0, 30.0)
CONN_SPECS = (
    "25", "50", "75", "100", "500",
    "[15:35]", "[40:60]", "[65:85]", "[90:110]", "[490:510]",
)


def run_grid(duration_s: float):
    keys, configs = [], []
    for producer_s in PRODUCER_INTERVALS_S:
        for spec in CONN_SPECS:
            keys.append((producer_s, spec))
            configs.append(
                ExperimentConfig(
                    name=f"fig15-{producer_s}-{spec}",
                    conn_interval=spec,
                    producer_interval_s=producer_s,
                    producer_jitter_s=producer_s / 2,
                    duration_s=duration_s,
                    warmup_s=10.0,
                    drain_s=10.0,
                    seed=15,
                )
            )
    outcomes, stats = engine_run_grid(configs, **engine_kwargs())
    failed = [o for o in outcomes if not o.ok]
    assert not failed, f"{len(failed)} grid runs failed, first: {failed[0].error}"
    print(f"\n[engine] {stats.summary()}")
    cells = {}
    for key, outcome in zip(keys, outcomes):
        result = outcome.result
        rtts = result.rtts_s()
        cells[key] = {
            "ll_pdr": result.link_pdr_overall(),
            "coap_pdr": result.coap_pdr(),
            "rtt_p50": percentile(rtts, 0.5) if rtts else float("nan"),
            "losses": result.num_connection_losses(),
        }
    return cells


def _grid_table(cells, metric, fmt):
    headers = ["conn \\ prod"] + [f"{p}s" for p in PRODUCER_INTERVALS_S]
    rows = []
    for spec in CONN_SPECS:
        row = [spec]
        for producer_s in PRODUCER_INTERVALS_S:
            row.append(fmt(cells[(producer_s, spec)][metric]))
        rows.append(row)
    return format_table(headers, rows)


def test_fig15_full_configuration_grid(run_once):
    banner("Figure 15: the 60-configuration grid", "paper Appendix B, Fig. 15")
    duration = scaled(150, minimum=120)
    cells = run_once(run_grid, duration)

    print("\nlink-layer PDR")
    print(_grid_table(cells, "ll_pdr", lambda v: f"{v:.3f}"))
    print("\nCoAP PDR")
    print(_grid_table(cells, "coap_pdr", lambda v: f"{v:.3f}"))
    print("\nCoAP RTT p50 [s]")
    print(_grid_table(cells, "rtt_p50", lambda v: f"{v:.2f}"))
    print("\nconnection losses")
    print(_grid_table(cells, "losses", str))

    # ---- the grid's qualitative structure ----------------------------------
    # (1) moderate loads at sane intervals deliver ~everything
    for producer_s in (1.0, 5.0, 10.0, 30.0):
        for spec in ("75", "[65:85]"):
            assert cells[(producer_s, spec)]["coap_pdr"] > 0.99, (
                f"cell ({producer_s}, {spec}) must be near-lossless"
            )
    # (2) the overload column (100 ms producers) hurts everywhere
    for spec in ("75", "[65:85]"):
        assert cells[(0.1, spec)]["coap_pdr"] < 0.97
    # (3) 500 ms static under overload is the worst corner of the paper grid
    assert cells[(0.1, "500")]["coap_pdr"] < cells[(0.1, "75")]["coap_pdr"] + 0.05
    # (4) RTT medians track the connection interval at moderate load
    assert (
        cells[(1.0, "25")]["rtt_p50"]
        < cells[(1.0, "75")]["rtt_p50"]
        < cells[(1.0, "500")]["rtt_p50"]
    )
    # (5) randomized windows do not lose more connections than their static
    #     counterparts (aggregate)
    static_losses = sum(
        cells[(p, s)]["losses"] for p in PRODUCER_INTERVALS_S for s in ("25", "50", "75", "100", "500")
    )
    random_losses = sum(
        cells[(p, s)]["losses"] for p in PRODUCER_INTERVALS_S
        for s in ("[15:35]", "[40:60]", "[65:85]", "[90:110]", "[490:510]")
    )
    print(f"\naggregate connection losses: static={static_losses} random={random_losses}")
    assert random_losses <= static_losses
