"""Figure 4: per-connection capacity shrinks with each extra connection.

A node saturates connection C0 while 0, 1, or 2 additional connections are
open on the same node.  Every additional connection bounds C0's connection
events (packets may only be exchanged until the next event of any
co-located connection starts), so C0's goodput must fall monotonically --
the paper's Figure 4 story, measured instead of illustrated.
"""

import random

from repro.ble.config import BleConfig, ConnParams
from repro.ble.conn import Connection
from repro.ble.controller import BleController
from repro.exp.report import format_table
from repro.l2cap import L2capCoc
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC

from conftest import banner, scaled


def goodput_with_connections(n_extra: int, duration_s: float) -> float:
    """Saturated goodput of C0 [kbit/s] with ``n_extra`` other connections."""
    sim = Simulator()
    medium = BleMedium(sim, random.Random(1), InterferenceModel(base_ber=0.0))
    nodes = [
        BleController(
            sim, medium, addr=i, clock=DriftingClock(sim),
            config=BleConfig(buffer_pool_bytes=40000), rng=random.Random(10 + i),
        )
        for i in range(2 + n_extra)
    ]
    conn0 = Connection(
        sim, nodes[0], nodes[1], ConnParams(interval_ns=75 * MSEC),
        access_address=0xC0C0C0C0, anchor0_true=MSEC,
    )
    # extra connections: node0 subordinate, anchors splitting the interval
    # evenly like Figure 4's illustration (C1 halves C0's budget, C2 cuts it
    # to a third)
    spacing = 75 * MSEC // (n_extra + 1) if n_extra else 0
    for k in range(n_extra):
        Connection(
            sim, nodes[2 + k], nodes[0], ConnParams(interval_ns=75 * MSEC),
            access_address=0xD0D0D0D0 + k,
            anchor0_true=MSEC + (k + 1) * spacing,
        )
    coc = L2capCoc(conn0)
    received = [0]
    coc.set_rx_handler(nodes[1], lambda sdu: received.__setitem__(0, received[0] + len(sdu)))
    end = coc.end_of(nodes[0])

    def refill(tag=None):
        while len(end.tx_sdus) < 4:
            coc.send(nodes[0], bytes(1000))

    end.on_sdu_sent = refill
    refill()
    sim.run(until=int(duration_s * SEC))
    return received[0] * 8 / duration_s / 1000


def test_fig04_capacity_vs_connection_count(run_once):
    banner("Figure 4: C0 capacity vs. co-located connection count", "paper §2.3")
    duration = scaled(20, minimum=5)
    goodputs = run_once(
        lambda: [goodput_with_connections(n, duration) for n in (0, 1, 2)]
    )
    rows = [
        [f"C0 alone" if n == 0 else f"C0 + {n} connection(s)", f"{g:.0f}"]
        for n, g in zip((0, 1, 2), goodputs)
    ]
    print(format_table(["scenario", "C0 goodput [kbit/s]"], rows))
    assert goodputs[0] > goodputs[1] > goodputs[2] > 0, (
        "each additional connection must cost C0 capacity"
    )
    # with anchors 25 ms apart on a 75 ms interval, C0 keeps roughly 1/3 of
    # its airtime per extra connection boundary -- check the rough factor
    assert goodputs[1] < 0.75 * goodputs[0]
