"""Ablation: §6.3's design space -- reject-and-reopen vs parameter update.

When the subordinate detects that a fresh connection's interval collides
with one of its existing connections, the paper closes the connection and
lets the coordinator redraw ("works on any 4.2 stack").  The §6.3 design
space also discusses the Bluetooth 5.0 alternative: keep the link and
*negotiate* a new interval via the connection parameter update procedure --
which the paper could not run because black-box controllers hide that
machinery behind HCI.  The simulator can.

Both must end with unique intervals on every node and no shading losses;
the update path should re-establish faster (no teardown/re-advertising
round trip).
"""

from repro.exp import ExperimentConfig, ExperimentRunner
from repro.exp.report import format_table
from repro.sim.units import SEC

from conftest import banner, scaled


def run_variant(action: str, duration_s: float, seeds=(1, 2, 3)):
    total_rejects = 0
    total_losses = 0
    pdr = 0.0
    unique_ok = True
    formation_s = []
    for seed in seeds:
        config = ExperimentConfig(
            name=f"collision-{action}-{seed}",
            conn_interval="[73:77]",  # 5 slots for up-to-3-connection nodes:
            # collisions likely at setup, but the window respects the
            # paper rule "window > max connections x min spacing"
            duration_s=duration_s,
            seed=seed,
        )
        runner = ExperimentRunner(config)
        build = runner._build_ble

        def patched_build():
            net = build()
            for node in net.nodes:
                node.statconn.config.collision_action = action
            return net

        runner._build_ble = patched_build
        result = runner.run()
        net = result.network
        total_rejects += sum(n.statconn.collision_rejects for n in net.nodes)
        total_losses += result.num_connection_losses()
        pdr += result.coap_pdr()
        for node in net.nodes:
            intervals = node.controller.used_intervals_ns()
            if len(set(intervals)) != len(intervals):
                unique_ok = False
    return {
        "rejects": total_rejects,
        "losses": total_losses,
        "pdr": pdr / len(seeds),
        "unique": unique_ok,
    }


def test_abl_collision_action(run_once):
    banner("Ablation: collision handling -- reject vs parameter update",
           "paper §6.3 design space")
    duration = scaled(300)
    outcomes = run_once(
        lambda: {
            action: run_variant(action, duration)
            for action in ("reject", "update")
        }
    )
    print(format_table(
        ["action", "collisions handled", "conn losses", "CoAP PDR",
         "intervals unique"],
        [
            [action, o["rejects"], o["losses"], f"{o['pdr']:.4f}",
             "yes" if o["unique"] else "NO"]
            for action, o in outcomes.items()
        ],
        title="(narrow [74:76] ms window forces collisions at setup)",
    ))
    for action, outcome in outcomes.items():
        assert outcome["rejects"] > 0, f"{action}: no collisions exercised"
        assert outcome["unique"], f"{action}: colliding intervals survived"
        assert outcome["pdr"] > 0.99, f"{action}: delivery suffered"
    # both mitigations prevent shading losses
    assert outcomes["update"]["losses"] == 0
    assert outcomes["reject"]["losses"] == 0