"""Shared helpers for the figure/table reproduction benches.

Every bench simulates a *scaled-down* version of the paper's runtime (the
paper uses 1-hour runs repeated five times, plus two 24-hour runs; a pure
Python simulator reproduces the same dynamics in minutes).  Scale factors:

* each bench documents its base duration,
* ``REPRO_DURATION_SCALE`` (float, default 1.0) multiplies all of them, so
  ``REPRO_DURATION_SCALE=4 pytest benchmarks/`` runs closer to paper scale.

Benches use ``benchmark.pedantic(..., rounds=1)``: a run *is* the
measurement; repeating a deterministic simulation would only burn time.

Parallel/caching hookup (opt-in): benches that execute many independent
runs route them through :class:`repro.exp.parallel.ParallelEngine` with

* ``REPRO_WORKERS`` (int, default 1) -- worker processes; >1 shards runs,
* ``REPRO_CACHE_DIR`` (path, default unset) -- on-disk result cache, so a
  re-run of the same bench replays instantly.

Both default to the previous serial, uncached behaviour, and the engine is
deterministic per ``(config, seed)``, so the printed figures are identical
under any worker count.
"""

import os

import pytest


def duration_scale() -> float:
    """The global duration multiplier from the environment."""
    return float(os.environ.get("REPRO_DURATION_SCALE", "1.0"))


def engine_workers() -> int:
    """Worker processes for grid benches (``REPRO_WORKERS``, default 1)."""
    return int(os.environ.get("REPRO_WORKERS", "1"))


def engine_cache_dir():
    """Result-cache directory (``REPRO_CACHE_DIR``), or ``None``."""
    return os.environ.get("REPRO_CACHE_DIR") or None


def engine_kwargs() -> dict:
    """Keyword arguments wiring a bench into the parallel engine."""
    return {"max_workers": engine_workers(), "cache_dir": engine_cache_dir()}


@pytest.fixture
def grid_runner():
    """Run a list of :class:`ExperimentConfig`s via the sharded engine.

    Returns the per-config :class:`~repro.exp.portable.PortableResult`s in
    input order; raises if any run failed after retries.
    """
    from repro.exp.parallel import run_grid

    def runner(configs):
        outcomes, stats = run_grid(configs, **engine_kwargs())
        failed = [o for o in outcomes if not o.ok]
        if failed:
            raise RuntimeError(
                f"{len(failed)} runs failed, first: {failed[0].error}"
            )
        print(f"[engine] {stats.summary()}")
        return [o.result for o in outcomes]

    return runner


def scaled(seconds: float, minimum: float = 30.0) -> float:
    """Apply the global scale with a floor that keeps statistics meaningful."""
    return max(seconds * duration_scale(), minimum)


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def banner(title: str, paper_ref: str) -> None:
    """Print the bench header (figure/table id + scaling note)."""
    print()
    print("=" * 74)
    print(f"{title}   [{paper_ref}]  (duration scale x{duration_scale():g})")
    print("=" * 74)
