"""Shared helpers for the figure/table reproduction benches.

Every bench simulates a *scaled-down* version of the paper's runtime (the
paper uses 1-hour runs repeated five times, plus two 24-hour runs; a pure
Python simulator reproduces the same dynamics in minutes).  Scale factors:

* each bench documents its base duration,
* ``REPRO_DURATION_SCALE`` (float, default 1.0) multiplies all of them, so
  ``REPRO_DURATION_SCALE=4 pytest benchmarks/`` runs closer to paper scale.

Benches use ``benchmark.pedantic(..., rounds=1)``: a run *is* the
measurement; repeating a deterministic simulation would only burn time.
"""

import os

import pytest


def duration_scale() -> float:
    """The global duration multiplier from the environment."""
    return float(os.environ.get("REPRO_DURATION_SCALE", "1.0"))


def scaled(seconds: float, minimum: float = 30.0) -> float:
    """Apply the global scale with a floor that keeps statistics meaningful."""
    return max(seconds * duration_scale(), minimum)


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def banner(title: str, paper_ref: str) -> None:
    """Print the bench header (figure/table id + scaling note)."""
    print()
    print("=" * 74)
    print(f"{title}   [{paper_ref}]  (duration scale x{duration_scale():g})")
    print("=" * 74)
