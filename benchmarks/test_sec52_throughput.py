"""§5.2 baseline: raw L2CAP throughput on a single link.

The paper measures "close to 500 kbps" of raw L2CAP goodput between two
nrf52dk nodes, and derives that 14 producers at 100 ms generate 128.8 kbit/s
of CoAP request traffic -- at most 45 % of a single link's capacity, yet
§5.2's losses appear anyway (the capacity is unevenly distributed).

We measure the same three numbers: saturated single-link L2CAP goodput,
the offered high-load rate, and their ratio.
"""

import random

from repro.ble.config import BleConfig, ConnParams
from repro.ble.conn import Connection
from repro.ble.controller import BleController
from repro.exp.report import format_table
from repro.l2cap import L2capCoc
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC

from conftest import banner, scaled


def saturated_goodput_kbps(duration_s: float, interval_ms: int = 75) -> float:
    """One-directional saturated L2CAP goodput over a single connection."""
    sim = Simulator()
    medium = BleMedium(sim, random.Random(1), InterferenceModel(base_ber=2.2e-5))
    nodes = [
        BleController(
            sim, medium, addr=i, clock=DriftingClock(sim),
            config=BleConfig(buffer_pool_bytes=40000), rng=random.Random(i),
        )
        for i in range(2)
    ]
    conn = Connection(
        sim, nodes[0], nodes[1], ConnParams(interval_ns=interval_ms * MSEC),
        access_address=0x5EC52000, anchor0_true=MSEC,
    )
    coc = L2capCoc(conn)
    received = [0]
    coc.set_rx_handler(nodes[1], lambda sdu: received.__setitem__(0, received[0] + len(sdu)))
    end = coc.end_of(nodes[0])

    def refill(tag=None):
        while len(end.tx_sdus) < 6:
            coc.send(nodes[0], bytes(1000))

    end.on_sdu_sent = refill
    refill()
    sim.run(until=int(duration_s * SEC))
    return received[0] * 8 / duration_s / 1000


def test_sec52_single_link_throughput(run_once):
    banner("§5.2 baseline: raw single-link L2CAP throughput", "paper §5.2")
    duration = scaled(30, minimum=10)
    goodput = run_once(saturated_goodput_kbps, duration)

    # the paper's offered-load arithmetic
    offered_kbps = 14 * 10 * 115 * 8 / 1000  # 14 producers x 10/s x 115 B
    print(format_table(
        ["quantity", "paper", "this model"],
        [
            ["saturated L2CAP goodput [kbit/s]", "~500", f"{goodput:.0f}"],
            ["high-load offered rate [kbit/s]", "128.8 (CoAP requests)",
             f"{offered_kbps:.0f} (on-air)"],
            ["offered / capacity", "<= 45 %", f"{offered_kbps / goodput:.0%}"],
        ],
    ))
    # same order of magnitude as the paper's 500 kbit/s; our simulated
    # controller has no host-stack overhead, so it lands higher
    assert 300 <= goodput <= 900, f"goodput {goodput:.0f} kbit/s out of family"
    # the §5.2 punchline precondition: offered load is well under capacity
    assert offered_kbps / goodput < 0.45
