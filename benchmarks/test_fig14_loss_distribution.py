"""Figure 14: connection-loss distribution across interval configurations.

The paper runs every static interval {25, 50, 75, 100, 500} ms and every
randomized window {[15:35], [40:60], [65:85], [90:110], [490:510]} ms for
5x1 h at a 1 s producer interval, counting BLE connection losses.  The
static columns lose connections; the randomized columns (grey in the
paper's plot) essentially never do.

Base duration: 2 seeds x 900 s per configuration (paper: 5 x 3600 s).
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.report import format_table

from conftest import banner, scaled

STATIC = ("25", "50", "75", "100", "500")
RANDOM = ("[15:35]", "[40:60]", "[65:85]", "[90:110]", "[490:510]")


def run_grid(duration_s: float, seeds=(1, 2)):
    losses = {}
    for spec in STATIC + RANDOM:
        total = 0
        for seed in seeds:
            result = run_experiment(
                ExperimentConfig(
                    name=f"fig14-{spec}-{seed}",
                    conn_interval=spec,
                    duration_s=duration_s,
                    seed=seed,
                )
            )
            total += result.num_connection_losses()
        losses[spec] = total
    return losses


def test_fig14_connection_loss_distribution(run_once):
    banner("Figure 14: connection losses vs interval configuration",
           "paper §6.3, Fig. 14")
    duration = scaled(900)
    losses = run_once(run_grid, duration)

    rows = [[spec, "static" if spec in STATIC else "random", losses[spec]]
            for spec in STATIC + RANDOM]
    print(format_table(
        ["interval [ms]", "kind", "connection losses"],
        rows,
        title="(paper: static columns lose up to ~20 per 5 h; random ~0)",
    ))

    static_total = sum(losses[s] for s in STATIC)
    random_total = sum(losses[r] for r in RANDOM)
    print(f"\ntotals: static={static_total}, randomized={random_total}")
    assert static_total > 0, "static intervals must lose connections"
    assert random_total < static_total, (
        "randomized windows must lose (far) fewer connections than static"
    )
    # the paper's random columns are almost always zero; allow the odd loss
    # from non-shading causes under the smallest window
    assert random_total <= max(2, static_total // 3)
