"""Extension bench: adaptive frequency hopping vs static channel exclusion.

The paper's testbed found BLE channel 22 permanently jammed and dodged it by
*statically* excluding the channel on every node (§4.2), noting that the
adaptive-hopping literature (§7) suggests 6BLEMesh deployments would benefit
from doing this automatically.  This bench runs the moderate-load tree with
channel 22 jammed *plus* WiFi-like interference on a third of the band,
without any static exclusion, and compares:

* a plain network (full 37-channel maps),
* the same network with an :class:`~repro.ble.afh.AfhManager` per
  connection.

AFH must recover most of the link-layer PDR gap to the clean-channel
baseline and blacklist the jammed channel everywhere.
"""

from repro.ble.afh import AfhConfig, AfhManager
from repro.exp import ExperimentConfig, ExperimentRunner
from repro.exp.report import format_table
from repro.sim.units import SEC

from conftest import banner, scaled

#: BLE data channels under the three busiest WiFi channels.
WIFI_FOOTPRINT = tuple(range(0, 9)) + tuple(range(11, 21))


class _InterferedRunner(ExperimentRunner):
    """Moderate-load tree with a hostile band and full channel maps."""

    def __init__(self, config, with_afh: bool):
        super().__init__(config)
        self.with_afh = with_afh
        self.afh_managers = []

    def _build_ble(self):
        from repro.ble.chanmap import ChannelMap

        net = super()._build_ble()
        # undo the static exclusion: full maps, hostile medium
        net.medium.interference.jammed_channels = (22,)
        for channel in WIFI_FOOTPRINT:
            net.medium.interference.channel_per[channel] = 0.25
        for node in net.nodes:
            node.controller.config.chan_map = ChannelMap.all_channels()
        if self.with_afh:
            for node in net.nodes:
                node.controller.conn_open_listeners.append(self._attach_afh)
        return net

    def _attach_afh(self, conn):
        # open-listeners fire on both endpoints; attach one manager per conn
        if any(m.conn is conn for m in self.afh_managers):
            return
        manager = AfhManager(
            conn,
            AfhConfig(eval_interval_ns=10 * SEC, min_samples=5,
                      abort_rate_threshold=0.2),
        )
        manager.start()
        self.afh_managers.append(manager)


def run_all(duration_s: float):
    results = {}
    for label, with_afh in (("plain", False), ("AFH", True)):
        runner = _InterferedRunner(
            ExperimentConfig(
                name=f"afh-{label}", duration_s=duration_s, seed=13,
                sample_period_s=10.0,
            ),
            with_afh=with_afh,
        )
        result = runner.run()
        blacklists = [m.blacklist for m in runner.afh_managers]
        results[label] = (result, blacklists)
    return results


def test_ext_adaptive_frequency_hopping(run_once):
    banner("Extension: adaptive channel hopping", "paper §2.2 ADH / §7 AFH")
    duration = scaled(600)
    results = run_once(run_all, duration)

    rows = []
    for label, (result, blacklists) in results.items():
        rows.append(
            [
                label,
                f"{result.link_pdr_overall():.4f}",
                f"{result.coap_pdr():.4f}",
                (
                    f"{sum(len(b) for b in blacklists) / len(blacklists):.1f}"
                    if blacklists
                    else "-"
                ),
            ]
        )
    print(format_table(
        ["network", "LL PDR", "CoAP PDR", "avg channels blacklisted"],
        rows,
        title="(channel 22 jammed + WiFi on 19 channels; no static exclusion)",
    ))

    plain, _ = results["plain"]
    afh, blacklists = results["AFH"]
    assert afh.link_pdr_overall() > plain.link_pdr_overall() + 0.03, (
        "AFH must recover a material part of the link-layer PDR"
    )
    # every adapted connection identified the dead channel
    matured = [b for b in blacklists if b]
    assert matured, "at least some connections must have adapted"
    jammed_found = sum(1 for b in blacklists if 22 in b)
    assert jammed_found >= len(blacklists) // 2, (
        "most connections must blacklist the jammed channel 22"
    )
