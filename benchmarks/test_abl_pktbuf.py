"""Ablation: connection interval versus packet-buffer pressure (§8).

The paper's §8 guidance: "the length of the connection interval should be
configured based on the BLE and IP packet buffer sizes available" --
outgoing packets queue until the next connection event, so longer intervals
need proportionally more buffer, and once the buffer saturates reliability
collapses.

Part 1 sweeps the connection interval at the paper's 6144-byte default and
shows peak buffer occupancy rising from a few hundred bytes to full
saturation, with losses following.  Part 2 sweeps the buffer size in the
saturated (2 s interval) regime: more memory buys back some delivery, but
cannot fix the abort-limited radio -- buffers trade loss for delay only up
to the link's real capacity.
"""

from repro.exp import ExperimentConfig, run_experiment
from repro.exp.report import format_table

from conftest import banner, scaled

INTERVALS = ("75", "500", "1000", "2000")
BUFFER_SIZES = (1536, 6144, 24576)


def run_interval_sweep(duration_s: float):
    out = {}
    for interval in INTERVALS:
        result = run_experiment(
            ExperimentConfig(
                name=f"buf-iv-{interval}",
                conn_interval=interval,
                duration_s=duration_s,
                warmup_s=25.0,
                drain_s=15.0,
                seed=10,
            )
        )
        out[interval] = (
            result.coap_pdr(),
            max(n.pktbuf.peak_used for n in result.network.nodes),
            sum(n.netif.drops_pktbuf for n in result.network.nodes),
        )
    return out


def run_buffer_sweep(duration_s: float, seeds=(10, 11)):
    out = {}
    for size in BUFFER_SIZES:
        pdr = 0.0
        for seed in seeds:
            result = run_experiment(
                ExperimentConfig(
                    name=f"buf-sz-{size}",
                    conn_interval="2000",
                    duration_s=duration_s,
                    warmup_s=25.0,
                    drain_s=15.0,
                    seed=seed,
                    pktbuf_bytes=size,
                )
            )
            pdr += result.coap_pdr()
        out[size] = pdr / len(seeds)
    return out


def test_abl_interval_vs_buffer_pressure(run_once):
    banner("Ablation: connection interval vs packet-buffer pressure", "paper §8")
    duration = scaled(240)
    intervals, buffers = run_once(
        lambda: (run_interval_sweep(duration), run_buffer_sweep(duration))
    )

    print(format_table(
        ["conn itvl [ms]", "CoAP PDR", "peak pktbuf [B]", "pktbuf drops"],
        [[iv, f"{p:.3f}", peak, drops] for iv, (p, peak, drops) in intervals.items()],
        title="part 1: interval sweep at the 6144-byte default buffer",
    ))
    print()
    print(format_table(
        ["pktbuf [bytes]", "CoAP PDR (2 s interval)"],
        [[size, f"{pdr:.3f}"] for size, pdr in buffers.items()],
        title="part 2: buffer sweep in the saturated burst regime",
    ))

    # §8 shape: buffer occupancy and losses grow with the interval...
    peaks = [intervals[iv][1] for iv in INTERVALS]
    drops = [intervals[iv][2] for iv in INTERVALS]
    pdrs = [intervals[iv][0] for iv in INTERVALS]
    assert peaks == sorted(peaks), f"peak occupancy must grow: {peaks}"
    assert drops == sorted(drops), f"drops must grow with interval: {drops}"
    assert pdrs == sorted(pdrs, reverse=True), f"PDR must fall: {pdrs}"
    assert intervals["75"][2] == 0, "75 ms must not pressure the buffer"
    assert intervals["2000"][1] >= 6000, "2 s must saturate the default buffer"
    # ...and more memory helps only marginally once the radio is the limit
    assert buffers[24576] >= buffers[1536]
    assert buffers[24576] - buffers[1536] < 0.15, (
        "memory alone must not fix an abort-limited link"
    )
