#!/usr/bin/env python3
"""A self-forming IPv6-over-BLE mesh (the paper's future work, §9).

The paper's networks are statically configured; its conclusion names "the
management of BLE topologies, the coupling of BLE topologies with IP
routing, and the adaptability ... to dynamic environments" as open
questions.  This example runs the repository's answer: 12 nodes start with
no configuration at all, the root opens a RPL DODAG, orphans advertise,
joined routers adopt them (dynconn), routes flow from DIOs/DAOs -- and when
a router dies mid-run, the mesh heals itself.

Run with::

    python examples/dynamic_mesh.py
"""

from repro.ble.conn import DisconnectReason, Role
from repro.exp.report import format_table
from repro.sim.units import SEC
from repro.testbed.dynamic import DynamicBleNetwork
from repro.testbed.traffic import Consumer, Producer


def print_tree(net: DynamicBleNetwork) -> None:
    children = {}
    for rpl in net.rpls:
        if rpl.parent is not None:
            children.setdefault(rpl.parent.node_id(), []).append(rpl.node.node_id)

    def walk(node_id: int, depth: int) -> None:
        marker = "*" if depth == 0 else "+--"
        print(f"  {'    ' * depth}{marker} node {node_id}")
        for child in sorted(children.get(node_id, [])):
            walk(child, depth + 1)

    walk(0, 0)


def main() -> None:
    net = DynamicBleNetwork(12, seed=3)
    net.start()
    print("t=0: no links, no routes; node 0 roots the DODAG\n")
    checkpoints = []
    for t in (5, 10, 20, 40):
        net.run(t * SEC)
        checkpoints.append([f"{t}s", f"{net.joined_count()}/12"])
    print(format_table(["time", "nodes joined"], checkpoints,
                       title="=== formation progress ==="))
    print("\nformed DODAG:")
    print_tree(net)

    # run the paper's workload over the self-formed routes
    consumer = Consumer(net.nodes[0])
    producers = [Producer(n, net.nodes[0].mesh_local) for n in net.nodes[1:]]
    for producer in producers:
        producer.start()
    net.run(70 * SEC)
    pdr = sum(p.acks_received for p in producers) / sum(
        p.requests_sent for p in producers
    )
    print(f"\nCoAP over the self-formed mesh: PDR = {pdr:.4f}")

    # kill a mid-tree router's uplink and watch the mesh heal
    router = next(
        d for d in net.dynconns
        if d.child_count() > 0 and not d.rpl.is_root
    )
    uplink = next(
        conn for conn in router.node.controller.connections
        if router.node.controller.role_of(conn) is Role.SUBORDINATE
    )
    print(f"\nt={net.sim.now / SEC:.0f}s: cutting node "
          f"{router.node.node_id}'s uplink ...")
    uplink.close(DisconnectReason.SUPERVISION_TIMEOUT)
    cut_at = net.sim.now
    while not net.fully_joined() and net.sim.now < cut_at + 300 * SEC:
        net.run(net.sim.now + 5 * SEC)
    print(f"mesh healed after {(net.sim.now - cut_at) / SEC:.0f}s; new DODAG:")
    print_tree(net)


if __name__ == "__main__":
    main()
