#!/usr/bin/env python3
"""CoAP retransmission timers versus slow connection intervals (paper §8).

The paper warns that connection intervals in the order of seconds conflict
with CoAP's default 2 s retransmission timeout: requests that are merely
*queued* behind a slow link get retransmitted by the application layer,
inflating network load although nothing was lost.

This example sends **confirmable** CoAP requests over a line network and
compares a 75 ms connection interval against a 2 s one: watch the CoAP
retransmission counter explode while actual end-to-end losses stay near
zero.

Run with::

    python examples/coap_timeout_interplay.py [duration_seconds]
"""

import sys

from repro import ExperimentConfig, run_experiment
from repro.exp.metrics import summarize_rtt
from repro.exp.report import format_table


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    rows = []
    for interval in ("75", "2000"):
        config = ExperimentConfig(
            name=f"con-{interval}",
            topology="line",
            n_nodes=6,
            conn_interval=interval,
            confirmable=True,           # CON requests arm the RFC 7252 timers
            producer_interval_s=2.0,
            producer_jitter_s=1.0,
            duration_s=duration,
            warmup_s=10.0,
            drain_s=10.0,
            seed=5,
        )
        print(f"running line network with {interval} ms connection interval ...")
        result = run_experiment(config)
        retransmissions = sum(
            p.endpoint.retransmissions for p in result.producers
        )
        timeouts = sum(p.endpoint.timeouts for p in result.producers)
        rtt = summarize_rtt(result.rtts_s())
        rows.append(
            [
                interval,
                result.coap_sent(),
                f"{result.coap_pdr():.4f}",
                retransmissions,
                timeouts,
                f"{rtt['p99']:.2f}",
            ]
        )
    print()
    print(
        format_table(
            [
                "conn itvl [ms]",
                "requests",
                "PDR",
                "CoAP retransmissions",
                "CoAP give-ups",
                "RTT p99 [s]",
            ],
            rows,
            title="=== §8: stateful protocols over slow BLE links ===",
        )
    )
    print(
        "\nWith a 2 s connection interval, multi-hop delivery takes longer than\n"
        "CoAP's 2 s ACK timeout: the application retransmits requests that were\n"
        "never lost -- exactly the §8 warning about stateful protocols."
    )


if __name__ == "__main__":
    main()
