#!/usr/bin/env python3
"""Anatomy of a connection-shading event (paper §6.1, Figs. 11/12).

Builds the smallest network that can shade: node 1 holds two connections
with the *same* 75 ms connection interval -- one as coordinator (to node 0),
one as subordinate (under node 2) -- and the two coordinators' clocks drift
50 ppm against each other.  The connection events slide together at
50 us/s; once they overlap, node 1's single radio can only serve one of
them, the other starves, and its supervision timeout kills it.

The script prints a timeline of the anchor gap and the moment of death,
then repeats the experiment with the paper's mitigation (distinct
intervals) to show that the link survives.

Run with::

    python examples/shading_anatomy.py
"""

import random

from repro.ble.config import BleConfig, ConnParams
from repro.ble.conn import Connection, DisconnectReason
from repro.ble.controller import BleController
from repro.phy.medium import BleMedium, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC


def build(interval_b_ms: int):
    """Two connections sharing node 1; returns (sim, conn_a, conn_b)."""
    sim = Simulator()
    medium = BleMedium(sim, random.Random(7), InterferenceModel(base_ber=0.0))
    nodes = [
        BleController(
            sim,
            medium,
            addr=i,
            clock=DriftingClock(sim, ppm=ppm),
            config=BleConfig(),
            rng=random.Random(100 + i),
            name=f"node{i}",
        )
        # the two coordinators (nodes 0 is peer, 1 and 2 drive anchors)
        for i, ppm in ((0, -25.0), (1, 0.0), (2, 25.0))
    ]
    # conn A: node1 coordinates a link to node 0 -- its anchors follow
    # node1's clock.  conn B: node2 coordinates a link to node 1 (node 1
    # subordinate) -- its anchors follow node2's clock.
    conn_a = Connection(
        sim, coordinator=nodes[1], subordinate=nodes[0],
        params=ConnParams(interval_ns=75 * MSEC),
        access_address=0x11111111, anchor0_true=1 * MSEC,
    )
    conn_b = Connection(
        sim, coordinator=nodes[2], subordinate=nodes[1],
        params=ConnParams(interval_ns=interval_b_ms * MSEC),
        access_address=0x22222222, anchor0_true=4 * MSEC,
    )
    return sim, conn_a, conn_b


def run(interval_b_ms: int, label: str) -> None:
    sim, conn_a, conn_b = build(interval_b_ms)
    deaths = []
    conn_a.on_closed = lambda c, r: deaths.append(("A", sim.now, r))
    conn_b.on_closed = lambda c, r: deaths.append(("B", sim.now, r))

    print(f"\n=== {label} (A: 75 ms, B: {interval_b_ms} ms) ===")
    print(f"{'t [s]':>7} | {'anchor gap [us]':>15} | events A/B (skipped A/B)")
    for checkpoint in range(0, 181, 20):
        sim.run(until=max(checkpoint * SEC, 1))
        if deaths:
            break
        gap = (conn_b.anchor_true - conn_a.anchor_true) % (75 * MSEC)
        if gap > 37 * MSEC:
            gap -= 75 * MSEC
        print(
            f"{checkpoint:7d} | {gap / 1000:15.1f} | "
            f"{conn_a.sub.stats.events_active}/{conn_b.sub.stats.events_active} "
            f"({conn_a.sub.stats.events_skipped_radio}/"
            f"{conn_b.sub.stats.events_skipped_radio})"
        )
    if deaths:
        name, when, reason = deaths[0]
        print(f"--> connection {name} died at t={when / SEC:.1f}s: {reason.value}")
    else:
        print("--> both connections survived the full 180 s")


def main() -> None:
    run(75, "connection shading: identical intervals")
    run(85, "the mitigation: distinct intervals (paper §6.3)")


if __name__ == "__main__":
    main()
