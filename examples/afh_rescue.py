#!/usr/bin/env python3
"""Adaptive channel hopping rescuing a link from a hostile band.

The paper's testbed had BLE channel 22 permanently jammed and excluded it
*statically* on every node (§4.2); its related work (§7) points at adaptive
hopping as the automatic alternative.  This example jams a whole block of
channels mid-run and shows the :class:`~repro.ble.afh.AfhManager` watching
per-channel CRC-abort rates, blacklisting the dead channels, and restoring
the link-layer delivery rate -- then re-probing after the interference
clears.

Run with::

    python examples/afh_rescue.py
"""

import random

from repro.ble.afh import AfhConfig, AfhManager
from repro.ble.config import BleConfig, ConnParams
from repro.ble.conn import Connection
from repro.ble.controller import BleController
from repro.exp.report import format_table
from repro.phy.medium import BleMedium, InterferenceBurst, InterferenceModel
from repro.sim import DriftingClock, Simulator
from repro.sim.units import MSEC, SEC


def main() -> None:
    sim = Simulator()
    medium = BleMedium(sim, random.Random(3), InterferenceModel(base_ber=0.0))
    nodes = [
        BleController(sim, medium, addr=i, clock=DriftingClock(sim),
                      config=BleConfig(), rng=random.Random(10 + i))
        for i in range(2)
    ]
    conn = Connection(
        sim, nodes[0], nodes[1], ConnParams(interval_ns=30 * MSEC),
        access_address=0xAF4AF4AF, anchor0_true=MSEC,
    )
    afh = AfhManager(conn, AfhConfig(eval_interval_ns=5 * SEC, min_samples=3,
                                     probation_evals=8))
    afh.start()

    def chatter():
        conn.send(nodes[0], b"sensor-reading-xx")
        sim.after(60 * MSEC, chatter)

    sim.after(10 * MSEC, chatter)

    # a WiFi access point boots at t=30 s and goes away at t=150 s
    hostile = tuple(range(10, 23))
    medium.interference.bursts.append(
        InterferenceBurst(30 * SEC, 150 * SEC, hostile, 0.85)
    )

    rows = []
    last = [0, 0]
    for t in range(20, 241, 20):
        sim.run(until=t * SEC)
        events = conn.coord.stats.events_active
        aborts = conn.coord.stats.events_crc_abort
        d_events = events - last[0] or 1
        d_aborts = aborts - last[1]
        last = [events, aborts]
        phase = "quiet" if t <= 30 else ("jammed 10-22" if t <= 150 else "clear again")
        rows.append([
            f"{t}s", phase, f"{1 - d_aborts / d_events:.3f}",
            len(afh.blacklist), afh.map_updates, afh.paroles,
        ])
    print(format_table(
        ["time", "band state", "event success rate", "blacklisted", "map updates", "paroles"],
        rows,
        title="=== adaptive hopping vs a transient jammer ===",
    ))
    print(f"\nfinal channel map: {conn.chan_map.num_used}/37 channels in use")
    print("the blacklist grows while the jammer is on, recovers delivery,")
    print("and probation re-admits channels after the band clears.")


if __name__ == "__main__":
    main()
