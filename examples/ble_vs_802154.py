#!/usr/bin/env python3
"""BLE versus IEEE 802.15.4 under the identical CoAP workload (paper §5.3).

Runs the Figure-10 comparison at laptop scale: the same 15-node tree and the
same 1 s ±0.5 s producer traffic over (a) multi-hop BLE at two connection
intervals and (b) an 802.15.4 CSMA/CA network, then prints the delivery
rates and RTT percentiles side by side.

The paper's qualitative result should be visible: 802.15.4 answers faster
(backoff-sized delays) but *drops* packets under contention, while BLE
converts losses into interval-quantized delay and delivers ~everything.

Run with::

    python examples/ble_vs_802154.py [duration_seconds]
"""

import sys

from repro import ExperimentConfig, run_experiment
from repro.exp.metrics import cdf, summarize_rtt
from repro.exp.asciiplot import render_cdf
from repro.exp.report import format_table


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    scenarios = [
        ("IEEE 802.15.4 CSMA/CA", dict(link_layer="802154")),
        ("BLE, 25 ms interval", dict(link_layer="ble", conn_interval="25")),
        ("BLE, 75 ms interval", dict(link_layer="ble", conn_interval="75")),
    ]
    rows = []
    cdfs = {}
    for label, overrides in scenarios:
        print(f"running {label} ...")
        result = run_experiment(
            ExperimentConfig(name=label, duration_s=duration, seed=3, **overrides)
        )
        rtt = summarize_rtt(result.rtts_s())
        rows.append(
            [
                label,
                f"{result.coap_pdr():.4f}",
                f"{rtt['p50'] * 1000:.1f}",
                f"{rtt['p99'] * 1000:.1f}",
                result.num_connection_losses() if overrides["link_layer"] == "ble" else "-",
            ]
        )
        cdfs[label] = cdf(result.rtts_s())
    print()
    print(
        format_table(
            ["scenario", "CoAP PDR", "RTT p50 [ms]", "RTT p99 [ms]", "conn losses"],
            rows,
            title="=== Figure 10 shape check ===",
        )
    )
    print("\nRTT CDFs:")
    print(render_cdf(cdfs, x_label="RTT [s]"))


if __name__ == "__main__":
    main()
