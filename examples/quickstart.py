#!/usr/bin/env python3
"""Quickstart: run the paper's moderate-load tree experiment, scaled to 60 s.

Builds the 15-node IPv6-over-BLE tree of Figure 6(b), lets 14 CoAP producers
send 39-byte requests to the consumer at the root (1 s ±0.5 s apart, §4.3),
and prints the headline metrics: CoAP packet delivery rate, round-trip-time
percentiles, link-layer PDR, and any BLE connection losses.

Run with::

    python examples/quickstart.py [duration_seconds]
"""

import sys

from repro import ExperimentConfig, run_experiment
from repro.exp.metrics import summarize_rtt
from repro.exp.report import format_table


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 60.0
    config = ExperimentConfig(
        name="quickstart",
        topology="tree",
        conn_interval="75",
        producer_interval_s=1.0,
        producer_jitter_s=0.5,
        duration_s=duration,
        seed=1,
    )
    print(f"Running: 15-node tree, 75 ms connection interval, {duration:.0f} s")
    print(config.to_yaml())
    result = run_experiment(config)

    rtt = summarize_rtt(result.rtts_s())
    print(
        format_table(
            ["metric", "value"],
            [
                ["CoAP requests sent", result.coap_sent()],
                ["CoAP ACKs received", result.coap_acked()],
                ["CoAP PDR", f"{result.coap_pdr():.5f}"],
                ["link-layer PDR", f"{result.link_pdr_overall():.4f}"],
                ["BLE connection losses", result.num_connection_losses()],
                ["RTT mean [ms]", f"{rtt['mean'] * 1000:.1f}"],
                ["RTT p50 [ms]", f"{rtt['p50'] * 1000:.1f}"],
                ["RTT p99 [ms]", f"{rtt['p99'] * 1000:.1f}"],
            ],
            title="\n=== results ===",
        )
    )
    losses = result.connection_losses()
    if losses:
        print("\nconnection losses (time, node, peer):")
        for t, node, peer in losses:
            print(f"  {t:8.1f}s  node {node} <-> node {peer}")
    else:
        print("\nno BLE connection losses during this run")


if __name__ == "__main__":
    main()
