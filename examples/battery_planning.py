#!/usr/bin/env python3
"""Battery planning for a BLE mesh deployment (paper §5.4 + §8).

Uses the energy model calibrated to the paper's Power Profiler measurements
to answer a deployment question: *how long does a battery-powered IP-over-
BLE forwarder last, as a function of the connection interval?*  It also
reproduces the paper's beacon-versus-IP-over-BLE comparison and validates
the model against a short simulation of an actual forwarding node.

Run with::

    python examples/battery_planning.py
"""

from repro.ble.conn import Role
from repro.energy import EnergyModel, PAPER_CALIBRATION
from repro.exp.report import format_table
from repro import ExperimentConfig, run_experiment


def interval_sweep(model: EnergyModel) -> None:
    """§8's trade-off: larger intervals save energy but cost buffers/delay."""
    rows = []
    for interval_ms in (25, 50, 75, 100, 250, 500, 1000):
        interval_s = interval_ms / 1000
        # a forwarder like the paper's: subordinate on two links, coordinator
        # on one (three active connections, §5.4)
        current = 2 * model.idle_connection_current_ua(
            interval_s, Role.SUBORDINATE
        ) + model.idle_connection_current_ua(interval_s, Role.COORDINATOR)
        coin = model.forwarder_battery_life_coin_cell(current)
        li_ion = model.forwarder_battery_life_li_ion(current)
        rows.append(
            [
                interval_ms,
                f"{current:.1f}",
                f"{coin.days:.0f}",
                f"{li_ion.years:.2f}",
            ]
        )
    print(
        format_table(
            ["conn itvl [ms]", "BLE current [uA]", "coin cell [days]", "18650 [years]"],
            rows,
            title="=== idle 3-connection forwarder vs connection interval ===",
        )
    )


def beacon_comparison(model: EnergyModel) -> None:
    """§5.4: IP over BLE competes with plain beacons on energy."""
    beacon = model.beacon_current_ua(1.0)
    rows = [
        ["plain BLE beacon (31 B, 1 s)", f"{beacon:.1f}"],
        ["IP over BLE CoAP sender (1 s)", "16.0  (paper measurement)"],
    ]
    print()
    print(
        format_table(
            ["node type", "current above idle [uA]"],
            rows,
            title="=== beacon vs IP-over-BLE (paper §5.4) ===",
        )
    )


def simulated_forwarder(model: EnergyModel) -> None:
    """Validate against simulation: measure a real forwarding node."""
    print("\nsimulating 120 s of the paper's moderate-load tree ...")
    result = run_experiment(ExperimentConfig(name="energy", duration_s=120, seed=2))
    rows = []
    for node_id in (0, 1, 4, 10):  # root, forwarders, leaf
        node = result.network.nodes[node_id]
        current = model.controller_current_ua(node.controller, 120.0)
        life = model.forwarder_battery_life_coin_cell(current)
        role = (
            "consumer/root"
            if node_id == 0
            else ("leaf" if node_id >= 10 else "forwarder")
        )
        rows.append([node_id, role, f"{current:.1f}", f"{life.days:.0f}"])
    print(
        format_table(
            ["node", "role", "BLE current [uA]", "coin cell [days]"],
            rows,
            title="=== measured from simulation (moderate load, 75 ms) ===",
        )
    )
    print(
        f"\n(idle board adds {PAPER_CALIBRATION.idle_board_current_ua:.0f} uA; "
        "paper's worked example: 123 uA forwarder -> 69 days)"
    )


def main() -> None:
    model = EnergyModel()
    interval_sweep(model)
    beacon_comparison(model)
    simulated_forwarder(model)


if __name__ == "__main__":
    main()
